"""End-to-end correctness: the pipeline datapath vs the golden model.

Every kernel runs under baseline and IRAW clocking; the pipeline recomputes
all values through its modeled register file / bypass / STable / memory
datapath and compares them to the interpreter's golden results.  A single
read slipping into a stabilization window would corrupt a value and be
caught twice (violation counter + mismatch).

The "broken" configurations then *disable* individual avoidance mechanisms
while keeping N=1 clocking, and assert that corruption is in fact observed
— demonstrating the mechanisms are load-bearing, not decorative.
"""

import pytest

from repro.core.config import IrawConfig
from repro.pipeline.core import simulate
from repro.workloads.kernels import KERNEL_BUILDERS, kernel_trace

KERNEL_SIZES = {
    "fib": 30,
    "memcpy": 40,
    "dot": 30,
    "matmul": 4,
    "pointer_chase": 30,
    "strfind": 30,
    "store_forward": 40,
    "sort": 24,
    "calls": 20,
    "crc": 30,
    "histogram": 30,
    "stack": 24,
    "binsearch": 16,
}


@pytest.mark.parametrize("kernel", sorted(KERNEL_BUILDERS))
class TestGoldenValuesPerKernel:
    def test_baseline_matches_golden(self, kernel):
        trace, _ = kernel_trace(kernel, KERNEL_SIZES[kernel])
        result = simulate(trace, IrawConfig.disabled())
        assert result.value_mismatches == 0
        assert result.iraw_violations == 0
        assert result.instructions == len(trace)

    def test_iraw_n1_matches_golden(self, kernel):
        trace, _ = kernel_trace(kernel, KERNEL_SIZES[kernel])
        result = simulate(trace, IrawConfig(stabilization_cycles=1))
        assert result.value_mismatches == 0
        assert result.iraw_violations == 0

    def test_iraw_n2_matches_golden(self, kernel):
        trace, _ = kernel_trace(kernel, KERNEL_SIZES[kernel])
        result = simulate(trace, IrawConfig(stabilization_cycles=2))
        assert result.value_mismatches == 0
        assert result.iraw_violations == 0

    def test_iraw_never_faster_than_baseline(self, kernel):
        """Same clock: IRAW stalls can only add cycles."""
        trace, _ = kernel_trace(kernel, KERNEL_SIZES[kernel])
        base = simulate(trace, IrawConfig.disabled())
        iraw = simulate(trace, IrawConfig(stabilization_cycles=1))
        assert iraw.cycles >= base.cycles


class TestBrokenConfigurations:
    """Disabling a mechanism at N=1 must surface violations."""

    def test_no_rf_mechanism_corrupts_registers(self):
        trace, _ = kernel_trace("fib", 40)
        result = simulate(trace, IrawConfig(stabilization_cycles=1,
                                            rf_enabled=False))
        assert result.iraw_violations > 0
        assert result.value_mismatches > 0

    def test_no_stable_corrupts_forwarded_loads(self):
        trace, _ = kernel_trace("store_forward", 40)
        result = simulate(trace, IrawConfig(stabilization_cycles=1,
                                            stable_enabled=False))
        assert result.iraw_violations > 0
        assert result.value_mismatches > 0

    def test_no_iq_gate_reads_unstable_entries(self):
        trace, _ = kernel_trace("sort", 24)
        result = simulate(trace, IrawConfig(stabilization_cycles=1,
                                            iq_enabled=False))
        assert result.iraw_violations > 0


class TestStableForwarding:
    def test_store_forward_kernel_uses_stable(self):
        """Immediate load-after-store must hit the STable full-match path."""
        trace, _ = kernel_trace("store_forward", 40)
        result = simulate(trace, IrawConfig(stabilization_cycles=1))
        assert result.prediction_hazards["stable_full_matches"] > 0
        assert result.value_mismatches == 0

    def test_baseline_never_uses_stable(self):
        trace, _ = kernel_trace("store_forward", 40)
        result = simulate(trace, IrawConfig.disabled())
        assert result.prediction_hazards["stable_full_matches"] == 0


class TestDeterminism:
    def test_simulation_is_reproducible(self):
        trace, _ = kernel_trace("sort", 24)
        a = simulate(trace, IrawConfig(stabilization_cycles=1))
        b = simulate(trace, IrawConfig(stabilization_cycles=1))
        assert a.cycles == b.cycles
        assert a.stalls.cycles == b.stalls.cycles

    def test_empty_trace(self):
        from repro.workloads.trace import Trace
        result = simulate(Trace("empty", []))
        assert result.cycles == 0
        assert result.instructions == 0


class TestRunawayGuard:
    def test_max_cycles_raises(self):
        from repro.errors import PipelineError
        trace, _ = kernel_trace("fib", 60)
        with pytest.raises(PipelineError, match="exceeded"):
            simulate(trace, IrawConfig.disabled(), max_cycles=10)
