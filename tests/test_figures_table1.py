"""Integration tests for the figure/table regeneration (shape assertions)."""

import pytest

from repro.analysis.figures import (
    energy_example_450,
    figure1_series,
    figure11a_series,
    figure11b_series,
    figure12_series,
    overhead_report,
    prediction_hazard_report,
)
from repro.analysis.sweep import SweepSettings, VccSweep
from repro.analysis.table1 import build_table1
from repro.workloads.profiles import KERNEL_LIKE, SPECINT_LIKE

#: Full-population sweep simulations; CI matrix legs skip via -m "not slow".
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep():
    return VccSweep(SweepSettings(profiles=(SPECINT_LIKE, KERNEL_LIKE),
                                  trace_length=2500))


class TestFigure1:
    def test_series_covers_paper_grid(self):
        rows = figure1_series(step_mv=25.0)
        assert len(rows) == 13
        assert rows[0]["vcc_mv"] == 700.0

    def test_write_delay_dominates_at_low_vcc(self):
        rows = {r["vcc_mv"]: r for r in figure1_series()}
        low = rows[400.0]
        assert low["bitcell_write"] > low["logic_12fo4"]
        assert low["bitcell_read"] < low["logic_12fo4"]

    def test_high_vcc_logic_dominates(self):
        rows = {r["vcc_mv"]: r for r in figure1_series()}
        high = rows[700.0]
        assert high["write_plus_wordline"] < high["logic_12fo4"]


class TestFigure11a:
    def test_iraw_between_logic_and_baseline(self):
        for row in figure11a_series(step_mv=50.0):
            assert (row["logic_24fo4"] - 1e-9 <= row["iraw_cycle_time"]
                    <= row["baseline_write_limited"] + 1e-9)


class TestFigure11b:
    def test_gains_shape(self, sweep):
        rows = figure11b_series(sweep, step_mv=100.0)  # 700,600,500,400
        by_vcc = {r["vcc_mv"]: r for r in rows}
        assert by_vcc[700.0]["frequency_gain"] == pytest.approx(0.0)
        assert by_vcc[500.0]["frequency_gain"] == pytest.approx(0.57, abs=0.03)
        assert by_vcc[400.0]["frequency_gain"] == pytest.approx(0.99, abs=0.05)
        # Performance trails frequency but wins big at low Vcc.
        assert (0.0 < by_vcc[500.0]["performance_gain"]
                < by_vcc[500.0]["frequency_gain"])
        assert by_vcc[400.0]["performance_gain"] > 0.5


class TestFigure12:
    def test_edp_improves_at_low_vcc(self, sweep):
        rows = figure12_series(sweep, step_mv=100.0)
        by_vcc = {r["vcc_mv"]: r for r in rows}
        assert by_vcc[700.0]["edp_ratio"] == pytest.approx(1.01, abs=0.02)
        assert by_vcc[500.0]["edp_ratio"] < 0.8
        assert by_vcc[400.0]["edp_ratio"] < by_vcc[500.0]["edp_ratio"]

    def test_energy_example(self, sweep):
        cases = energy_example_450(sweep)
        assert cases["unconstrained"]["total_j"] == pytest.approx(5.0)
        assert (cases["baseline"]["total_j"] > cases["iraw"]["total_j"]
                > cases["unconstrained"]["total_j"])


class TestInTextReports:
    def test_overheads(self):
        report = overhead_report()
        assert report["area_overhead"] < 0.001
        assert report["power_overhead"] < 0.01

    def test_prediction_hazards(self, sweep):
        report = prediction_hazard_report(sweep, vcc_mv=500.0)
        assert report["bp_predictions"] > 0
        # Paper: 0.0017% potential extra mispredictions — tiny either way.
        assert report["bp_potential_extra_misprediction_rate"] < 0.01
        assert report["rsb_hazard_pops"] <= report["rsb_pops"]


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self, sweep):
        return build_table1(sweep, vcc_mv=500.0)

    def test_four_techniques(self, rows):
        assert len(rows) == 4
        names = [r["technique"] for r in rows]
        assert any("IRAW" in n for n in names)
        assert any("Faulty" in n for n in names)
        assert any("Bypass" in n for n in names)

    def test_only_iraw_works_everywhere_with_gain(self, rows):
        iraw = next(r for r in rows if "IRAW" in r["technique"])
        assert iraw["works_all_blocks"] is True
        assert iraw["honest_freq_gain"] == pytest.approx(0.57, abs=0.03)

    def test_faulty_bits_honest_gain_is_zero(self, rows):
        """RF cannot disable entries: the core stays baseline-clocked."""
        faulty = next(r for r in rows if "Faulty" in r["technique"])
        assert faulty["honest_freq_gain"] == pytest.approx(0.0, abs=1e-9)
        assert faulty["hypothetical_freq_gain"] > 0.0
        assert faulty["ipc_impact"] >= 0.0

    def test_extra_bypass_costs_ipc_and_area(self, rows):
        bypass = next(r for r in rows if "Bypass" in r["technique"])
        iraw = next(r for r in rows if "IRAW" in r["technique"])
        assert bypass["honest_freq_gain"] == pytest.approx(0.0, abs=1e-9)
        assert bypass["hypothetical_freq_gain"] > iraw["honest_freq_gain"]
        assert bypass["ipc_impact"] > 0.0
        # Latches are sized for the 400 mV design point and paid always.
        assert bypass["area_overhead"] > iraw["area_overhead"]

    def test_extra_bypass_write_pipeline_deepens_at_low_vcc(self):
        from repro.baselines import ExtraBypassBaseline
        from repro.circuits.frequency import FrequencySolver
        bypass = ExtraBypassBaseline(FrequencySolver())
        assert (bypass.write_cycles(400.0) > bypass.write_cycles(500.0)
                > bypass.write_cycles(650.0))
