"""Tests for TLBs, fill buffers and the write-combining buffer."""

import pytest

from repro.errors import MemoryModelError
from repro.memory.buffers import FillBufferFile, WriteCombiningBuffer
from repro.memory.tlb import Tlb


class TestTlb:
    def test_miss_then_hit(self):
        tlb = Tlb("T", entries=4)
        assert not tlb.access(0x1234)
        tlb.fill(0x1234)
        assert tlb.access(0x1234)
        assert tlb.access(0x1FFF)  # same 4 KiB page

    def test_lru_eviction(self):
        tlb = Tlb("T", entries=2)
        tlb.fill(0x0000)
        tlb.fill(0x1000)
        tlb.access(0x0000)          # page 0 now MRU
        tlb.fill(0x2000)            # evicts page 1
        assert tlb.access(0x0000)
        assert not tlb.access(0x1000)

    def test_stats(self):
        tlb = Tlb("T", entries=4)
        tlb.access(0)
        tlb.fill(0)
        tlb.access(0)
        assert tlb.misses == 1 and tlb.hits == 1
        assert tlb.miss_rate == pytest.approx(0.5)
        tlb.reset_stats()
        assert tlb.accesses == 0

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            Tlb("T", entries=0)
        with pytest.raises(MemoryModelError):
            Tlb("T", page_size=3000)


class TestFillBuffers:
    def test_allocation_completes_after_latency(self):
        fb = FillBufferFile("FB", entries=2)
        done = fb.allocate(0x100, cycle=10, latency=20)
        assert done == 30

    def test_merge_same_line(self):
        fb = FillBufferFile("FB", entries=2)
        first = fb.allocate(0x100, cycle=10, latency=20)
        second = fb.allocate(0x100, cycle=15, latency=20)
        assert second == first
        assert fb.merges == 1

    def test_full_buffer_delays(self):
        fb = FillBufferFile("FB", entries=1)
        fb.allocate(0x000, cycle=0, latency=50)
        done = fb.allocate(0x100, cycle=10, latency=50)
        assert done == 100  # waits for entry to free at 50, then +50
        assert fb.full_delays == 1

    def test_entries_free_lazily(self):
        fb = FillBufferFile("FB", entries=1)
        fb.allocate(0x000, cycle=0, latency=10)
        assert fb.occupancy(5) == 1
        assert fb.occupancy(11) == 0

    def test_outstanding_lookup(self):
        fb = FillBufferFile("FB", entries=2)
        fb.allocate(0x200, cycle=0, latency=30)
        assert fb.outstanding(0x200, 10) == 30
        assert fb.outstanding(0x300, 10) is None
        assert fb.outstanding(0x200, 31) is None

    def test_validation(self):
        with pytest.raises(MemoryModelError):
            FillBufferFile("FB", entries=0)


class TestWriteCombiningBuffer:
    def test_push_and_drain(self):
        wcb = WriteCombiningBuffer(entries=2)
        done = wcb.push(0x100, cycle=5, drain_latency=9)
        assert done == 14
        assert wcb.occupancy(10) == 1
        assert wcb.occupancy(20) == 0

    def test_combining_same_line(self):
        wcb = WriteCombiningBuffer(entries=2)
        first = wcb.push(0x100, cycle=0, drain_latency=9)
        second = wcb.push(0x100, cycle=3, drain_latency=9)
        assert second == first
        assert wcb.combines == 1
        assert wcb.pushes == 1

    def test_full_buffer_delays(self):
        wcb = WriteCombiningBuffer(entries=1)
        wcb.push(0x000, cycle=0, drain_latency=20)
        done = wcb.push(0x100, cycle=1, drain_latency=20)
        assert done == 40
        assert wcb.full_delays == 1
