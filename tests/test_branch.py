"""Tests for the branch predictors, RSB and IRAW hazard tracking."""

import pytest

from repro.branch.iraw_effects import (
    DeterminismMode,
    PredictionHazardTracker,
)
from repro.branch.predictor import BimodalPredictor, GsharePredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.errors import ConfigError


class TestBimodal:
    def test_learns_steady_taken(self):
        bp = BimodalPredictor(entries=64)
        pc = 0x40
        for cycle in range(4):
            bp.update(pc, True, cycle)
        assert bp.predict(pc) is True

    def test_learns_steady_not_taken(self):
        bp = BimodalPredictor(entries=64)
        pc = 0x40
        for cycle in range(4):
            bp.update(pc, False, cycle)
        assert bp.predict(pc) is False

    def test_hysteresis_survives_single_flip(self):
        bp = BimodalPredictor(entries=64)
        pc = 0x40
        for cycle in range(4):
            bp.update(pc, True, cycle)
        bp.update(pc, False, 10)  # one not-taken (loop exit)
        assert bp.predict(pc) is True  # still predicts taken

    def test_entry_state_tracks_writes(self):
        bp = BimodalPredictor(entries=64)
        pc = 0x40
        bp.update(pc, True, cycle=7)
        counter, written_at, flipped = bp.entry_state(bp.index_of(pc))
        assert written_at == 7
        assert flipped  # 1 -> 2 crosses the direction threshold

    def test_msb_flip_detection(self):
        bp = BimodalPredictor(entries=64)
        index = bp.index_of(0x40)
        bp.update(0x40, True, 0)   # 1->2: flip
        assert bp.entry_state(index)[2]
        bp.update(0x40, True, 1)   # 2->3: no flip
        assert not bp.entry_state(index)[2]

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ConfigError):
            BimodalPredictor(entries=1000)


class TestGshare:
    def test_history_distinguishes_paths(self):
        bp = GsharePredictor(entries=256, history_bits=4)
        pc = 0x80
        index_before = bp.index_of(pc)
        bp.update(pc, True, 0)
        index_after = bp.index_of(pc)
        assert index_before != index_after  # history shifted

    def test_learns_alternating_pattern(self):
        """gshare separates T/N contexts that defeat a bimodal table."""
        bp = GsharePredictor(entries=256, history_bits=4)
        pc = 0x80
        pattern = [True, False] * 40
        mispredicts = 0
        for cycle, taken in enumerate(pattern):
            if bp.predict(pc) != taken:
                mispredicts += 1
            bp.update(pc, taken, cycle)
        assert mispredicts < len(pattern) * 0.3


class TestRsb:
    def test_push_pop_lifo(self):
        rsb = ReturnStackBuffer(entries=4)
        rsb.push(0x100, cycle=0)
        rsb.push(0x200, cycle=1)
        assert rsb.pop(cycle=10)[0] == 0x200
        assert rsb.pop(cycle=10)[0] == 0x100

    def test_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(entries=2)
        for i in range(3):
            rsb.push(0x100 * (i + 1), cycle=i)
        assert rsb.pop(10)[0] == 0x300
        assert rsb.pop(10)[0] == 0x200
        assert rsb.pop(10)[0] is None  # 0x100 was overwritten

    def test_underflow_counts(self):
        rsb = ReturnStackBuffer(entries=2)
        predicted, hazardous = rsb.pop(0)
        assert predicted is None and not hazardous
        assert rsb.underflows == 1

    def test_hazard_window_detection(self):
        """A pop within N cycles of its push reads a stabilizing entry."""
        rsb = ReturnStackBuffer(entries=4)
        rsb.push(0x100, cycle=10)
        _, hazardous = rsb.pop(cycle=11, hazard_window=1)
        assert hazardous
        rsb.push(0x200, cycle=20)
        _, hazardous = rsb.pop(cycle=25, hazard_window=1)
        assert not hazardous
        assert rsb.hazard_pops == 1


class TestHazardTracker:
    def test_window_read_counts_hazard(self):
        bp = BimodalPredictor(entries=64)
        tracker = PredictionHazardTracker(bp, stabilization_cycles=1)
        pc = 0x40
        tracker.update(pc, True, cycle=10)     # write at 10 (flips MSB)
        tracker.predict(pc, cycle=11)          # read inside the window
        assert tracker.counts.bp_hazard_reads == 1
        assert tracker.counts.bp_potential_flips == 1

    def test_non_flipping_write_is_harmless(self):
        bp = BimodalPredictor(entries=64)
        tracker = PredictionHazardTracker(bp, stabilization_cycles=1)
        pc = 0x40
        tracker.update(pc, True, 0)
        tracker.update(pc, True, 5)  # saturating: 2->3, no MSB flip
        tracker.predict(pc, cycle=6)
        assert tracker.counts.bp_hazard_reads == 1
        assert tracker.counts.bp_potential_flips == 0

    def test_outside_window_is_clean(self):
        bp = BimodalPredictor(entries=64)
        tracker = PredictionHazardTracker(bp, stabilization_cycles=1)
        tracker.update(0x40, True, 0)
        tracker.predict(0x40, cycle=10)
        assert tracker.counts.bp_hazard_reads == 0

    def test_deterministic_mode_uses_tracker(self):
        bp = BimodalPredictor(entries=64)
        tracker = PredictionHazardTracker(
            bp, stabilization_cycles=1, mode=DeterminismMode.DETERMINISTIC)
        tracker.update(0x40, True, 0)
        tracker.predict(0x40, cycle=1)
        assert tracker.counts.bp_tracker_hits == 1
        assert tracker.counts.bp_hazard_reads == 0

    def test_rate_property(self):
        bp = BimodalPredictor(entries=64)
        tracker = PredictionHazardTracker(bp, stabilization_cycles=1)
        assert tracker.counts.bp_potential_extra_misprediction_rate == 0.0
        tracker.update(0x40, True, 0)
        tracker.predict(0x40, 1)
        assert tracker.counts.bp_potential_extra_misprediction_rate > 0
