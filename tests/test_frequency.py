"""Tests for the cycle-time solver (Figure 11a inputs and IRAW gains)."""

import pytest

from repro.circuits.constants import IRAW_DEACTIVATION_MV
from repro.circuits.ekv import voltage_grid
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.errors import VoltageRangeError


@pytest.fixture(scope="module")
def solver():
    return FrequencySolver()


class TestOperatingPoints:
    def test_logic_fastest_baseline_slowest(self, solver):
        for vcc in voltage_grid(50.0):
            logic = solver.operating_point(vcc, ClockScheme.LOGIC)
            base = solver.operating_point(vcc, ClockScheme.BASELINE)
            iraw = solver.operating_point(vcc, ClockScheme.IRAW)
            assert logic.frequency_mhz >= iraw.frequency_mhz >= base.frequency_mhz

    def test_nominal_frequency_at_700(self, solver):
        logic = solver.operating_point(700.0, ClockScheme.LOGIC)
        assert logic.frequency_mhz == pytest.approx(1200.0)

    def test_cycle_time_normalized_is_two_phases(self, solver):
        point = solver.operating_point(700.0, ClockScheme.LOGIC)
        assert point.cycle_time_normalized == pytest.approx(2.0)

    def test_out_of_range_voltage(self, solver):
        with pytest.raises(VoltageRangeError):
            solver.operating_point(300.0, ClockScheme.IRAW)


class TestIrawGains:
    """The paper's headline frequency numbers (Section 5.2)."""

    def test_gain_at_500mv_is_57_percent(self, solver):
        assert solver.frequency_gain(500.0) == pytest.approx(0.57, abs=0.03)

    def test_gain_at_400mv_is_99_percent(self, solver):
        assert solver.frequency_gain(400.0) == pytest.approx(0.99, abs=0.05)

    def test_gain_at_450mv_near_79_percent(self, solver):
        """Implied by the paper's 450 mV energy example (DESIGN.md)."""
        assert solver.frequency_gain(450.0) == pytest.approx(0.79, abs=0.05)

    def test_deactivated_at_600mv_and_above(self, solver):
        for vcc in (600.0, 650.0, 700.0):
            point = solver.operating_point(vcc, ClockScheme.IRAW)
            assert point.stabilization_cycles == 0
            assert solver.frequency_gain(vcc) == pytest.approx(0.0, abs=1e-9)

    def test_gain_monotonically_decreasing_with_vcc(self, solver):
        gains = [solver.frequency_gain(v) for v in voltage_grid(25.0)]
        # Sweeping 700 -> 400 mV: gains only grow.
        assert gains == sorted(gains)


class TestStabilizationCycles:
    def test_single_cycle_suffices_in_active_range(self, solver):
        """Paper: 'one stabilization cycle suffices below 600mV'."""
        for vcc in (575.0, 550.0, 500.0, 450.0, 425.0, 400.0):
            point = solver.operating_point(vcc, ClockScheme.IRAW)
            assert point.stabilization_cycles == 1, vcc

    def test_deactivation_constant_matches(self, solver):
        below = solver.operating_point(IRAW_DEACTIVATION_MV - 25,
                                       ClockScheme.IRAW)
        assert below.stabilization_cycles == 1


class TestMemoryLatency:
    def test_fixed_ns_latency_grows_with_frequency(self, solver):
        base = solver.operating_point(500.0, ClockScheme.BASELINE)
        iraw = solver.operating_point(500.0, ClockScheme.IRAW)
        assert (iraw.memory_latency_cycles(80.0)
                > base.memory_latency_cycles(80.0))

    def test_latency_at_least_one_cycle(self, solver):
        point = solver.operating_point(400.0, ClockScheme.BASELINE)
        assert point.memory_latency_cycles(0.001) == 1


class TestFigureSeries:
    def test_figure11a_rows(self, solver):
        rows = solver.figure11a_series(50.0)
        assert len(rows) == 7
        for row in rows:
            assert (row["logic_24fo4"] <= row["iraw_cycle_time"] + 1e-9)
            assert (row["iraw_cycle_time"]
                    <= row["baseline_write_limited"] + 1e-9)

    def test_figure11a_baseline_explodes_at_low_vcc(self, solver):
        rows = {r["vcc_mv"]: r for r in solver.figure11a_series(25.0)}
        assert (rows[400.0]["baseline_write_limited"]
                > 5 * rows[400.0]["logic_24fo4"])

    def test_frequency_gain_series(self, solver):
        rows = solver.frequency_gain_series(25.0)
        by_vcc = {r["vcc_mv"]: r for r in rows}
        assert by_vcc[500.0]["frequency_gain"] == pytest.approx(0.57, abs=0.03)
        assert by_vcc[700.0]["frequency_gain"] == pytest.approx(0.0)
