"""Tests for the process-variation model (Faulty Bits substrate)."""

import pytest

from repro.circuits.constants import default_delay_model
from repro.circuits.variation import VariationModel, gaussian_tail


@pytest.fixture(scope="module")
def variation():
    return VariationModel(default_delay_model())


class TestGaussianTail:
    def test_known_values(self):
        assert gaussian_tail(0.0) == pytest.approx(0.5)
        assert gaussian_tail(4.0) == pytest.approx(3.167e-5, rel=0.01)
        assert gaussian_tail(6.0) == pytest.approx(9.87e-10, rel=0.02)

    def test_monotone(self):
        assert gaussian_tail(3.0) > gaussian_tail(4.0) > gaussian_tail(5.0)


class TestSigmaScaling:
    def test_lower_sigma_means_faster_writes(self, variation):
        """Clocking for 4-sigma cells shortens the worst-case write."""
        base = variation.base_model
        reduced = variation.model_at_sigma(4.0)
        assert reduced.write(500.0) < base.write(500.0)

    def test_baseline_sigma_is_identity(self, variation):
        same = variation.model_at_sigma(6.0)
        assert same.write(500.0) == pytest.approx(
            variation.base_model.write(500.0))

    def test_flip_path_shifts_consistently(self, variation):
        reduced = variation.model_at_sigma(4.0)
        assert reduced.flip(500.0) < variation.base_model.flip(500.0)


class TestFailureProbabilities:
    def test_cell_failure_rate(self, variation):
        assert variation.cell_failure_probability(4.0) == pytest.approx(
            gaussian_tail(4.0))

    def test_line_failure_accumulates(self, variation):
        p_line = variation.line_failure_probability(4.0, bits_per_line=512)
        p_cell = variation.cell_failure_probability(4.0)
        assert p_line > p_cell
        assert p_line < 512 * p_cell  # union bound

    def test_line_failure_needs_positive_bits(self, variation):
        with pytest.raises(ValueError):
            variation.line_failure_probability(4.0, bits_per_line=0)
