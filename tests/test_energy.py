"""Tests for the energy/EDP model (Figure 12 and the 450 mV example)."""

import pytest

from repro.circuits.energy import (
    EnergyModel,
    LEAKAGE_SHARE_AT_CALIBRATION,
    paper_450mv_example,
)


@pytest.fixture()
def model():
    return EnergyModel()


class TestCalibration:
    def test_leakage_share_at_600mv(self, model):
        breakdown = model.task_energy(600.0, execution_time_s=1.0)
        assert breakdown.leakage_share == pytest.approx(
            LEAKAGE_SHARE_AT_CALIBRATION)

    def test_dynamic_scales_quadratically(self, model):
        e600 = model.dynamic_energy_j(600.0)
        e450 = model.dynamic_energy_j(450.0)
        assert e450 / e600 == pytest.approx((450 / 600) ** 2)

    def test_leakage_current_grows_10pct_per_25mv(self, model):
        p600 = model.leakage_power_w(600.0)
        p575 = model.leakage_power_w(575.0)
        # Power = current x Vcc: current factor 1.1, voltage factor 575/600.
        assert p575 / p600 == pytest.approx(1.1 * 575 / 600)

    def test_overhead_adder(self, model):
        base = model.dynamic_energy_j(500.0)
        with_ovh = model.dynamic_energy_j(500.0, overhead=0.01)
        assert with_ovh / base == pytest.approx(1.01)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            EnergyModel(reference_dynamic_j=0.0)
        with pytest.raises(ValueError):
            EnergyModel().task_energy(500.0, execution_time_s=0.0)


class TestRelativeMetrics:
    def test_high_vcc_iraw_slightly_worse(self, model):
        """Paper Figure 12: ~1% worse energy when IRAW is idle (>=600mV)."""
        row = model.relative_metrics(650.0, baseline_time_s=1.0,
                                     iraw_time_s=1.0)
        assert row["delay_ratio"] == pytest.approx(1.0)
        assert 1.0 < row["energy_ratio"] < 1.02
        assert 1.0 < row["edp_ratio"] < 1.02

    def test_low_vcc_iraw_wins_all_metrics(self, model):
        """With the paper-implied time ratio at 450 mV (3.82 vs 2.13)."""
        row = model.relative_metrics(450.0, baseline_time_s=3.82,
                                     iraw_time_s=2.13)
        assert row["delay_ratio"] < 1.0
        assert row["energy_ratio"] < 1.0
        assert row["edp_ratio"] < row["energy_ratio"]

    def test_edp_anchor_450mv(self, model):
        """Paper: relative EDP ~0.41 at 450 mV."""
        row = model.relative_metrics(450.0, baseline_time_s=3.82,
                                     iraw_time_s=2.13)
        assert row["edp_ratio"] == pytest.approx(0.41, abs=0.08)

    def test_edp_anchor_500mv(self, model):
        """Paper: relative EDP ~0.61 at 500 mV (times implied by gains)."""
        row = model.relative_metrics(500.0, baseline_time_s=1.857,
                                     iraw_time_s=1.857 / 1.48)
        assert row["edp_ratio"] == pytest.approx(0.61, abs=0.10)


class TestPaperExample:
    def test_450mv_joule_accounting(self, model):
        """Paper Section 5.3: 5 J unconstrained, 8.50 J baseline, 6.40 J IRAW."""
        cases = paper_450mv_example(model, unconstrained_time_s=1.0,
                                    baseline_time_s=3.82,
                                    iraw_time_s=2.13)
        assert cases["unconstrained"].total_j == pytest.approx(5.0)
        # Leakage split: paper reports 1.24 J / 4.74 J / 2.64 J.  Our model
        # reproduces the structure (leakage grows linearly with time) even
        # though the absolute split differs with the leakage-power model.
        assert cases["baseline"].total_j > cases["iraw"].total_j > 5.0
        ratio = (cases["baseline"].leakage_j
                 / cases["unconstrained"].leakage_j)
        assert ratio == pytest.approx(3.82, rel=1e-3)

    def test_breakdown_edp(self, model):
        b = model.task_energy(500.0, execution_time_s=2.0)
        assert b.edp == pytest.approx(b.total_j * 2.0)
