"""Tests for the Store Table (paper Section 4.4, Figure 10)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.stable import MatchKind, StoreTable
from repro.errors import ConfigError

#: DL0 geometry used by the table: 64 sets x 64-byte lines.
SET_STRIDE = 64 * 64


def make_table(n=1, entries=2):
    table = StoreTable(max_entries=entries, commit_width=1,
                       set_index_bits=6, line_size=64)
    table.configure(n)
    return table


class TestLookupOutcomes:
    def test_no_match_is_the_common_case(self):
        table = make_table()
        table.store_committed(0x1000, data=5, cycle=10)
        # 0x1040 maps to set 1 while 0x1000 maps to set 0.
        result = table.lookup(0x1040, cycle=11)
        assert result.kind is MatchKind.NONE
        assert not result.needs_repair

    def test_full_match_forwards_data(self):
        table = make_table()
        table.store_committed(0x1000, data=42, cycle=10)
        result = table.lookup(0x1000, cycle=11)
        assert result.kind is MatchKind.FULL
        assert result.data == 42
        assert result.needs_repair

    def test_set_only_match_repairs_without_data(self):
        """Same DL0 set, different line: the parallel set read may destroy
        the stabilizing line even though addresses differ (Section 4.4)."""
        table = make_table()
        table.store_committed(0x1000, data=42, cycle=10)
        result = table.lookup(0x1000 + SET_STRIDE, cycle=11)
        assert result.kind is MatchKind.SET_ONLY
        assert result.data is None
        assert result.needs_repair

    def test_different_set_no_match(self):
        table = make_table()
        table.store_committed(0x1000, data=42, cycle=10)
        result = table.lookup(0x1040, cycle=11)  # next set
        assert result.kind is MatchKind.NONE

    def test_expired_entries_do_not_match(self):
        """Entries only cover the last N cycles of stores."""
        table = make_table(n=1)
        table.store_committed(0x1000, data=42, cycle=10)
        assert table.lookup(0x1000, cycle=12).kind is MatchKind.NONE

    def test_youngest_full_match_wins(self):
        table = make_table(n=2, entries=2)
        table.store_committed(0x1000, data=1, cycle=10)
        table.store_committed(0x1000, data=2, cycle=11)
        result = table.lookup(0x1000, cycle=12)
        assert result.data == 2


class TestReplay:
    def test_replay_counts_from_oldest_match(self):
        table = make_table(n=2, entries=2)
        table.store_committed(0x1000, data=1, cycle=10)
        table.store_committed(0x2000, data=2, cycle=11)
        result = table.lookup(0x1000, cycle=11)
        # Oldest match is cycle 10; both live entries replay.
        assert result.replayed_stores == 2
        assert table.replays == 2

    def test_replay_refreshes_entries(self):
        """Replayed stores rewrite DL0 and hence re-enter stabilization."""
        table = make_table(n=1)
        table.store_committed(0x1000, data=7, cycle=10)
        table.lookup(0x1000, cycle=11)       # triggers replay at 11
        result = table.lookup(0x1000, cycle=12)
        assert result.kind is MatchKind.FULL  # entry still live (refreshed)


class TestConfiguration:
    def test_entry_budget_follows_n(self):
        """Paper: 1 store/cycle x 2 stabilization cycles -> 2 entries."""
        table = StoreTable(max_entries=2, commit_width=1)
        table.configure(2)
        assert table._active_entries == 2

    def test_n_beyond_sizing_rejected(self):
        table = StoreTable(max_entries=2, commit_width=1)
        with pytest.raises(ConfigError):
            table.configure(3)

    def test_disabled_table_ignores_everything(self):
        table = make_table(n=0)
        table.store_committed(0x1000, data=5, cycle=0)
        assert table.lookup(0x1000, cycle=0).kind is MatchKind.NONE
        assert table.stores_tracked == 0

    def test_flush_invalidates(self):
        table = make_table()
        table.store_committed(0x1000, data=5, cycle=10)
        table.flush()
        assert table.lookup(0x1000, cycle=10).kind is MatchKind.NONE

    def test_sizing_validation(self):
        with pytest.raises(ConfigError):
            StoreTable(max_entries=0)
        with pytest.raises(ConfigError):
            StoreTable(line_size=48)


class TestRoundRobin:
    def test_oldest_entry_replaced(self):
        table = make_table(n=2, entries=2)
        # Distinct DL0 sets: 0x1000 -> set 0, 0x2040 -> set 1, 0x3080 -> set 2.
        table.store_committed(0x1000, data=1, cycle=10)
        table.store_committed(0x2040, data=2, cycle=11)
        table.store_committed(0x3080, data=3, cycle=12)  # replaces 0x1000
        assert table.lookup(0x1000, cycle=12).kind is MatchKind.NONE
        assert table.lookup(0x2040, cycle=12).kind is MatchKind.FULL


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([0x1000, 0x1008, 0x1000 + SET_STRIDE,
                                           0x5000]),
                          st.integers(min_value=0, max_value=255)),
                min_size=1, max_size=30))
def test_full_match_always_returns_last_store_value(operations):
    """Property: an immediate load after a store to the same word always
    forwards that store's value (the Figure 10 correctness guarantee)."""
    table = make_table(n=1)
    cycle = 0
    for address, value in operations:
        table.store_committed(address, data=value, cycle=cycle)
        result = table.lookup(address, cycle=cycle + 1)
        assert result.kind is MatchKind.FULL
        assert result.data == value
        cycle += 2
