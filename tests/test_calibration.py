"""Tests for the anchor-point calibration (repro.circuits.calibration)."""

import pytest

from repro.circuits import constants
from repro.circuits.calibration import anchor_report, fit_model, make_logic_device


class TestFit:
    @pytest.fixture(scope="class")
    def fitted(self):
        return fit_model()

    def test_fit_reproduces_pinned_constants(self, fitted):
        """The pinned constants in constants.py must match a fresh fit."""
        assert fitted.write_device.vth_mv == pytest.approx(
            constants.WRITE_VTH_MV, rel=1e-3)
        assert fitted.write_device.n == pytest.approx(
            constants.WRITE_N, rel=1e-3)
        assert fitted.write_device.kd == pytest.approx(
            constants.WRITE_KD, rel=1e-2)
        assert fitted.flip_device.vth_mv == pytest.approx(
            constants.FLIP_VTH_MV, rel=1e-3)
        assert fitted.wordline_fraction == pytest.approx(
            constants.WORDLINE_FRACTION, rel=1e-2)
        assert fitted.stabilization_slowdown == pytest.approx(
            constants.STABILIZATION_SLOWDOWN, rel=1e-2)

    def test_all_anchors_within_tolerance(self, fitted):
        for anchor in anchor_report(fitted):
            assert anchor.relative_error < 0.10, anchor.name

    def test_stabilization_slowdown_physical(self, fitted):
        """Unassisted flip cannot be faster than the assisted write."""
        assert fitted.stabilization_slowdown >= 1.0


class TestLogicDevice:
    def test_normalized_at_700(self):
        logic = make_logic_device()
        assert logic.delay(700.0) == pytest.approx(1.0)

    def test_pinned_logic_parameters(self):
        logic = make_logic_device()
        assert logic.vth_mv == constants.LOGIC_VTH_MV
        assert logic.n == constants.LOGIC_N


class TestDefaultModel:
    def test_default_model_is_consistent(self):
        model = constants.default_delay_model()
        assert model.read_fraction == constants.READ_FRACTION
        assert model.wordline_fraction == pytest.approx(
            constants.WORDLINE_FRACTION)
        assert model.logic(700.0) == pytest.approx(1.0)
