"""Tests for the extensions: DVFS scenario, determinism mode, and the
IRAW + Faulty Bits combination (paper Sections 4.4/4.5 and DESIGN.md)."""

import pytest

from repro.analysis.dvfs import DvfsPhase, DvfsScenario
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.branch.iraw_effects import DeterminismMode
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.errors import ConfigError
from repro.pipeline.core import simulate
from repro.workloads.kernels import kernel_trace
from repro.workloads.profiles import SPECINT_LIKE
from repro.workloads.synthetic import SyntheticTraceGenerator


@pytest.fixture(scope="module")
def trace():
    return SyntheticTraceGenerator(SPECINT_LIKE, seed=2).generate(3000)


class TestDvfsScenario:
    def test_schedule_must_cover_trace(self, trace):
        scenario = DvfsScenario()
        with pytest.raises(ConfigError):
            scenario.run(trace, [DvfsPhase(500.0, 10)])

    def test_phases_run_at_their_frequencies(self, trace):
        scenario = DvfsScenario(scheme=ClockScheme.IRAW)
        outcome = scenario.run(trace, [DvfsPhase(650.0, 1500),
                                       DvfsPhase(500.0, 1500)])
        high, low = outcome.phases
        assert high.frequency_mhz > low.frequency_mhz
        assert high.stabilization_cycles == 0
        assert low.stabilization_cycles == 1
        assert outcome.transitions == 2
        assert outcome.instructions == 3000

    def test_iraw_beats_baseline_through_schedule(self, trace):
        schedule = [DvfsPhase(600.0, 1000), DvfsPhase(500.0, 1000),
                    DvfsPhase(450.0, 1000)]
        iraw = DvfsScenario(scheme=ClockScheme.IRAW).run(trace, schedule)
        base = DvfsScenario(scheme=ClockScheme.BASELINE).run(trace, schedule)
        assert iraw.total_time_s < base.total_time_s

    def test_transition_overhead_counted(self, trace):
        scenario = DvfsScenario(transition_ns=1e6)
        outcome = scenario.run(trace, [DvfsPhase(500.0, 3000)])
        assert outcome.transition_time_s == pytest.approx(1e-3)

    def test_energy_accounting(self, trace):
        scenario = DvfsScenario(scheme=ClockScheme.IRAW)
        outcome = scenario.run(trace, [DvfsPhase(600.0, 1500),
                                       DvfsPhase(450.0, 1500)])
        assert scenario.energy_j(outcome) > 0

    def test_phase_validation(self):
        with pytest.raises(ConfigError):
            DvfsPhase(500.0, 0)


class TestDeterminismMode:
    def test_deterministic_runs_have_zero_hazards(self):
        trace, _ = kernel_trace("calls", 30)
        config = IrawConfig(stabilization_cycles=1,
                            determinism_mode=DeterminismMode.DETERMINISTIC)
        result = simulate(trace, config)
        assert result.prediction_hazards["bp_hazard_reads"] == 0
        assert result.prediction_hazards["rsb_hazard_pops"] == 0
        assert result.value_mismatches == 0

    def test_ignore_mode_counts_hazards_without_stalling(self):
        trace, _ = kernel_trace("calls", 30)
        ignore = simulate(trace, IrawConfig(stabilization_cycles=1))
        deterministic = simulate(
            trace, IrawConfig(
                stabilization_cycles=1,
                determinism_mode=DeterminismMode.DETERMINISTIC))
        # Determinism can only slow things down (RSB stall-after-call).
        assert deterministic.cycles >= ignore.cycles

    def test_both_modes_produce_correct_results(self):
        trace, _ = kernel_trace("calls", 30)
        for mode in DeterminismMode:
            result = simulate(trace, IrawConfig(stabilization_cycles=1,
                                                determinism_mode=mode))
            assert result.value_mismatches == 0


class TestIrawPlusFaultyBits:
    def test_combination_raises_frequency_further(self):
        """Paper Section 4.4: 'both ... can be combined to further
        increase DL0 operating frequency if required'."""
        solver = FrequencySolver()
        faulty = FaultyBitsBaseline(solver, design_sigma=4.0)
        plain_iraw = solver.operating_point(450.0, ClockScheme.IRAW)
        combined = faulty.combined_with_iraw_point(450.0)
        assert combined.frequency_mhz > plain_iraw.frequency_mhz

    def test_combination_still_uses_stabilization(self):
        solver = FrequencySolver()
        faulty = FaultyBitsBaseline(solver, design_sigma=4.0)
        combined = faulty.combined_with_iraw_point(450.0)
        assert combined.stabilization_cycles >= 1
