"""Differential fuzzing: random programs, interpreter vs pipeline.

Hypothesis generates random (but always-terminating) programs over the
mini ISA; each is assembled, interpreted (golden model) and then executed
by the cycle-level pipeline under a randomly chosen *valid* IRAW
configuration.  The pipeline recomputes every value through its modeled
datapath, so any scheduling bug that lets a consumer read a stabilizing
register/cache word — under any N, bypass depth or mechanism combination
— shows up as a golden-value mismatch or a violation count.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis.sweep import warm_caches
from repro.core.config import IrawConfig
from repro.pipeline.core import CoreSetup, InOrderCore, simulate
from repro.workloads.assembler import assemble
from repro.workloads.interpreter import run_program

#: Registers the generated programs may touch (r10-r17 data, r1-r3 loop).
_DATA_REGS = list(range(10, 18))

_BIN_OPS = ("add", "sub", "mul", "and", "or", "xor", "cmplt", "cmpeq")
_LONG_OPS = ("div", "fadd", "fmul")


@st.composite
def random_program(draw):
    """A loop over a random straight-line body with loads and stores."""
    body_length = draw(st.integers(min_value=3, max_value=14))
    iterations = draw(st.integers(min_value=1, max_value=6))
    lines = [
        "        li r1, %d" % iterations,
        "        li r9, 0x4000",        # memory base
    ]
    for reg in _DATA_REGS:
        lines.append("        li r%d, %d"
                     % (reg, draw(st.integers(0, 9999))))
    lines.append("loop:")
    for _ in range(body_length):
        kind = draw(st.sampled_from(["bin", "bin", "bin", "long",
                                     "store", "load", "storeload"]))
        dest = draw(st.sampled_from(_DATA_REGS))
        a = draw(st.sampled_from(_DATA_REGS))
        b = draw(st.sampled_from(_DATA_REGS))
        offset = draw(st.integers(0, 15)) * 8
        if kind == "bin":
            op = draw(st.sampled_from(_BIN_OPS))
            lines.append(f"        {op} r{dest}, r{a}, r{b}")
        elif kind == "long":
            op = draw(st.sampled_from(_LONG_OPS))
            lines.append(f"        {op} r{dest}, r{a}, r{b}")
        elif kind == "store":
            lines.append(f"        st r{a}, r9, {offset}")
        elif kind == "load":
            lines.append(f"        ld r{dest}, r9, {offset}")
        else:  # store immediately followed by a load of the same word
            lines.append(f"        st r{a}, r9, {offset}")
            lines.append(f"        ld r{dest}, r9, {offset}")
    lines.append("        sub r1, r1, 1")
    lines.append("        bne r1, r0, loop")
    # Spill the final state so every register value is architecturally
    # observable through memory.
    for position, reg in enumerate(_DATA_REGS):
        lines.append(f"        st r{reg}, r9, {512 + 8 * position}")
    lines.append("        halt")
    return "\n".join(lines)


@st.composite
def random_iraw_config(draw):
    """Any *valid* mechanism configuration (all protections enabled)."""
    n = draw(st.integers(min_value=0, max_value=2))
    bypass = draw(st.integers(min_value=1, max_value=2))
    return IrawConfig(stabilization_cycles=n, bypass_levels=bypass)


@settings(max_examples=25, deadline=None)
@given(source=random_program(), config=random_iraw_config())
def test_pipeline_matches_interpreter(source, config):
    program = assemble(source)
    trace, golden_state = run_program(program, trace_name="fuzz")
    result = simulate(trace, config)

    assert result.value_mismatches == 0
    assert result.iraw_violations == 0
    assert result.instructions == len(trace)


def _warmed_cycles(trace, config: IrawConfig) -> int:
    core = InOrderCore(CoreSetup(iraw=config))
    warm_caches(core.memory, trace)
    return core.run(trace).cycles


@settings(max_examples=10, deadline=None, derandomize=True)
@given(source=random_program())
def test_iraw_timing_dominates_baseline(source):
    """For any program: IRAW at iso-frequency only adds cycles.

    Stated at iso-warmup (the harness always replays caches before the
    timed run): on a cold hierarchy, miss alignment can make the
    *slower*-issuing configuration overlap fetch misses better and
    finish in fewer cycles — a classic timing anomaly, not an IRAW
    property violation.  Derandomized so tier-1 stays deterministic.
    """
    program = assemble(source)
    trace, _ = run_program(program, trace_name="fuzz")
    base = _warmed_cycles(trace, IrawConfig.disabled())
    iraw = _warmed_cycles(trace, IrawConfig(stabilization_cycles=1))
    deeper = _warmed_cycles(trace, IrawConfig(stabilization_cycles=2))
    assert base <= iraw <= deeper
