"""Tests for the EKV current/delay model (repro.circuits.ekv)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.circuits.ekv import (
    Device,
    VCC_MAX_MV,
    VCC_MIN_MV,
    check_voltage,
    softplus,
    voltage_grid,
)
from repro.errors import VoltageRangeError


class TestSoftplus:
    def test_matches_reference_in_normal_range(self):
        for x in (-5.0, -1.0, 0.0, 0.5, 3.0, 20.0):
            assert softplus(x) == pytest.approx(math.log1p(math.exp(x)))

    def test_large_positive_is_identity(self):
        assert softplus(100.0) == 100.0

    def test_large_negative_is_exponential(self):
        assert softplus(-100.0) == pytest.approx(math.exp(-100.0))

    @given(st.floats(min_value=-50, max_value=50))
    def test_positive_and_increasing(self, x):
        assert softplus(x) > 0
        assert softplus(x + 0.1) > softplus(x)


class TestDevice:
    def test_current_increases_with_voltage(self):
        dev = Device("d", vth_mv=300.0, n=1.5, kd=1.0)
        currents = [dev.current(v) for v in (400, 500, 600, 700)]
        assert currents == sorted(currents)
        assert currents[0] > 0

    def test_delay_decreases_with_voltage(self):
        dev = Device("d", vth_mv=300.0, n=1.5, kd=1.0)
        delays = [dev.delay(v) for v in (400, 500, 600, 700)]
        assert delays == sorted(delays, reverse=True)

    def test_subthreshold_growth_is_exponential(self):
        """Below Vth, halving the overdrive multiplies delay hugely."""
        dev = Device("weak", vth_mv=450.0, n=1.0, kd=1.0)
        ratio_high = dev.delay(600.0) / dev.delay(650.0)
        ratio_low = dev.delay(400.0) / dev.delay(450.0)
        assert ratio_low > ratio_high  # super-linear growth at low Vcc

    def test_scaled_to_pins_delay(self):
        dev = Device("d", vth_mv=250.0, n=1.4, kd=3.7)
        scaled = dev.scaled_to(700.0, 1.0)
        assert scaled.delay(700.0) == pytest.approx(1.0)
        # Shape is preserved: ratios unchanged.
        assert (scaled.delay(500.0) / scaled.delay(700.0)
                == pytest.approx(dev.delay(500.0) / dev.delay(700.0)))

    def test_delay_outside_range_raises(self):
        dev = Device("d", vth_mv=300.0, n=1.5, kd=1.0)
        with pytest.raises(VoltageRangeError):
            dev.delay(399.9)
        with pytest.raises(VoltageRangeError):
            dev.delay(700.1)

    @given(st.floats(min_value=VCC_MIN_MV, max_value=VCC_MAX_MV))
    def test_delay_positive_everywhere(self, vcc):
        dev = Device("d", vth_mv=420.0, n=0.9, kd=0.01)
        assert dev.delay(vcc) > 0


class TestVoltageHelpers:
    def test_check_voltage_bounds(self):
        check_voltage(VCC_MIN_MV)
        check_voltage(VCC_MAX_MV)
        with pytest.raises(VoltageRangeError):
            check_voltage(VCC_MIN_MV - 1)

    def test_grid_matches_paper_sweep(self):
        grid = voltage_grid(25.0)
        assert grid[0] == 700.0
        assert grid[-1] == 400.0
        assert len(grid) == 13

    def test_grid_custom_step(self):
        grid = voltage_grid(50.0)
        assert grid == [700.0, 650.0, 600.0, 550.0, 500.0, 450.0, 400.0]

    def test_grid_rejects_bad_step(self):
        with pytest.raises(VoltageRangeError):
            voltage_grid(0.0)
        with pytest.raises(VoltageRangeError):
            voltage_grid(-25.0)
