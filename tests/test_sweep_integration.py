"""Integration tests for the Vcc-sweep harness (small populations)."""

import pytest

from repro.analysis.sweep import SweepSettings, VccSweep, warm_caches
from repro.circuits.frequency import ClockScheme
from repro.memory.hierarchy import MemorySystem
from repro.workloads.kernels import kernel_trace
from repro.workloads.profiles import KERNEL_LIKE, SPECINT_LIKE

#: Full-population sweep simulations; CI matrix legs skip via -m "not slow".
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep():
    settings = SweepSettings(profiles=(SPECINT_LIKE, KERNEL_LIKE),
                             trace_length=3000)
    return VccSweep(settings)


class TestWarmCaches:
    def test_warmup_reduces_misses(self):
        trace, _ = kernel_trace("memcpy", 200)
        cold = MemorySystem()
        warm = MemorySystem()
        warm_caches(warm, trace)
        for op in trace.ops[:50]:
            if op.mem_addr is not None:
                cold.load(op.mem_addr, 0)
                warm.load(op.mem_addr, 0)
        assert warm.dl0.misses < cold.dl0.misses

    def test_warmup_resets_stats(self):
        trace, _ = kernel_trace("memcpy", 50)
        memory = MemorySystem()
        warm_caches(memory, trace)
        assert memory.dl0.accesses == 0


class TestSweepPoints:
    def test_point_caching(self, sweep):
        a = sweep.run_point(500.0, ClockScheme.IRAW)
        b = sweep.run_point(500.0, ClockScheme.IRAW)
        assert a is b

    def test_overrides_create_new_points(self, sweep):
        a = sweep.run_point(500.0, ClockScheme.IRAW)
        b = sweep.run_point(500.0, ClockScheme.IRAW, rf_enabled=False)
        assert a is not b

    def test_no_violations_at_any_point(self, sweep):
        for scheme in (ClockScheme.BASELINE, ClockScheme.IRAW):
            point = sweep.run_point(500.0, scheme)
            assert point.iraw_violations == 0

    def test_iraw_runs_at_higher_frequency(self, sweep):
        base = sweep.run_point(500.0, ClockScheme.BASELINE)
        iraw = sweep.run_point(500.0, ClockScheme.IRAW)
        assert iraw.point.frequency_mhz > base.point.frequency_mhz
        assert iraw.ipc < base.ipc  # stalls + memory cycles


class TestCompare:
    def test_headline_shape_at_500(self, sweep):
        row = sweep.compare(500.0)
        assert row["frequency_gain"] == pytest.approx(0.57, abs=0.03)
        assert 0.0 < row["performance_gain"] < row["frequency_gain"]
        assert 0 < row["iraw_delay_fraction"] < 0.35
        assert row["stabilization_cycles"] == 1

    def test_no_gain_at_650(self, sweep):
        row = sweep.compare(650.0)
        assert row["frequency_gain"] == pytest.approx(0.0, abs=1e-9)
        assert row["performance_gain"] == pytest.approx(0.0, abs=1e-6)

    def test_execution_times_ordered(self, sweep):
        base_t, iraw_t = sweep.execution_times(500.0)
        assert iraw_t < base_t


class TestStallDecomposition:
    def test_rf_dominates(self, sweep):
        decomp = sweep.stall_decomposition(575.0)
        assert decomp["rf_drop"] > decomp["dl0_drop"]
        assert decomp["rf_drop"] > 0.01
        assert 0 <= decomp["dl0_drop"] < 0.05
        assert 0 < decomp["total_drop"] < 0.25

    def test_delay_fraction_in_paper_ballpark(self, sweep):
        """Paper: 13.2% of instructions delayed; ours within ~2x."""
        decomp = sweep.stall_decomposition(575.0)
        assert 0.05 < decomp["iraw_delay_fraction"] < 0.30
