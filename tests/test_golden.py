"""Golden-result regression suite for the sharded engine.

Small JSON goldens for Table 1 and one Figure 11(b) slice, generated at
``workers=1`` (the bit-identical serial path) on a fixed two-trace
population, lock down the per-trace sharding refactor: any change to the
shard split, the aggregation order, or the executors that shifts a single
cycle count shows up as a golden diff.

Serial, pool-parallel and queue-distributed runs must all reproduce the
goldens (backend equivalence).  Integer fields (cycle and instruction
counts) are compared exactly; floats are compared to 1e-12 relative —
bit-identical in practice, with the tolerance only guarding libm
variation across platforms.

Regenerate (after an *intentional* simulator change) with::

    PYTHONPATH=src python tests/test_golden.py --regen
"""

import json
import math
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import rv32i_programs  # noqa: E402  (sibling fixture-builder module)

from repro.analysis.sweep import SweepSettings, VccSweep
from repro.analysis.table1 import build_table1
from repro.engine import ParallelRunner, QueueBackend, ResultCache
from repro.experiments import Experiment, ExperimentSpec, RiscvProgramRef
from repro.montecarlo import ImportanceSpec, MonteCarloSpec, \
    deep_tail_rows, montecarlo_jobs, yield_curve_rows
from repro.workloads.profiles import KERNEL_LIKE, SPECINT_LIKE
from repro.workloads.riscv import RiscvProgram, StepState, \
    diff_state_traces, run_riscv_program, state_trace

pytestmark = pytest.mark.engine

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"
RV32I_GOLDEN_DIR = GOLDEN_DIR / "rv32i"

#: The golden population: two profiles, one seed each, short traces —
#: big enough to exercise aggregation across traces, small enough that
#: every CI matrix leg can afford the regeneration.
GOLDEN_SETTINGS = SweepSettings(profiles=(KERNEL_LIKE, SPECINT_LIKE),
                                trace_length=600)
GOLDEN_VCC = 500.0

#: The same campaign as a declarative spec: the experiment driver must
#: reproduce the goldens bit-identically through this description.
GOLDEN_SPEC = ExperimentSpec(
    name="golden",
    profiles=(KERNEL_LIKE.name, SPECINT_LIKE.name),
    trace_length=600,
    vcc_mv=(GOLDEN_VCC,),
    table1_vcc_mv=GOLDEN_VCC,
    artifacts=("table1", "fig11b"),
)


#: The mixed-origin campaign: one synthetic profile plus two of the
#: committed RV32I binaries (one flat image, one ELF).  Locks that real
#: compiled programs flow through sharding, caching and every backend
#: exactly like synthetic traces — and that their Table-1-style rows
#: are bit-identical everywhere.
GOLDEN_RISCV_SPEC = ExperimentSpec(
    name="golden-riscv",
    profiles=(KERNEL_LIKE.name,),
    trace_length=600,
    vcc_mv=(GOLDEN_VCC,),
    table1_vcc_mv=GOLDEN_VCC,
    artifacts=("table1", "fig11b"),
    riscv=(
        RiscvProgramRef("loop", str(rv32i_programs.fixture_path("loop"))),
        RiscvProgramRef("memcpy",
                        str(rv32i_programs.fixture_path("memcpy"))),
    ),
)


#: The golden die-sampling campaign: one Vcc point, both schemes, 16
#: dies — locks the per-die RNG streams, the max-of-N inverse-CDF
#: sampling and the streaming yield reduction bit-for-bit.
GOLDEN_MC = MonteCarloSpec(dies=16, seed=0)
GOLDEN_MC_SCHEMES = ("baseline", "iraw")

#: The golden importance-sampled campaign: 64 dies in two ``mc-block``
#: jobs per grid point, proposal shifted one cell sigma — locks the
#: shifted die-offset draws, the exact Gaussian log weights and the
#: self-normalized deep-tail reduction bit-for-bit.  An explicit float
#: shift (not ``"auto"``) so the golden cannot move if the auto
#: heuristic is retuned.
GOLDEN_DEEP_MC = MonteCarloSpec(dies=64, seed=0, block=32,
                                importance=ImportanceSpec(shift_sigma=1.0))


def compute_artifacts(runner: ParallelRunner | None = None) -> dict:
    """Regenerate both golden artifacts through one sweep/runner."""
    sweep = VccSweep(GOLDEN_SETTINGS, runner=runner)
    return {
        "table1": build_table1(sweep, GOLDEN_VCC),
        "fig11b_500mv": sweep.compare(GOLDEN_VCC),
    }


def compute_yield_curve(runner: ParallelRunner | None = None) -> list:
    """The golden ``yield_curve`` slice at 500 mV."""
    runner = runner or ParallelRunner()
    jobs = montecarlo_jobs(GOLDEN_MC, (GOLDEN_VCC,), GOLDEN_MC_SCHEMES)
    results = runner.run(jobs, label="golden-mc")
    return yield_curve_rows(results, (GOLDEN_VCC,), GOLDEN_MC_SCHEMES,
                            GOLDEN_MC.dies, GOLDEN_MC.confidence)


def compute_deep_tail(runner: ParallelRunner | None = None) -> list:
    """The golden ``deep_tail`` slice at 500 mV."""
    runner = runner or ParallelRunner()
    jobs = montecarlo_jobs(GOLDEN_DEEP_MC, (GOLDEN_VCC,),
                           GOLDEN_MC_SCHEMES)
    results = runner.run(jobs, label="golden-deep-tail")
    return deep_tail_rows(results, (GOLDEN_VCC,), GOLDEN_MC_SCHEMES,
                          GOLDEN_DEEP_MC.dies, GOLDEN_DEEP_MC.importance,
                          GOLDEN_DEEP_MC.confidence)


def compute_riscv_artifacts(runner: ParallelRunner | None = None) -> dict:
    """Run the mixed synthetic+riscv golden campaign end to end."""
    experiment = Experiment(GOLDEN_RISCV_SPEC, runner=runner)
    experiment.run()
    rendered = experiment.artifacts()
    return {"table1": rendered["table1"],
            "fig11b_500mv": rendered["fig11b"][0]}


def fixture_program(name: str) -> RiscvProgram:
    return RiscvProgram.from_file(rv32i_programs.fixture_path(name),
                                  name=name)


def load_golden(name: str):
    return json.loads((GOLDEN_DIR / f"{name}.json").read_text("utf-8"))


def load_rv32i_golden(name: str) -> dict:
    return json.loads(
        (RV32I_GOLDEN_DIR / f"{name}.json").read_text("utf-8"))


def assert_matches_golden(actual, golden, path: str = "") -> None:
    """Structural equality: ints/strings/bools exact, floats to 1e-12."""
    if isinstance(golden, dict):
        assert isinstance(actual, dict), f"{path}: expected mapping"
        assert sorted(actual) == sorted(golden), f"{path}: key set differs"
        for key in golden:
            assert_matches_golden(actual[key], golden[key], f"{path}.{key}")
    elif isinstance(golden, list):
        assert isinstance(actual, list), f"{path}: expected list"
        assert len(actual) == len(golden), f"{path}: length differs"
        for i, (a, g) in enumerate(zip(actual, golden)):
            assert_matches_golden(a, g, f"{path}[{i}]")
    elif isinstance(golden, bool):
        assert actual is golden, f"{path}: {actual!r} != {golden!r}"
    elif isinstance(golden, float):
        assert isinstance(actual, float), f"{path}: expected float"
        assert math.isclose(actual, golden, rel_tol=1e-12, abs_tol=1e-15), \
            f"{path}: {actual!r} != {golden!r}"
    else:
        assert actual == golden, f"{path}: {actual!r} != {golden!r}"


class TestGoldenSerial:
    """The default serial runner must reproduce the checked-in numbers."""

    def test_table1_matches_golden(self):
        artifacts = compute_artifacts()
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")

    def test_fig11b_slice_matches_golden(self):
        artifacts = compute_artifacts()
        assert_matches_golden(artifacts["fig11b_500mv"],
                              load_golden("fig11b_500mv"), "fig11b_500mv")


class TestGoldenSharded:
    """Sharded/parallel execution must aggregate to the same numbers."""

    def test_parallel_run_reproduces_goldens(self, tmp_path):
        runner = ParallelRunner(workers=2,
                                cache=ResultCache(root=tmp_path))
        artifacts = compute_artifacts(runner)
        assert runner.stats.sharded > 0  # population jobs really split
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")
        assert_matches_golden(artifacts["fig11b_500mv"],
                              load_golden("fig11b_500mv"), "fig11b_500mv")

    def test_warm_cache_run_reproduces_goldens(self, tmp_path):
        cold = ParallelRunner(workers=2, cache=ResultCache(root=tmp_path))
        compute_artifacts(cold)
        warm = ParallelRunner(workers=1, cache=ResultCache(root=tmp_path))
        artifacts = compute_artifacts(warm)
        assert warm.stats.simulated == 0  # every shard served from disk
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")


class TestGoldenQueue:
    """The distributed queue backend must be bit-identical too.

    The backend runs with in-process workers (``local_workers``), so the
    full wire path — shard pickled into ``pending/``, claimed via a
    rename-based lease, result pickled into ``done/`` and collected —
    is exercised without external processes.
    """

    @staticmethod
    def queue_runner(tmp_path, cache=None, workers=2) -> ParallelRunner:
        backend = QueueBackend(tmp_path / "spool", local_workers=workers,
                               lease_timeout=60.0, poll_interval=0.01)
        return ParallelRunner(backend=backend, cache=cache)

    def test_queue_backend_reproduces_goldens(self, tmp_path):
        runner = self.queue_runner(
            tmp_path, cache=ResultCache(root=tmp_path / "cache"))
        artifacts = compute_artifacts(runner)
        assert runner.stats.sharded > 0       # population jobs really split
        assert runner.stats.simulated > 0     # shards executed via the spool
        assert runner.stats.requeued == 0     # healthy run: no fault path
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")
        assert_matches_golden(artifacts["fig11b_500mv"],
                              load_golden("fig11b_500mv"), "fig11b_500mv")

    def test_warm_cache_queue_run_simulates_nothing(self, tmp_path):
        cold = ParallelRunner(workers=1,
                              cache=ResultCache(root=tmp_path / "cache"))
        compute_artifacts(cold)
        warm = self.queue_runner(
            tmp_path, cache=ResultCache(root=tmp_path / "cache"))
        artifacts = compute_artifacts(warm)
        assert warm.stats.simulated == 0   # nothing ever hits the spool
        assert list((tmp_path / "spool").rglob("*.job")) == []
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")


class TestGoldenExperiment:
    """The declarative driver must reproduce the goldens bit-identically.

    ``ExperimentSpec``/``Experiment.run`` is a *description* of the same
    campaign the legacy harness runs by hand; these tests pin the
    equivalence three ways — same rows (serial and pool), same on-disk
    cache keys (a spec run after a legacy run simulates nothing), and
    spec round-trips through TOML/JSON that preserve the job plan.
    """

    @staticmethod
    def experiment_artifacts(experiment: Experiment) -> dict:
        experiment.run()
        rendered = experiment.artifacts()
        return {"table1": rendered["table1"],
                "fig11b_500mv": rendered["fig11b"][0]}

    def test_serial_run_reproduces_goldens(self):
        artifacts = self.experiment_artifacts(Experiment(GOLDEN_SPEC))
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")
        assert_matches_golden(artifacts["fig11b_500mv"],
                              load_golden("fig11b_500mv"), "fig11b_500mv")

    def test_pool_run_reproduces_goldens(self, tmp_path):
        runner = ParallelRunner(workers=2,
                                cache=ResultCache(root=tmp_path))
        experiment = Experiment(GOLDEN_SPEC, runner=runner)
        artifacts = self.experiment_artifacts(experiment)
        assert runner.stats.sharded > 0  # population jobs really split
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")
        assert_matches_golden(artifacts["fig11b_500mv"],
                              load_golden("fig11b_500mv"), "fig11b_500mv")

    def test_spec_run_hits_legacy_cache_keys(self, tmp_path):
        """Spec-planned jobs carry the exact canonical keys the legacy
        harness produces: after a legacy warm-up, the experiment run is
        answered entirely from disk."""
        legacy = ParallelRunner(workers=1, cache=ResultCache(root=tmp_path))
        compute_artifacts(legacy)
        runner = ParallelRunner(workers=1, cache=ResultCache(root=tmp_path))
        experiment = Experiment(GOLDEN_SPEC, runner=runner)
        artifacts = self.experiment_artifacts(experiment)
        assert runner.stats.simulated == 0
        assert_matches_golden(artifacts["table1"], load_golden("table1"),
                              "table1")

    def test_spec_round_trips_preserve_job_keys(self):
        via_toml = ExperimentSpec.from_toml(GOLDEN_SPEC.to_toml())
        via_json = ExperimentSpec.from_json(GOLDEN_SPEC.to_json())
        assert via_toml == GOLDEN_SPEC
        assert via_json == GOLDEN_SPEC
        reference = Experiment(GOLDEN_SPEC).plan_keys()
        assert Experiment(via_toml).plan_keys() == reference
        assert Experiment(via_json).plan_keys() == reference


class TestGoldenRv32iStateTraces:
    """Every committed binary's architectural state, locked step by step.

    The goldens under ``goldens/rv32i/`` record one :class:`StepState`
    per retired instruction — pc, fetched word, register write, memory
    effect, next pc.  A semantic change anywhere in the decoder or the
    interpreter shows up as a named first-divergent instruction, not as
    a distant downstream artifact diff.
    """

    @pytest.mark.parametrize("name", sorted(rv32i_programs.PROGRAMS))
    def test_state_trace_matches_golden(self, name):
        golden = load_rv32i_golden(name)
        program = fixture_program(name)
        assert program.sha256 == golden["sha256"], \
            "committed binary differs from the one the golden was traced on"
        expected = [StepState.from_dict(step) for step in golden["steps"]]
        actual = list(state_trace(program))
        divergence = diff_state_traces(expected, actual)
        assert divergence is None, str(divergence)

    @pytest.mark.parametrize("name", sorted(rv32i_programs.PROGRAMS))
    def test_fixture_runs_to_recorded_exit(self, name):
        golden = load_rv32i_golden(name)
        _, machine = run_riscv_program(fixture_program(name))
        assert machine.halted
        assert machine.exit_code == golden["exit_code"]
        assert machine.steps == golden["instructions"]

    @pytest.mark.parametrize("name", sorted(rv32i_programs.PROGRAMS))
    def test_committed_binary_matches_builder(self, name):
        builder, filename = rv32i_programs.PROGRAMS[name]
        committed = rv32i_programs.fixture_path(name).read_bytes()
        assert committed == builder(), \
            f"{filename} drifted from its builder; rerun --regen"


class TestGoldenRiscvExperiment:
    """Mixed synthetic+riscv rows must reproduce through every backend."""

    def test_serial_matches_golden(self):
        artifacts = compute_riscv_artifacts()
        assert_matches_golden(artifacts["table1"],
                              load_golden("riscv_table1"), "riscv_table1")

    def test_pool_matches_golden(self, tmp_path):
        runner = ParallelRunner(workers=2,
                                cache=ResultCache(root=tmp_path))
        artifacts = compute_riscv_artifacts(runner)
        assert runner.stats.sharded > 0  # riscv traces shard like any other
        assert_matches_golden(artifacts["table1"],
                              load_golden("riscv_table1"), "riscv_table1")

    def test_queue_matches_golden(self, tmp_path):
        runner = TestGoldenQueue.queue_runner(
            tmp_path, cache=ResultCache(root=tmp_path / "cache"))
        artifacts = compute_riscv_artifacts(runner)
        assert runner.stats.requeued == 0
        assert_matches_golden(artifacts["table1"],
                              load_golden("riscv_table1"), "riscv_table1")

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        cold = ParallelRunner(workers=2, cache=ResultCache(root=tmp_path))
        compute_riscv_artifacts(cold)
        warm = ParallelRunner(workers=1, cache=ResultCache(root=tmp_path))
        artifacts = compute_riscv_artifacts(warm)
        assert warm.stats.simulated == 0  # program-byte keys hit the cache
        assert_matches_golden(artifacts["table1"],
                              load_golden("riscv_table1"), "riscv_table1")

    def test_spec_round_trips_preserve_job_keys(self):
        via_toml = ExperimentSpec.from_toml(GOLDEN_RISCV_SPEC.to_toml())
        via_json = ExperimentSpec.from_json(GOLDEN_RISCV_SPEC.to_json())
        assert via_toml == GOLDEN_RISCV_SPEC
        assert via_json == GOLDEN_RISCV_SPEC
        reference = Experiment(GOLDEN_RISCV_SPEC).plan_keys()
        assert Experiment(via_toml).plan_keys() == reference
        assert Experiment(via_json).plan_keys() == reference


class TestGoldenYieldCurve:
    """The die-sampling slice must reproduce bit-for-bit everywhere."""

    def test_serial_matches_golden(self):
        assert_matches_golden(compute_yield_curve(),
                              load_golden("yield_curve_500mv"),
                              "yield_curve_500mv")

    def test_pool_matches_golden(self, tmp_path):
        runner = ParallelRunner(workers=2,
                                cache=ResultCache(root=tmp_path))
        assert_matches_golden(compute_yield_curve(runner),
                              load_golden("yield_curve_500mv"),
                              "yield_curve_500mv")
        assert runner.stats.simulated == 2 * GOLDEN_MC.dies

    def test_queue_matches_golden(self, tmp_path):
        runner = TestGoldenQueue.queue_runner(tmp_path)
        assert_matches_golden(compute_yield_curve(runner),
                              load_golden("yield_curve_500mv"),
                              "yield_curve_500mv")
        assert runner.stats.requeued == 0

    def test_warm_cache_regeneration_is_free(self, tmp_path):
        cold = ParallelRunner(cache=ResultCache(root=tmp_path))
        compute_yield_curve(cold)
        warm = ParallelRunner(cache=ResultCache(root=tmp_path))
        assert_matches_golden(compute_yield_curve(warm),
                              load_golden("yield_curve_500mv"),
                              "yield_curve_500mv")
        assert warm.stats.simulated == 0


class TestGoldenDeepTail:
    """The importance-sampled slice must reproduce bit-for-bit too.

    Weighted reduction folds ``exp`` of per-die log weights in die
    order; these tests pin that the weights — not just the samples —
    survive every backend and the warm cache unchanged.
    """

    def test_serial_matches_golden(self):
        assert_matches_golden(compute_deep_tail(),
                              load_golden("deep_tail_500mv"),
                              "deep_tail_500mv")

    def test_pool_matches_golden(self, tmp_path):
        runner = ParallelRunner(workers=2,
                                cache=ResultCache(root=tmp_path))
        assert_matches_golden(compute_deep_tail(runner),
                              load_golden("deep_tail_500mv"),
                              "deep_tail_500mv")
        # One vectorized mc-block job per (scheme, die span).
        assert runner.stats.simulated == len(GOLDEN_MC_SCHEMES) * 2

    def test_queue_matches_golden(self, tmp_path):
        runner = TestGoldenQueue.queue_runner(tmp_path)
        assert_matches_golden(compute_deep_tail(runner),
                              load_golden("deep_tail_500mv"),
                              "deep_tail_500mv")
        assert runner.stats.requeued == 0

    def test_warm_cache_regeneration_is_free(self, tmp_path):
        cold = ParallelRunner(cache=ResultCache(root=tmp_path))
        compute_deep_tail(cold)
        warm = ParallelRunner(cache=ResultCache(root=tmp_path))
        assert_matches_golden(compute_deep_tail(warm),
                              load_golden("deep_tail_500mv"),
                              "deep_tail_500mv")
        assert warm.stats.simulated == 0


def _regenerate() -> None:  # pragma: no cover - maintenance entry point
    GOLDEN_DIR.mkdir(exist_ok=True)
    RV32I_GOLDEN_DIR.mkdir(exist_ok=True)
    # Rebuild the binaries first so fixtures and goldens move together.
    for path in rv32i_programs.write_fixtures():
        print(f"wrote {path}")
    artifacts = compute_artifacts()
    artifacts["yield_curve_500mv"] = compute_yield_curve()
    artifacts["deep_tail_500mv"] = compute_deep_tail()
    artifacts["riscv_table1"] = compute_riscv_artifacts()["table1"]
    for name, data in artifacts.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")
    for name in sorted(rv32i_programs.PROGRAMS):
        program = fixture_program(name)
        steps = [record.to_dict() for record in state_trace(program)]
        _, machine = run_riscv_program(program)
        data = {"program": name, "sha256": program.sha256,
                "exit_code": machine.exit_code,
                "instructions": machine.steps, "steps": steps}
        path = RV32I_GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":  # pragma: no cover
    if "--regen" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
