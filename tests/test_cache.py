"""Tests for the set-associative cache model, incl. a reference-model
property test (hypothesis) for LRU behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryModelError
from repro.memory.cache import Cache
from repro.memory.replacement import LruPolicy, RandomPolicy


def make_cache(**kwargs):
    defaults = dict(name="T", size_bytes=1024, associativity=2,
                    line_size=64, hit_latency=1)
    defaults.update(kwargs)
    return Cache(**defaults)


class TestGeometry:
    def test_sets_computed(self):
        cache = make_cache()
        assert cache.num_sets == 1024 // (2 * 64)

    def test_rejects_nondivisible_size(self):
        with pytest.raises(MemoryModelError):
            make_cache(size_bytes=1000)

    def test_rejects_nonpositive(self):
        with pytest.raises(MemoryModelError):
            make_cache(associativity=0)

    def test_address_helpers(self):
        cache = make_cache()
        assert cache.line_address(130) == 128
        assert cache.set_index(0) == cache.set_index(
            cache.num_sets * 64)  # wraps around
        assert cache.tag_of(0) != cache.tag_of(cache.num_sets * 64)


class TestBasicBehaviour:
    def test_miss_then_hit_after_fill(self):
        cache = make_cache()
        assert not cache.access(0x100).hit
        cache.fill(0x100)
        assert cache.access(0x100).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_word_hits(self):
        cache = make_cache()
        cache.fill(0x100)
        assert cache.access(0x13F).hit  # same 64-byte line

    def test_lru_eviction(self):
        cache = make_cache()  # 2-way
        stride = cache.num_sets * 64  # same-set stride
        cache.fill(0)
        cache.fill(stride)
        cache.access(0)  # make address 0 most recent
        cache.fill(2 * stride)  # evicts `stride`
        assert cache.access(0).hit
        assert not cache.access(stride).hit

    def test_dirty_eviction_reports_writeback(self):
        cache = make_cache()
        stride = cache.num_sets * 64
        cache.fill(0)
        cache.access(0, is_write=True)  # dirty
        cache.fill(stride)
        result = cache.fill(2 * stride)  # LRU victim is line 0 (dirty)
        assert result.writeback_address == 0
        assert cache.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        cache = make_cache()
        stride = cache.num_sets * 64
        cache.fill(0)
        cache.fill(stride)
        result = cache.fill(2 * stride)
        assert result.writeback_address is None

    def test_fill_dirty_flag(self):
        cache = make_cache()
        stride = cache.num_sets * 64
        cache.fill(0, dirty=True)
        cache.fill(stride)
        result = cache.fill(2 * stride)
        assert result.writeback_address == 0

    def test_invalidate(self):
        cache = make_cache()
        cache.fill(0x40)
        assert cache.invalidate(0x40)
        assert not cache.access(0x40).hit
        assert not cache.invalidate(0x40)

    def test_refill_present_line_is_benign(self):
        cache = make_cache()
        cache.fill(0x40)
        result = cache.fill(0x40, dirty=True)
        assert result.hit
        assert cache.evictions == 0

    def test_stats_reset(self):
        cache = make_cache()
        cache.access(0)
        cache.reset_stats()
        assert cache.accesses == 0
        assert cache.miss_rate == 0.0


class TestDisabledWays:
    def test_disabled_ways_shrink_capacity(self):
        cache = make_cache()
        disabled = [1] * cache.num_sets  # 2-way down to 1-way
        faulty = make_cache(disabled_ways=disabled)
        stride = faulty.num_sets * 64
        faulty.fill(0)
        faulty.fill(stride)  # must evict line 0 (only 1 usable way)
        assert not faulty.access(0).hit

    def test_fully_disabled_set_caches_nothing(self):
        cache = make_cache(disabled_ways=None)
        disabled = [2] * cache.num_sets
        dead = make_cache(disabled_ways=disabled)
        dead.fill(0)
        assert not dead.access(0).hit

    def test_disabled_ways_validation(self):
        with pytest.raises(MemoryModelError):
            make_cache(disabled_ways=[0, 1])  # wrong number of sets
        cache = make_cache()
        with pytest.raises(MemoryModelError):
            make_cache(disabled_ways=[3] * cache.num_sets)  # > assoc


class TestReplacementPolicies:
    def test_lru_picks_smallest_stamp(self):
        assert LruPolicy().victim([5, 3, 9]) == 1

    def test_random_policy_in_range(self):
        policy = RandomPolicy(seed=0)
        for _ in range(50):
            assert 0 <= policy.victim([1, 2, 3, 4]) < 4


class _ReferenceLru:
    """Dict-based golden model of a set-associative LRU cache."""

    def __init__(self, num_sets, assoc, line_size):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_size = line_size
        self.sets = [[] for _ in range(num_sets)]  # MRU at end

    def _locate(self, address):
        line = address // self.line_size
        return line % self.num_sets, line // self.num_sets

    def access(self, address):
        index, tag = self._locate(address)
        ways = self.sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return True
        return False

    def fill(self, address):
        index, tag = self._locate(address)
        ways = self.sets[index]
        if tag in ways:
            ways.remove(tag)
        elif len(ways) >= self.assoc:
            ways.pop(0)
        ways.append(tag)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=4095),
                          st.booleans()),
                min_size=1, max_size=300))
def test_cache_matches_reference_lru(operations):
    """Property: hit/miss sequence identical to a golden LRU model."""
    cache = Cache("P", size_bytes=512, associativity=2, line_size=32)
    reference = _ReferenceLru(cache.num_sets, 2, 32)
    for address, is_fill in operations:
        if is_fill:
            cache.fill(address)
            reference.fill(address)
        else:
            got = cache.access(address).hit
            expected = reference.access(address)
            assert got == expected, address
