"""Shard invariants of the per-trace execution engine.

Three properties guard the sharding refactor:

* shard keys are **stable** — the same shard hashes to the same key in
  any process, so cache entries written by one worker are valid for all;
* shard keys are **disjoint across traces** (and evaluation points), and
  **shared across populations** that contain the same trace — the
  property that makes growing a population re-simulate only new traces;
* shard **completion order is irrelevant** — the aggregation step reads
  shard results by key in population order, so any permutation of
  finishing workers yields the identical population result.
"""

import concurrent.futures
import os
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.sweep import SweepSettings, VccSweep
from repro.circuits.frequency import ClockScheme
from repro.engine import (
    EngineError,
    Job,
    ParallelRunner,
    ResultCache,
    TracePopulationSpec,
    TraceSpec,
    aggregate_shard_results,
    job_key,
    shard_jobs,
)
from repro.engine.executors import execute_job
from repro.workloads.profiles import (
    KERNEL_LIKE,
    OFFICE_LIKE,
    SPECINT_LIKE,
    STANDARD_PROFILES,
)

pytestmark = pytest.mark.engine

#: Four traces (2 profiles x 2 seeds), short enough to simulate in ms.
POPULATION = TracePopulationSpec(profiles=(KERNEL_LIKE, SPECINT_LIKE),
                                 seeds_per_profile=2, trace_length=300)


def population_job(vcc_mv: float = 500.0,
                   scheme: ClockScheme = ClockScheme.IRAW,
                   population: TracePopulationSpec = POPULATION) -> Job:
    sweep = VccSweep(SweepSettings(profiles=population.profiles,
                                   seeds_per_profile=population.seeds_per_profile,
                                   trace_length=population.trace_length))
    return sweep.job_for(vcc_mv, scheme)


def _shard_keys(job: Job) -> list[str]:
    """Module-level so a ProcessPoolExecutor worker can run it."""
    return [job_key(shard) for shard in shard_jobs(job)]


class TestShardKeys:
    def test_stable_across_processes(self):
        job = population_job()
        parent_keys = _shard_keys(job)
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) as pool:
            child_keys = pool.submit(_shard_keys, job).result(timeout=120)
        assert child_keys == parent_keys

    def test_shards_cover_population_in_order(self):
        job = population_job()
        shards = shard_jobs(job)
        assert len(shards) == 4
        specs = POPULATION.trace_specs()
        assert tuple(s.trace for s in shards) == specs
        assert all(s.population is None for s in shards)
        assert all(s.kind == job.kind for s in shards)

    def test_disjoint_across_traces(self):
        keys = _shard_keys(population_job())
        assert len(set(keys)) == len(keys)

    @settings(max_examples=25, deadline=None)
    @given(vcc=st.sampled_from([650.0, 575.0, 500.0, 450.0, 400.0]),
           scheme=st.sampled_from([ClockScheme.BASELINE, ClockScheme.IRAW]))
    def test_disjoint_across_points(self, vcc, scheme):
        base = set(_shard_keys(population_job(500.0, ClockScheme.IRAW)))
        other = set(_shard_keys(population_job(vcc, scheme)))
        if (vcc, scheme) == (500.0, ClockScheme.IRAW):
            assert other == base
        else:
            assert not other & base

    def test_shared_trace_shares_keys_across_populations(self):
        # Same options, population grown by one profile: the common
        # traces' shard keys coincide — the incremental-reuse property.
        small = population_job()
        grown = population_job(population=TracePopulationSpec(
            profiles=(KERNEL_LIKE, SPECINT_LIKE, OFFICE_LIKE),
            seeds_per_profile=2, trace_length=300))
        small_keys = _shard_keys(small)
        grown_keys = _shard_keys(grown)
        assert set(small_keys) < set(grown_keys)
        assert len(set(grown_keys) - set(small_keys)) == 2  # new profile

    def test_unshardable_kinds_stay_atomic(self):
        schedule = Job(kind="dvfs-schedule", scheme="iraw",
                       trace=TraceSpec.synthetic(KERNEL_LIKE, length=300),
                       options=(("phases", ()),))
        assert shard_jobs(schedule) is None
        assert shard_jobs(Job(kind="engine-selftest-crash")) is None
        # A shard itself must not shard again.
        shard = shard_jobs(population_job())[0]
        assert shard_jobs(shard) is None


class TestAggregation:
    @pytest.fixture(scope="class")
    def executed(self):
        """One executed population: shard results by key + the reference."""
        job = population_job()
        shards = shard_jobs(job)
        keys = [job_key(s) for s in shards]
        results = {key: execute_job(shard)
                   for key, shard in zip(keys, shards)}
        reference = execute_job(job)  # legacy whole-population path
        return job, keys, results, reference

    @settings(max_examples=30, deadline=None)
    @given(order=st.permutations(range(4)))
    def test_completion_order_never_changes_the_aggregate(self, executed,
                                                          order):
        job, keys, results, reference = executed
        # Replay the runner's flow: shards *complete* in `order`, the
        # memo is keyed, and the reduction walks keys in plan order.
        memo = {}
        for i in order:
            memo[keys[i]] = results[keys[i]]
        aggregated = aggregate_shard_results(
            job, [memo[key] for key in keys])
        assert aggregated == reference

    def test_aggregate_matches_legacy_per_field(self, executed):
        job, keys, results, reference = executed
        aggregated = aggregate_shard_results(
            job, [results[key] for key in keys])
        assert aggregated.vcc_mv == reference.vcc_mv
        assert aggregated.scheme == reference.scheme
        assert aggregated.point == reference.point
        assert aggregated.results == reference.results
        assert aggregated.extras == reference.extras
        assert aggregated.ipc == reference.ipc
        assert aggregated.cycles == reference.cycles

    def test_empty_shard_results_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="no shard results"):
            aggregate_shard_results(population_job(), [])


#: Many-trace/one-point shape (six profiles) for cache-reuse checks.
TINY_MANY = SweepSettings(profiles=STANDARD_PROFILES, trace_length=300)


class TestIncrementalCaching:
    def test_adding_one_trace_simulates_only_its_shards(self, tmp_path):
        points = [(500.0, ClockScheme.BASELINE), (500.0, ClockScheme.IRAW)]
        small = SweepSettings(profiles=(KERNEL_LIKE, SPECINT_LIKE),
                              trace_length=300)
        grown = SweepSettings(profiles=(KERNEL_LIKE, SPECINT_LIKE,
                                        OFFICE_LIKE), trace_length=300)

        cold = VccSweep(small, runner=ParallelRunner(
            cache=ResultCache(root=tmp_path)))
        cold.run_points(points)
        assert cold.stats.simulated == 2 * 2  # traces x points

        warm = VccSweep(grown, runner=ParallelRunner(
            cache=ResultCache(root=tmp_path)))
        warm.run_points(points)
        # Only the new trace's shards simulate; the old population's
        # shards are all served from the on-disk cache.
        assert warm.stats.simulated == 1 * 2
        assert warm.stats.disk_hits == 2 * 2

    def test_identical_regeneration_is_simulation_free(self, tmp_path):
        points = [(575.0, ClockScheme.IRAW)]
        first = VccSweep(TINY_MANY, runner=ParallelRunner(
            cache=ResultCache(root=tmp_path)))
        first.run_points(points)
        assert first.stats.simulated == len(TINY_MANY.profiles)
        again = VccSweep(TINY_MANY, runner=ParallelRunner(
            cache=ResultCache(root=tmp_path)))
        again.run_points(points)
        assert again.stats.simulated == 0


class TestWorkerSaturation:
    def test_many_trace_grid_exposes_enough_parallel_units(self):
        # 8 traces x 2 points: pre-sharding this batch held 2 executable
        # units and starved a 4-worker pool; sharded it holds 16.
        sweep = VccSweep(SweepSettings(profiles=STANDARD_PROFILES[:4],
                                       seeds_per_profile=2,
                                       trace_length=300))
        jobs = [sweep.job_for(500.0, ClockScheme.BASELINE),
                sweep.job_for(500.0, ClockScheme.IRAW)]
        units = [shard for job in jobs for shard in shard_jobs(job)]
        assert len(units) == 16
        assert len({job_key(unit) for unit in units}) == 16

    @pytest.mark.slow
    @pytest.mark.skipif((os.cpu_count() or 1) < 2,
                        reason="wall-clock speedup needs >= 2 CPUs")
    def test_parallel_beats_serial_on_many_trace_grid(self):
        # 8 traces x 2 points, sized so simulation dominates pool setup.
        settings_ = SweepSettings(profiles=STANDARD_PROFILES[:4],
                                  seeds_per_profile=2, trace_length=6000)
        points = [(500.0, ClockScheme.BASELINE), (500.0, ClockScheme.IRAW)]

        serial = VccSweep(settings_)
        start = time.perf_counter()
        serial_results = serial.run_points(points)
        serial_time = time.perf_counter() - start

        parallel_sweep = VccSweep(settings_,
                                  runner=ParallelRunner(workers=4))
        start = time.perf_counter()
        parallel_results = parallel_sweep.run_points(points)
        parallel_time = time.perf_counter() - start

        assert serial_results == parallel_results
        assert parallel_sweep.stats.simulated == 16
        # Lenient bound: any real multi-core machine clears it easily.
        assert parallel_time < serial_time * 0.85, (
            f"no speedup: parallel {parallel_time:.2f}s vs "
            f"serial {serial_time:.2f}s")


class TestShardFailureReporting:
    def test_engine_error_names_trace_and_job_key(self):
        # One pending job on a multi-worker runner runs inline but keeps
        # the wrapped-error contract — deterministic message check.
        crash = Job(kind="engine-selftest-crash",
                    trace=TraceSpec.synthetic(KERNEL_LIKE, seed=3,
                                              length=300))
        runner = ParallelRunner(workers=4)
        with pytest.raises(EngineError) as excinfo:
            runner.run([crash])
        message = str(excinfo.value)
        assert "trace=kernel-like/seed3" in message
        assert job_key(crash) in message
        assert "injected engine crash" in message

    @pytest.mark.slow
    def test_worker_process_error_names_trace_and_job_key(self):
        crashes = [Job(kind="engine-selftest-crash",
                       trace=TraceSpec.synthetic(KERNEL_LIKE, seed=seed,
                                                 length=300),
                       options=(("note", str(seed)),))
                   for seed in (0, 1)]
        runner = ParallelRunner(workers=2)
        with pytest.raises(EngineError) as excinfo:
            runner.run(crashes)
        message = str(excinfo.value)
        assert "in a worker process" in message
        assert "trace=kernel-like/seed" in message
        assert any(job_key(job) in message for job in crashes)

    def test_shard_label_names_its_trace(self):
        shard = shard_jobs(population_job())[0]
        assert "trace=kernel-like/seed0" in shard.label
        assert "iraw@500mV" in shard.label
