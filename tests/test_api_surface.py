"""Tests for the top-level API surface and remaining loose ends."""

import pytest

import repro
from repro.analysis.dvfs import _reindex
from repro.baselines.freq_scaling import FrequencyScalingBaseline
from repro.circuits.frequency import FrequencySolver
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode


class TestTopLevelApi:
    def test_version(self):
        assert repro.__version__ == "1.6.0"

    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quick_comparison(self):
        row = repro.quick_comparison(vcc_mv=500.0, trace_length=1200)
        assert row["frequency_gain"] == pytest.approx(0.57, abs=0.03)
        assert 0 < row["performance_gain"] < row["frequency_gain"]


class TestStableApiFacade:
    """repro.api is the supported surface — pin it exactly.

    Adding a name here is an API commitment; removing one requires a
    deprecation cycle (see README "API stability and deprecations").
    """

    EXPECTED = (
        "ARTIFACTS",
        "Artifact",
        "ClockScheme",
        "ConfigError",
        "EngineStats",
        "Experiment",
        "ExperimentSpec",
        "FrequencySolver",
        "ImportanceSpec",
        "MonteCarloSpec",
        "ParallelRunner",
        "Record",
        "ReproError",
        "ResultCache",
        "ResultSet",
        "__version__",
        "artifact",
        "load_spec",
        "run_spec",
        "save_spec",
    )

    def test_all_is_pinned(self):
        from repro import api
        assert tuple(api.__all__) == self.EXPECTED

    def test_exports_resolve(self):
        from repro import api
        for name in api.__all__:
            assert getattr(api, name) is not None

    def test_facade_is_the_real_thing(self):
        from repro import api
        from repro.experiments.experiment import Experiment
        from repro.experiments.spec import ExperimentSpec
        from repro.montecarlo.spec import MonteCarloSpec
        assert api.Experiment is Experiment
        assert api.ExperimentSpec is ExperimentSpec
        assert api.MonteCarloSpec is MonteCarloSpec
        assert api.__version__ == repro.__version__

    def test_spec_file_roundtrip(self, tmp_path):
        from repro import api
        spec = api.ExperimentSpec(
            name="facade-roundtrip", profiles=(), artifacts=(),
            vcc_mv=(500.0,),
            montecarlo=api.MonteCarloSpec(dies=4, block=2))
        path = tmp_path / "spec.toml"
        api.save_spec(spec, path)
        assert api.load_spec(path) == spec


class TestDeprecatedWrappers:
    """Legacy analysis entry points warn but keep working."""

    def test_overhead_report_warns_and_matches_registry(self):
        from repro.analysis.figures import overhead_report
        from repro.experiments.artifacts import overhead_rows
        with pytest.warns(DeprecationWarning, match="overheads"):
            report = overhead_report()
        assert report == overhead_rows()[0]

    def test_table1_jobs_warn_and_match_registry(self):
        from repro.analysis.sweep import SweepSettings, VccSweep
        from repro.analysis.table1 import table1_jobs as legacy_jobs
        from repro.experiments.artifacts import table1_jobs
        sweep = VccSweep(SweepSettings(trace_length=600))
        with pytest.warns(DeprecationWarning, match="table1"):
            jobs = legacy_jobs(sweep, 500.0)
        assert jobs == table1_jobs(sweep, 500.0)


class TestFrequencyScalingBaseline:
    def test_is_the_honest_reference(self):
        baseline = FrequencyScalingBaseline(FrequencySolver())
        point = baseline.operating_point(500.0)
        assert point.stabilization_cycles == 0
        assert baseline.area_overhead() == 0.0
        traits = baseline.characteristics()
        assert traits["works_for_all_sram_blocks"]
        assert not traits["large_ipc_impact"]

    def test_core_setup_disables_mechanisms(self):
        baseline = FrequencyScalingBaseline(FrequencySolver())
        setup = baseline.core_setup(500.0)
        assert not setup.iraw.active


class TestDvfsReindex:
    def test_reindex_preserves_everything_but_index(self):
        original = MicroOp(17, Opcode.LD, dest=3, srcs=(4,), imm=8,
                           pc=0x2000, mem_addr=0x4000, golden_result=99)
        clone = _reindex(original, 2)
        assert clone.index == 2
        assert original.index == 17  # untouched
        assert clone.opcode is original.opcode
        assert clone.mem_addr == original.mem_addr
        assert clone.golden_result == 99
        assert clone.is_load


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors
        leaf_errors = [
            errors.ConfigError, errors.CalibrationError,
            errors.VoltageRangeError, errors.TraceError,
            errors.AssemblyError, errors.PipelineError,
            errors.MemoryModelError,
        ]
        for error_type in leaf_errors:
            assert issubclass(error_type, errors.ReproError)

    def test_library_raises_catchable_base(self):
        from repro.errors import ReproError
        from repro.workloads.kernels import build_kernel
        with pytest.raises(ReproError):
            build_kernel("no-such-kernel")
