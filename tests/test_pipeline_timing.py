"""Micro-architectural timing tests with hand-built micro-traces.

These pin down the cycle-level behaviour of the IRAW mechanisms: exactly
which consumer gets delayed, by how much, and that the paper's "back-to-
back execution is still allowed" guarantee holds.
"""

from repro.core.config import IrawConfig
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode
from repro.pipeline.core import simulate
from repro.pipeline.resources import PipelineParams
from repro.pipeline.stats import StallReason
from repro.workloads.trace import Trace


def alu(index, dest, srcs=(), pc=None):
    return MicroOp(index, Opcode.ADD, dest=dest, srcs=srcs, imm=1,
                   pc=0x1000 + 4 * index if pc is None else pc)


def build_trace(ops):
    return Trace("micro", ops, source="synthetic")


def run(ops, n=1, rf_only=True, **kwargs):
    """Run a micro-trace; with ``rf_only`` every mechanism except the
    scoreboard extension is disabled so timing effects are isolated."""
    if n:
        iraw = IrawConfig(stabilization_cycles=n, iq_enabled=not rf_only,
                          cache_guards_enabled=not rf_only,
                          stable_enabled=not rf_only)
    else:
        iraw = IrawConfig.disabled()
    return simulate(build_trace(ops), iraw, check_values=False, **kwargs)


def cycles_delta(ops):
    """Extra cycles IRAW(N=1, RF only) needs over the baseline clock."""
    return run(ops, n=1).cycles - run(ops, n=0).cycles


def padded(ops, tail=10):
    """Append independent ALU ops so end-of-trace effects cancel out."""
    start = len(ops)
    return ops + [alu(start + i, dest=20 + (i % 8)) for i in range(tail)]


class TestRegisterFileBubble:
    def test_back_to_back_still_allowed(self):
        """Consumer right after producer uses the bypass: no delay."""
        ops = padded([alu(0, dest=1),
                      alu(1, dest=2, srcs=(1,)),
                      alu(2, dest=3, srcs=(2,))])
        result = run(ops, n=1)
        assert result.stalls.iraw_delayed_instructions == 0

    def test_distance_four_consumer_hits_bubble(self):
        """With 2-wide issue the 5th op issues two cycles after the 1st —
        exactly the stabilization bubble of an ALU producer -> delayed."""
        ops = padded([alu(0, dest=1),              # producer (slot 0, cyc 0)
                      alu(1, dest=2),              # slot 1, cyc 0
                      alu(2, dest=3),              # slot 0, cyc 1
                      alu(3, dest=4),              # slot 1, cyc 1
                      alu(4, dest=5, srcs=(1,))])  # cyc 2 = the bubble
        result = run(ops, n=1)
        assert result.stalls.iraw_delayed_instructions == 1
        assert result.stalls.cycles[StallReason.RF_IRAW_BUBBLE] >= 1

    def test_far_consumer_unaffected(self):
        ops = padded([alu(0, dest=1)]
                     + [alu(i, dest=2 + i) for i in range(1, 9)]
                     + [alu(9, dest=11, srcs=(1,))])
        result = run(ops, n=1)
        assert result.stalls.iraw_delayed_instructions == 0

    def test_delay_costs_exactly_one_cycle(self):
        ops = padded([alu(0, dest=1),
                      alu(1, dest=2),
                      alu(2, dest=3),
                      alu(3, dest=4),
                      alu(4, dest=5, srcs=(1,))])
        assert cycles_delta(ops) == 1

    def test_n2_delays_consumer_two_cycles(self):
        ops = padded([alu(0, dest=1),
                      alu(1, dest=2),
                      alu(2, dest=3),
                      alu(3, dest=4),
                      alu(4, dest=5, srcs=(1,))])
        r1 = run(ops, n=1)
        r2 = run(ops, n=2)
        assert r2.cycles >= r1.cycles
        assert r2.stalls.iraw_delayed_instructions >= 1

    def test_baseline_has_no_bubble_stalls(self):
        ops = padded([alu(0, dest=1), alu(1, dest=2), alu(2, dest=3),
                      alu(3, dest=4, srcs=(1,))])
        result = run(ops, n=0)
        assert result.stalls.cycles[StallReason.RF_IRAW_BUBBLE] == 0
        assert result.stalls.iraw_delayed_instructions == 0


class TestLongLatencyProducers:
    def test_div_consumer_waits_then_bubble(self):
        ops = [MicroOp(0, Opcode.DIV, dest=1, srcs=(2, 3), pc=0x1000),
               alu(1, dest=4, srcs=(1,), pc=0x1004)]
        base = run(ops, n=0)
        iraw = run(ops, n=1)
        # Divide dominates; IRAW adds at most the single bubble cycle.
        assert 0 <= iraw.cycles - base.cycles <= 2

    def test_unpipelined_div_serializes(self):
        ops = [MicroOp(0, Opcode.DIV, dest=1, srcs=(2, 3), pc=0x1000),
               MicroOp(1, Opcode.DIV, dest=4, srcs=(5, 6), pc=0x1004)]
        result = run(ops, n=0)
        # Two 20-cycle unpipelined divides must serialize: >= 40 cycles.
        assert result.cycles >= 40


class TestMemoryOrdering:
    def test_load_after_store_same_word_is_correct_and_slower(self):
        store = MicroOp(0, Opcode.ST, srcs=(1, 2), mem_addr=0x100, pc=0x1000)
        load = MicroOp(1, Opcode.LD, dest=3, srcs=(2,), mem_addr=0x100,
                       pc=0x1004)
        result = run([store, load], n=1, rf_only=False)
        assert result.iraw_violations == 0

    def test_dl0_fill_guard_stalls_following_access(self):
        """A load missing DL0 fills a line; the next access during the
        stabilization window must wait (Section 4.3/4.4)."""
        ops = [MicroOp(0, Opcode.LD, dest=1, srcs=(2,), mem_addr=0x40000,
                       pc=0x1000),
               MicroOp(1, Opcode.LD, dest=3, srcs=(2,), mem_addr=0x80000,
                       pc=0x1004)]
        result = run(ops, n=1, rf_only=False)
        assert (result.stalls.cycles[StallReason.DL0_FILL_GUARD] > 0
                or result.cycles > 0)  # guard may overlap the miss shadow
        assert result.iraw_violations == 0


class TestWriteOrdering:
    def test_waw_keeps_program_order(self):
        """A short op behind a long op writing the same register stalls."""
        ops = [MicroOp(0, Opcode.MUL, dest=1, srcs=(2, 3), pc=0x1000),
               alu(1, dest=1)]
        result = run(ops, n=0)
        assert result.stalls.cycles[StallReason.WAW_ORDER] > 0


class TestExtraBypassPortContention:
    def test_multicycle_writes_slow_the_pipeline(self):
        ops = [alu(i, dest=1 + (i % 8)) for i in range(64)]
        fast = run(ops, n=0)
        slow = simulate(build_trace(ops), IrawConfig.disabled(),
                        params=PipelineParams(rf_write_cycles=4),
                        check_values=False)
        assert slow.cycles > fast.cycles
        assert slow.stalls.cycles[StallReason.WRITE_PORT] > 0


class TestSupersededLongLatencyProducer:
    """Regression: a load miss superseded by a younger same-register
    writer (WAW) must not mark the register ready when its stale data
    finally arrives.  Found by the differential fuzzer."""

    def _ops(self):
        # ld r11 <- cold miss (slow);  div r11 <- younger writer of r11;
        # then a consumer of r11 that must see the DIV result.
        return [
            MicroOp(0, Opcode.LD, dest=11, srcs=(9,), mem_addr=0x4000,
                    pc=0x1000),
            MicroOp(1, Opcode.DIV, dest=11, srcs=(10, 10), pc=0x1004),
            MicroOp(2, Opcode.ADD, dest=12, srcs=(11, 11), pc=0x1008),
        ]

    def test_no_violations_any_n(self):
        for n in (0, 1, 2):
            result = run(self._ops(), n=n, rf_only=False)
            assert result.iraw_violations == 0

    def test_consumer_sees_div_result(self):
        """With golden values: the consumer must get DIV's output."""
        from repro.workloads.assembler import assemble
        from repro.workloads.interpreter import run_program

        source = """
            li r9, 0x4000
            li r10, 7
        loop_unused:
            ld r11, r9, 0
            div r11, r10, r10
            add r12, r11, r11
            st r12, r9, 512
            halt
        """
        trace, state = run_program(assemble(source))
        for n in (0, 1, 2):
            iraw = IrawConfig(stabilization_cycles=n) if n else \
                IrawConfig.disabled()
            result = simulate(trace, iraw)
            assert result.value_mismatches == 0, n
        assert state.read_mem(0x4000 + 512) == 2  # (7//7) * 2
