"""Tests for the synthetic trace generator."""

import pytest

from repro.errors import ConfigError, TraceError
from repro.isa.opcodes import OpClass
from repro.workloads.profiles import (
    KERNEL_LIKE,
    OFFICE_LIKE,
    SPECINT_LIKE,
    STANDARD_PROFILES,
    TraceProfile,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_population
from repro.workloads.trace import Trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = SyntheticTraceGenerator(SPECINT_LIKE, seed=3).generate(2000)
        b = SyntheticTraceGenerator(SPECINT_LIKE, seed=3).generate(2000)
        for op_a, op_b in zip(a.ops, b.ops):
            assert op_a.opcode == op_b.opcode
            assert op_a.pc == op_b.pc
            assert op_a.srcs == op_b.srcs
            assert op_a.mem_addr == op_b.mem_addr
            assert op_a.taken == op_b.taken

    def test_different_seeds_differ(self):
        a = SyntheticTraceGenerator(SPECINT_LIKE, seed=0).generate(2000)
        b = SyntheticTraceGenerator(SPECINT_LIKE, seed=1).generate(2000)
        assert any(x.pc != y.pc or x.opcode != y.opcode
                   for x, y in zip(a.ops, b.ops))


class TestShape:
    def test_requested_length(self):
        trace = SyntheticTraceGenerator(SPECINT_LIKE, seed=0).generate(1234)
        assert len(trace) == 1234

    def test_rejects_nonpositive_length(self):
        generator = SyntheticTraceGenerator(SPECINT_LIKE, seed=0)
        with pytest.raises(ConfigError):
            generator.generate(0)

    def test_indices_are_sequential(self):
        trace = SyntheticTraceGenerator(OFFICE_LIKE, seed=0).generate(500)
        for position, op in enumerate(trace.ops):
            assert op.index == position

    def test_mix_tracks_profile_weights(self):
        """Store-heavy profile stores more than the integer profile."""
        kernel = SyntheticTraceGenerator(KERNEL_LIKE, seed=0).generate(6000)
        specint = SyntheticTraceGenerator(SPECINT_LIKE, seed=0).generate(6000)
        k_stores = kernel.class_mix().get(OpClass.STORE, 0)
        s_stores = specint.class_mix().get(OpClass.STORE, 0)
        assert k_stores > s_stores

    def test_fp_profile_emits_fp(self):
        from repro.workloads.profiles import SPECFP_LIKE
        trace = SyntheticTraceGenerator(SPECFP_LIKE, seed=0).generate(4000)
        mix = trace.class_mix()
        assert mix.get(OpClass.FP_ADD, 0) + mix.get(OpClass.FP_MUL, 0) > 0.1


class TestProgramStructure:
    def test_pcs_recur_across_iterations(self):
        """Loops revisit the same static pcs (BP needs this)."""
        trace = SyntheticTraceGenerator(SPECINT_LIKE, seed=0).generate(4000)
        pcs = [op.pc for op in trace.ops]
        assert len(set(pcs)) < len(pcs) / 4

    def test_loop_branches_mostly_taken(self):
        trace = SyntheticTraceGenerator(KERNEL_LIKE, seed=0).generate(4000)
        branches = [op for op in trace.ops if op.opclass is OpClass.BRANCH]
        taken = sum(1 for b in branches if b.taken)
        assert taken / max(1, len(branches)) > 0.7

    def test_calls_are_matched_by_returns(self):
        trace = SyntheticTraceGenerator(OFFICE_LIKE, seed=0).generate(8000)
        calls = sum(1 for op in trace.ops if op.is_call)
        rets = sum(1 for op in trace.ops if op.is_return)
        assert calls > 0
        assert abs(calls - rets) <= max(2, calls * 0.2)

    def test_memory_addresses_within_working_set(self):
        profile = SPECINT_LIKE
        trace = SyntheticTraceGenerator(profile, seed=0).generate(4000)
        limit = profile.working_set_kb * 1024 * 2
        for op in trace.ops:
            if op.mem_addr is not None:
                assert 0 <= op.mem_addr < limit

    def test_store_load_aliasing_present(self):
        """The STable stress pairs must exist (same word, store then load)."""
        trace = SyntheticTraceGenerator(KERNEL_LIKE, seed=0).generate(6000)
        found = 0
        recent_store = None
        for op in trace.ops:
            if op.is_store:
                recent_store = (op.index, op.mem_addr)
            elif op.is_load and recent_store is not None:
                index, addr = recent_store
                if op.index - index <= 4 and op.mem_addr == addr:
                    found += 1
        assert found > 0


class TestDependencyDistances:
    def test_profile_controls_distance(self):
        short = TraceProfile(name="short-dep", dep_distance_geom_p=0.8)
        long = TraceProfile(name="long-dep", dep_distance_geom_p=0.1)

        def mean_distance(profile):
            trace = SyntheticTraceGenerator(profile, seed=0).generate(4000)
            last_writer = {}
            distances = []
            for op in trace.ops:
                for src in op.srcs:
                    if src in last_writer:
                        distances.append(op.index - last_writer[src])
                if op.dest is not None:
                    last_writer[op.dest] = op.index
            return sum(distances) / max(1, len(distances))

        assert mean_distance(short) < mean_distance(long)


class TestPopulation:
    def test_population_size(self):
        traces = generate_population(STANDARD_PROFILES[:2], seeds=2,
                                     length=500)
        assert len(traces) == 4
        names = {t.name for t in traces}
        assert len(names) == 4

    def test_trace_validation(self):
        from repro.isa.instructions import MicroOp
        from repro.isa.opcodes import Opcode
        with pytest.raises(TraceError):
            Trace("bad", [MicroOp(5, Opcode.NOP)])
