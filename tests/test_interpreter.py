"""Tests for the functional interpreter and the kernel library."""

import pytest

from repro.errors import TraceError
from repro.workloads.assembler import assemble
from repro.workloads.interpreter import run_program
from repro.workloads.kernels import (
    KERNEL_BUILDERS,
    RESULT_ADDRESS,
    build_kernel,
    kernel_trace,
)


def python_fib(n):
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return b


class TestInterpreterBasics:
    def test_halt_stops_execution(self):
        trace, state = run_program(assemble("li r1, 1\nhalt\nli r1, 2"))
        assert state.registers[1] == 1
        assert len(trace) == 1

    def test_branch_taken_path(self):
        trace, state = run_program(assemble("""
            li r1, 1
            beq r1, r1, skip
            li r2, 99
        skip:
            halt
        """))
        assert state.registers[2] == 0

    def test_call_and_return(self):
        trace, state = run_program(assemble("""
            call fn
            li r2, 2
            halt
        fn:
            li r1, 1
            ret
        """))
        assert state.registers[1] == 1
        assert state.registers[2] == 2

    def test_ret_without_call_raises(self):
        with pytest.raises(TraceError, match="empty call stack"):
            run_program(assemble("ret"))

    def test_runaway_program_raises(self):
        with pytest.raises(TraceError, match="exceeded"):
            run_program(assemble("loop: jmp loop"), max_instructions=100)

    def test_memory_round_trip(self):
        trace, state = run_program(assemble("""
            li r1, 0x1000
            li r2, 77
            st r2, r1, 8
            ld r3, r1, 8
            halt
        """))
        assert state.registers[3] == 77
        assert state.read_mem(0x1008) == 77

    def test_trace_carries_golden_values(self):
        trace, _ = run_program(assemble("li r1, 5\nadd r2, r1, r1\nhalt"))
        assert trace.ops[0].golden_result == 5
        assert trace.ops[1].golden_result == 10
        assert trace.has_golden_values()


class TestKernels:
    def test_fib_value(self):
        _, state = kernel_trace("fib", 12)
        assert state.memory[RESULT_ADDRESS] == python_fib(12)

    def test_memcpy_copies_everything(self):
        spec = build_kernel("memcpy", 24)
        _, state = spec.run()
        for i in range(24):
            src = spec.initial_memory[0x10000 + 8 * i]
            assert state.read_mem(0x40000 + 8 * i) == src

    def test_dot_product(self):
        spec = build_kernel("dot", 16)
        _, state = spec.run()
        expected = sum((i + 1) * (2 * i + 3) for i in range(16))
        assert state.memory[RESULT_ADDRESS] == expected

    def test_matmul_against_reference(self):
        spec = build_kernel("matmul", 4)
        _, state = spec.run()
        n = 4
        a = [[(r * n + c) % 7 + 1 for c in range(n)] for r in range(n)]
        b = [[(r * n + c) % 5 + 1 for c in range(n)] for r in range(n)]
        for i in range(n):
            for j in range(n):
                expected = sum(a[i][k] * b[k][j] for k in range(n))
                got = state.read_mem(0x30000 + 8 * (i * n + j))
                assert got == expected, (i, j)

    def test_pointer_chase_sums_all_nodes(self):
        spec = build_kernel("pointer_chase", 10)
        _, state = spec.run()
        expected = sum((i * 31 + 7) & 0xFFFF for i in range(10))
        assert state.memory[RESULT_ADDRESS] == expected

    def test_strfind_finds_key(self):
        _, state = kernel_trace("strfind", 16)
        assert state.memory[RESULT_ADDRESS] == 16 * 3 // 4

    def test_sort_produces_sorted_array(self):
        spec = build_kernel("sort", 32)
        _, state = spec.run()
        values = [state.read_mem(0x10000 + 8 * i) for i in range(32)]
        assert values == sorted(values)

    def test_store_forward_counts_iterations(self):
        _, state = kernel_trace("store_forward", 9)
        assert state.memory[RESULT_ADDRESS] == 10  # starts at 1, +1 each

    def test_calls_increments_counters(self):
        _, state = kernel_trace("calls", 6)
        assert state.memory[RESULT_ADDRESS] == 6

    def test_every_kernel_runs(self):
        for name in KERNEL_BUILDERS:
            trace, _ = kernel_trace(name, 6)
            assert len(trace) > 0
            assert trace.source == "interpreter"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(TraceError, match="unknown kernel"):
            build_kernel("quicksort3000")

    def test_metadata_carries_initial_state(self):
        trace, _ = kernel_trace("matmul", 3)
        assert "initial_registers" in trace.metadata
        assert trace.metadata["initial_registers"][7] == 3


class TestAdditionalKernels:
    def test_crc_is_deterministic_mixing(self):
        _, a = kernel_trace("crc", 20)
        _, b = kernel_trace("crc", 20)
        assert a.memory[RESULT_ADDRESS] == b.memory[RESULT_ADDRESS]
        _, c = kernel_trace("crc", 21)
        assert c.memory[RESULT_ADDRESS] != a.memory[RESULT_ADDRESS]

    def test_histogram_counts_every_element(self):
        _, state = kernel_trace("histogram", 40)
        total = sum(state.read_mem(0x20000 + 8 * b) for b in range(16))
        assert total == 40

    def test_stack_round_trips_all_pushes(self):
        _, state = kernel_trace("stack", 12)
        assert state.memory[RESULT_ADDRESS] == sum(3 * (i + 1)
                                                   for i in range(12))

    def test_binsearch_finds_multiples_of_three(self):
        n = 32
        _, state = kernel_trace("binsearch", n)
        searches = min(16, n)
        expected = sum(1 for j in range(searches)
                       if (5 * j) % 3 == 0 and (5 * j) // 3 < n)
        assert state.memory[RESULT_ADDRESS] == expected
