"""Tests for the area/power overhead accounting (paper Section 5.3)."""

from repro.circuits.area import (
    AreaModel,
    CORE_TOTAL_TRANSISTORS,
    IrawHardwareBudget,
    TRANSISTORS_PER_LATCH_BIT,
)


class TestBudget:
    def test_scoreboard_bits(self):
        budget = IrawHardwareBudget(logical_registers=32, bypass_levels=1,
                                    max_stabilization_cycles=2)
        assert budget.scoreboard_extra_bits == 32 * 3

    def test_stable_bits(self):
        budget = IrawHardwareBudget(stable_entries=2, stable_address_bits=32,
                                    stable_data_bits=64)
        assert budget.stable_bits == 2 * (1 + 32 + 64)

    def test_total_is_sum(self):
        budget = IrawHardwareBudget()
        assert budget.total_extra_bits == (
            budget.scoreboard_extra_bits + budget.stable_bits
            + budget.stall_counter_bits + budget.iq_gate_bits)

    def test_transistor_conversion(self):
        budget = IrawHardwareBudget()
        assert budget.extra_transistors == (
            budget.total_extra_bits * TRANSISTORS_PER_LATCH_BIT)


class TestOverheads:
    def test_area_below_paper_bound(self):
        """Paper: area overhead ~0.03% (below 0.1%)."""
        report = AreaModel().report()
        assert report.area_overhead < 0.0005
        assert report.area_overhead > 0.0

    def test_power_below_one_percent(self):
        """Paper: power overhead below 1% despite the 20x activity factor."""
        report = AreaModel().report()
        assert report.power_overhead < 0.01

    def test_extra_bits_are_a_few_hundred(self):
        report = AreaModel().report()
        assert 100 < report.extra_bits < 1000

    def test_sram_inventory_sane(self):
        model = AreaModel()
        sram = model.sram_transistors()
        # The caches dominate: half a megabyte of 8-T cells and more.
        assert sram > 30_000_000
        assert sram < CORE_TOTAL_TRANSISTORS * 1.5
