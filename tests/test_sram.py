"""Tests for the SRAM block inventory (repro.circuits.sram)."""

import pytest

from repro.circuits.sram import (
    FIGURE1_ARRAY,
    SramArray,
    StructureClass,
    silverthorne_arrays,
)


class TestSramArray:
    def test_total_bits(self):
        array = SramArray("X", 128, 32, StructureClass.INFREQUENT_WRITE)
        assert array.total_bits == 128 * 32

    def test_wordline_groups_round_up(self):
        array = SramArray("X", 8, 30, StructureClass.INFREQUENT_WRITE,
                          wordline_group_bits=8)
        assert array.wordline_groups_per_entry == 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SramArray("X", 0, 32, StructureClass.INFREQUENT_WRITE)
        with pytest.raises(ValueError):
            SramArray("X", 8, -1, StructureClass.INFREQUENT_WRITE)


class TestFigure1Array:
    def test_matches_paper_experiment(self):
        """Paper Sec 2.1: 1,024 entries x 32 bits, 8 bits per wordline."""
        assert FIGURE1_ARRAY.entries == 1024
        assert FIGURE1_ARRAY.bits_per_entry == 32
        assert FIGURE1_ARRAY.wordline_group_bits == 8
        assert FIGURE1_ARRAY.wordline_groups_per_entry == 4


class TestCoreInventory:
    def test_all_eleven_blocks_present(self):
        names = {a.name for a in silverthorne_arrays()}
        assert names == {"RF", "IQ", "IL0", "UL1", "ITLB", "DTLB",
                         "WCB_EB", "FB", "DL0", "BP", "RSB"}

    def test_structure_classification_matches_paper(self):
        """Section 3.1's five-way classification."""
        by_name = {a.name: a.structure_class for a in silverthorne_arrays()}
        assert by_name["RF"] is StructureClass.REGISTER_FILE
        assert by_name["IQ"] is StructureClass.INSTRUCTION_QUEUE
        assert by_name["DL0"] is StructureClass.FREQUENT_WRITE
        assert by_name["BP"] is StructureClass.PREDICTION_ONLY
        assert by_name["RSB"] is StructureClass.PREDICTION_ONLY
        for block in ("IL0", "UL1", "ITLB", "DTLB", "WCB_EB", "FB"):
            assert by_name[block] is StructureClass.INFREQUENT_WRITE

    def test_cache_capacities(self):
        by_name = {a.name: a for a in silverthorne_arrays()}
        line_data_bits = 64 * 8
        assert by_name["IL0"].entries * line_data_bits == 32 * 1024 * 8
        assert by_name["DL0"].entries * line_data_bits == 24 * 1024 * 8
        assert by_name["UL1"].entries * line_data_bits == 512 * 1024 * 8
