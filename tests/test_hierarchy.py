"""Tests for the composed memory system (fetch/load/store paths)."""

import pytest

from repro.memory.hierarchy import MemoryConfig, MemorySystem


@pytest.fixture()
def memory():
    return MemorySystem(MemoryConfig(dram_latency_cycles=100))


class TestFetchPath:
    def test_cold_fetch_misses_everywhere(self, memory):
        response = memory.fetch(0x1000, cycle=0)
        blocks = {name for name, _ in response.fills}
        assert "ITLB" in blocks and "IL0" in blocks and "UL1" in blocks
        assert not response.hit
        # ITLB walk + UL1 + DRAM all contribute.
        assert response.ready_cycle > 100

    def test_warm_fetch_is_fast(self, memory):
        memory.fetch(0x1000, cycle=0)
        response = memory.fetch(0x1000, cycle=500)
        assert response.hit
        assert response.ready_cycle == 500 + memory.config.il0_hit_latency
        assert response.fills == ()

    def test_il0_hit_after_ul1_warm(self, memory):
        memory.fetch(0x1000, cycle=0)
        memory.il0.invalidate(0x1000)
        response = memory.fetch(0x1000, cycle=500)
        fills = dict(response.fills)
        assert "IL0" in fills
        # UL1 hit: refill latency is the UL1 hit latency, no DRAM trip.
        assert response.ready_cycle == 500 + memory.config.ul1_hit_latency


class TestLoadPath:
    def test_cold_load_goes_to_dram(self, memory):
        response = memory.load(0x4000, cycle=0)
        assert not response.hit
        blocks = dict(response.fills)
        assert "DTLB" in blocks and "DL0" in blocks and "UL1" in blocks
        assert response.ready_cycle >= 100

    def test_warm_load_hits_dl0(self, memory):
        memory.load(0x4000, cycle=0)
        response = memory.load(0x4008, cycle=500)  # same line
        assert response.hit
        assert response.ready_cycle == 500 + memory.config.dl0_hit_latency

    def test_fill_buffer_merge_on_same_line(self, memory):
        memory.load(0x4000, cycle=0)
        first = memory.load(0x8000, cycle=500)
        second = memory.load(0x8008, cycle=501)  # in-flight same line
        assert second.ready_cycle == first.ready_cycle

    def test_dirty_eviction_flows_to_wcb(self, memory):
        config = memory.config
        set_stride = memory.dl0.num_sets * config.line_size
        base = 0x100000
        # Dirty one line, then overflow its set with clean fills.
        memory.store(base, cycle=0)
        for way in range(1, config.dl0_assoc + 1):
            memory.load(base + way * set_stride, cycle=1000 + way * 300)
        assert memory.wcb.pushes >= 1


class TestStorePath:
    def test_store_hit_completes_quickly(self, memory):
        memory.load(0x4000, cycle=0)
        response = memory.store(0x4000, cycle=500)
        assert response.hit
        assert response.ready_cycle == 501

    def test_store_miss_write_allocates(self, memory):
        response = memory.store(0x9000, cycle=0)
        assert not response.hit
        assert memory.dl0.lookup(0x9000)


class TestWarmupReset:
    def test_reset_keeps_contents_drops_stats(self, memory):
        memory.load(0x4000, cycle=0)
        memory.fetch(0x1000, cycle=0)
        memory.reset_after_warmup()
        assert memory.dl0.accesses == 0
        assert memory.il0.accesses == 0
        assert memory.dram.requests == 0
        # Contents survive: immediate hits.
        assert memory.load(0x4000, cycle=10).hit
        assert memory.fetch(0x1000, cycle=10).hit

    def test_stats_shape(self, memory):
        memory.load(0x4000, cycle=0)
        stats = memory.stats()
        assert set(stats) >= {"IL0", "DL0", "UL1", "ITLB", "DTLB",
                              "FB", "WCB_EB"}
        assert stats["DL0"]["misses"] == 1
