"""RV32I workload frontend: loader, interpreter, trace and spec tests.

The centerpiece is a differential harness in the mold of
``test_differential.py``: hypothesis generates random (always
terminating) RV32I programs, an *independent* reference interpreter in
this file — signed-integer register file, structured nothing like
:class:`Rv32iMachine` — produces the expected per-instruction state
trace, and :func:`diff_state_traces` must find no divergence.  Any
decoder or semantics bug is reported at the exact first divergent
instruction.

Around it: unit tests for the flat/ELF loaders, interpreter corner
semantics (sign extension, shifts, unsigned compares, jalr bit-zero
clearing, the hardwired ``x0``), the RV32I-to-micro-op lowering, the
spec-file plumbing, and the cache-key contract — editing one byte of a
program file moves exactly that trace's shard key.
"""

import pathlib
import sys

import pytest
from hypothesis import given, settings, strategies as st

sys.path.insert(0, str(pathlib.Path(__file__).parent))
import rv32i_programs  # noqa: E402  (sibling fixture-builder module)

from repro.analysis.sweep import SweepSettings, VccSweep
from repro.circuits.frequency import ClockScheme
from repro.engine import job_key, shard_jobs
from repro.errors import ConfigError, TraceError
from repro.experiments import Experiment, ExperimentSpec, RiscvProgramRef
from repro.isa.opcodes import Opcode
from repro.isa.rv32i import Instruction, assemble_words, disassemble, encode
from repro.workloads.profiles import KERNEL_LIKE
from repro.workloads.riscv import (
    DEFAULT_STACK_TOP,
    LoadedImage,
    RiscvProgram,
    Rv32iMachine,
    StepState,
    diff_state_traces,
    load_image,
    run_riscv_program,
    state_trace,
)

pytestmark = pytest.mark.engine


def program_of(*instrs: Instruction, **overrides) -> RiscvProgram:
    return RiscvProgram(name="t", data=assemble_words(instrs), **overrides)


def machine_after(*instrs: Instruction, **overrides) -> Rv32iMachine:
    """Step a machine through exactly the given instructions."""
    machine = Rv32iMachine(program_of(*instrs, **overrides))
    for _ in instrs:
        machine.step()
    return machine


EXIT_SEQ = (Instruction("addi", rd=17, rs1=0, imm=93), Instruction("ecall"))


class TestLoaders:
    def test_flat_image_loads_at_zero(self):
        image = load_image(b"\x01\x02\x03")
        assert image == LoadedImage(memory={0: 1, 1: 2, 2: 3}, entry=0)

    def test_elf_segments_and_entry(self):
        data = rv32i_programs.build_memcpy()
        image = load_image(data)
        assert image.entry == 0x1000
        assert image.memory[0x2000] == 1 and image.memory[0x2017] == 24
        assert 0 not in image.memory  # nothing placed at address zero

    def test_elf_bss_tail_is_zeroed(self):
        data = bytearray(rv32i_programs.elf32([(0x1000, b"\xAA\xBB")], 0x1000))
        # Grow p_memsz (phdr offset 52, field offset 20) past p_filesz.
        data[52 + 20:52 + 24] = (6).to_bytes(4, "little")
        image = load_image(bytes(data))
        assert image.memory[0x1000] == 0xAA
        assert [image.memory[0x1002 + i] for i in range(4)] == [0, 0, 0, 0]

    @pytest.mark.parametrize("patch,what", [
        ((4, 2), "ELF64 class"),
        ((5, 2), "big-endian"),
        ((18, 62), "wrong machine"),
    ])
    def test_unsupported_elf_flavors_raise(self, patch, what):
        data = bytearray(rv32i_programs.build_memcpy())
        offset, value = patch
        data[offset] = value
        with pytest.raises(TraceError):
            load_image(bytes(data))

    def test_truncated_elf_raises(self):
        with pytest.raises(TraceError):
            load_image(rv32i_programs.build_memcpy()[:40])

    def test_from_file_missing_path_raises(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            RiscvProgram.from_file(tmp_path / "nope.bin")

    def test_program_validation(self):
        with pytest.raises(TraceError, match="empty image"):
            RiscvProgram(name="x", data=b"")
        with pytest.raises(TraceError, match="non-empty name"):
            RiscvProgram(name="", data=b"\x13\x00\x00\x00")
        with pytest.raises(TraceError, match="max_instructions"):
            RiscvProgram(name="x", data=b"\x13\x00\x00\x00",
                         max_instructions=0)


class TestInterpreterSemantics:
    def test_x0_is_hardwired_to_zero(self):
        machine = machine_after(Instruction("addi", rd=0, rs1=0, imm=77))
        assert machine.regs[0] == 0

    def test_stack_pointer_defaults_high(self):
        assert Rv32iMachine(program_of(Instruction("fence"))).regs[2] == \
            DEFAULT_STACK_TOP

    def test_arithmetic_vs_logical_right_shift(self):
        machine = machine_after(
            Instruction("addi", rd=5, rs1=0, imm=-8),   # 0xFFFFFFF8
            Instruction("srai", rd=6, rs1=5, imm=2),
            Instruction("srli", rd=7, rs1=5, imm=2),
        )
        assert machine.regs[6] == 0xFFFFFFFE
        assert machine.regs[7] == 0x3FFFFFFE

    def test_signed_vs_unsigned_compare(self):
        machine = machine_after(
            Instruction("addi", rd=5, rs1=0, imm=-1),
            Instruction("slt", rd=6, rs1=5, rs2=0),     # -1 < 0 signed
            Instruction("sltu", rd=7, rs1=5, rs2=0),    # 0xFFFFFFFF < 0 ?
        )
        assert machine.regs[6] == 1
        assert machine.regs[7] == 0

    def test_load_sign_and_zero_extension(self):
        machine = machine_after(
            Instruction("addi", rd=5, rs1=0, imm=-128),  # 0xFFFFFF80
            Instruction("sb", rs1=0, rs2=5, imm=64),
            Instruction("lb", rd=6, rs1=0, imm=64),
            Instruction("lbu", rd=7, rs1=0, imm=64),
        )
        assert machine.regs[6] == 0xFFFFFF80  # sign-extended back
        assert machine.regs[7] == 0x80        # zero-extended

    def test_store_masks_to_access_width(self):
        machine = machine_after(
            Instruction("lui", rd=5, imm=0x12345),
            Instruction("addi", rd=5, rs1=5, imm=0x678),
            Instruction("sh", rs1=0, rs2=5, imm=64),
            Instruction("lw", rd=6, rs1=0, imm=64),
        )
        assert machine.regs[6] == 0x5678  # upper half never written

    def test_unmapped_memory_reads_zero(self):
        machine = machine_after(Instruction("lw", rd=5, rs1=0, imm=0x400))
        assert machine.regs[5] == 0

    def test_jalr_clears_bit_zero_and_links(self):
        machine = machine_after(
            Instruction("addi", rd=5, rs1=0, imm=13),
            Instruction("jalr", rd=1, rs1=5, imm=0),
        )
        assert machine.pc == 12         # 13 & ~1
        assert machine.regs[1] == 8     # return address

    def test_taken_branch_redirects(self):
        machine = machine_after(Instruction("beq", rs1=0, rs2=0, imm=-8))
        assert machine.pc == (0 - 8) & 0xFFFFFFFF

    def test_exit_syscall_halts_with_code(self):
        machine = machine_after(
            Instruction("addi", rd=10, rs1=0, imm=42), *EXIT_SEQ)
        assert machine.halted and machine.exit_code == 42
        assert machine.step() is None

    def test_ebreak_halts_without_exit_code(self):
        machine = machine_after(Instruction("ebreak"))
        assert machine.halted and machine.exit_code is None

    def test_unsupported_syscall_raises(self):
        with pytest.raises(TraceError, match="unsupported syscall 64"):
            machine_after(Instruction("addi", rd=17, rs1=0, imm=64),
                          Instruction("ecall"))

    def test_illegal_word_names_program_and_pc(self):
        program = RiscvProgram(name="bad", data=b"\x00\x00\x00\x00")
        with pytest.raises(TraceError, match=r"'bad': pc 0x0"):
            Rv32iMachine(program).step()

    def test_misaligned_pc_raises(self):
        program = program_of(Instruction("fence"), entry=2)
        with pytest.raises(TraceError, match="misaligned pc"):
            Rv32iMachine(program).step()

    def test_instruction_budget_enforced(self):
        # jal x0, 0 is a tight infinite loop.
        program = program_of(Instruction("jal", rd=0, imm=0),
                             max_instructions=10)
        machine = Rv32iMachine(program)
        with pytest.raises(TraceError, match="exceeded 10 instructions"):
            while True:
                machine.step()


class TestTraceEmission:
    #: fence / seed / call / exit-prep / ecall / callee / return.
    CALL_PROGRAM = (
        Instruction("fence"),                       # 0x00
        Instruction("addi", rd=10, rs1=0, imm=5),   # 0x04
        Instruction("jal", rd=1, imm=12),           # 0x08 -> 0x14
        Instruction("addi", rd=17, rs1=0, imm=93),  # 0x0C
        Instruction("ecall"),                       # 0x10
        Instruction("add", rd=10, rs1=10, rs2=10),  # 0x14 (double)
        Instruction("jalr", rd=0, rs1=1, imm=0),    # 0x18 -> 0x0C
    )

    def test_trace_shape_and_metadata(self):
        program = program_of(*self.CALL_PROGRAM)
        trace, machine = run_riscv_program(program)
        assert trace.source == "riscv"
        assert trace.name == "t"
        assert trace.metadata == {"program_sha256": program.sha256,
                                  "instructions_executed": 7,
                                  "exit_code": 10}
        assert machine.exit_code == 10

    def test_micro_op_lowering(self):
        trace, _ = run_riscv_program(program_of(*self.CALL_PROGRAM))
        ops = [op.opcode for op in trace.ops]
        # The halting ecall is dropped, like the mini ISA drops HALT.
        assert ops == [Opcode.NOP, Opcode.ADD, Opcode.CALL, Opcode.ADD,
                       Opcode.RET, Opcode.ADD]
        call = trace.ops[2]
        assert call.taken is True and call.target == 0x14
        ret = trace.ops[4]
        assert ret.taken is True and ret.target == 0x0C

    def test_x0_destination_becomes_none(self):
        trace, _ = run_riscv_program(program_of(
            Instruction("addi", rd=0, rs1=0, imm=9), *EXIT_SEQ))
        assert trace.ops[0].opcode == Opcode.ADD
        assert trace.ops[0].dest is None

    def test_branch_lowering_records_direction(self):
        trace, _ = run_riscv_program(program_of(
            Instruction("beq", rs1=0, rs2=0, imm=8),    # taken, skips next
            Instruction("addi", rd=5, rs1=0, imm=1),
            Instruction("bne", rs1=0, rs2=0, imm=8),    # never taken
            *EXIT_SEQ))
        beq, bne = trace.ops[0], trace.ops[1]
        assert beq.opcode == Opcode.BEQ and beq.taken is True and beq.target == 8
        assert bne.opcode == Opcode.BNE and bne.taken is False

    def test_memory_ops_carry_addresses(self):
        trace, _ = run_riscv_program(program_of(
            Instruction("addi", rd=5, rs1=0, imm=7),
            Instruction("sw", rs1=0, rs2=5, imm=64),
            Instruction("lw", rd=6, rs1=0, imm=64),
            *EXIT_SEQ))
        store, load = trace.ops[1], trace.ops[2]
        assert store.opcode == Opcode.ST and store.mem_addr == 64
        assert store.srcs == (5, 0)  # value register first, then base
        assert load.opcode == Opcode.LD and load.mem_addr == 64
        assert load.dest == 6


class TestStateTraceHarness:
    def test_step_state_dict_round_trip(self):
        record = next(state_trace(program_of(*EXIT_SEQ)))
        assert StepState.from_dict(record.to_dict()) == record

    def test_identical_traces_have_no_divergence(self):
        program = program_of(*TestTraceEmission.CALL_PROGRAM)
        assert diff_state_traces(state_trace(program),
                                 state_trace(program)) is None

    def test_divergence_names_first_bad_instruction(self):
        program = program_of(*TestTraceEmission.CALL_PROGRAM)
        expected = list(state_trace(program))
        mutated = list(expected)
        broken = mutated[1].to_dict()
        broken["rd_value"] = 6
        mutated[1] = StepState.from_dict(broken)
        divergence = diff_state_traces(mutated, state_trace(program))
        assert divergence is not None
        assert (divergence.index, divergence.field) == (1, "rd_value")
        assert str(divergence) == (
            "first divergence at instruction #1 (addi x10, x0, 5): "
            "rd_value expected 6, got 5")

    def test_length_mismatch_is_reported(self):
        program = program_of(*TestTraceEmission.CALL_PROGRAM)
        expected = list(state_trace(program))
        divergence = diff_state_traces(expected[:-1], expected)
        assert divergence.field == "length"
        assert divergence.asm == "<end of trace>"


# --------------------------------------------------------------------------
# Differential fuzzing against an independent reference interpreter.
# --------------------------------------------------------------------------

def _u32(value: int) -> int:
    return value & 0xFFFFFFFF


def _s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x1_0000_0000 if value >= 0x8000_0000 else value


def reference_trace(instrs) -> tuple[list[StepState], int | None]:
    """Execute ``instrs`` with an independent reference interpreter.

    Deliberately structured unlike :class:`Rv32iMachine`: registers hold
    *signed* Python ints, the Instruction list is executed directly
    (no fetch/decode), and every operator is written from the ISA manual
    rather than shared lambda tables.  Returns the expected state trace
    plus the exit code.
    """
    regs = [0] * 32
    regs[2] = _s32(DEFAULT_STACK_TOP)
    memory: dict[int, int] = {}
    code = {i * 4: ins for i, ins in enumerate(instrs)}
    pc, index, records = 0, 0, []
    exit_code = None
    while True:
        ins = code[pc]
        m, imm = ins.mnemonic, ins.imm
        a, b = regs[ins.rs1], regs[ins.rs2]
        value = None
        mem_addr = mem_value = None
        nxt: int | None = pc + 4
        if m in ("add", "addi"):
            value = _s32(a + (imm if m == "addi" else b))
        elif m == "sub":
            value = _s32(a - b)
        elif m in ("sll", "slli"):
            value = _s32(a << ((imm if m == "slli" else b) & 31))
        elif m in ("srl", "srli"):
            value = _s32(_u32(a) >> ((imm if m == "srli" else b) & 31))
        elif m in ("sra", "srai"):
            value = a >> ((imm if m == "srai" else b) & 31)
        elif m in ("slt", "slti"):
            value = int(a < (imm if m == "slti" else b))
        elif m in ("sltu", "sltiu"):
            value = int(_u32(a) < _u32(imm if m == "sltiu" else b))
        elif m in ("xor", "xori"):
            value = _s32(a ^ (imm if m == "xori" else b))
        elif m in ("or", "ori"):
            value = _s32(a | (imm if m == "ori" else b))
        elif m in ("and", "andi"):
            value = _s32(a & (imm if m == "andi" else b))
        elif m == "lui":
            value = _s32(imm << 12)
        elif m == "auipc":
            value = _s32(pc + (imm << 12))
        elif m == "jal":
            value = _s32(pc + 4)
            nxt = _u32(pc + imm)
        elif m == "jalr":
            value = _s32(pc + 4)
            nxt = _u32(a + imm) & ~1
        elif m in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            taken = {"beq": a == b, "bne": a != b, "blt": a < b,
                     "bge": a >= b, "bltu": _u32(a) < _u32(b),
                     "bgeu": _u32(a) >= _u32(b)}[m]
            if taken:
                nxt = _u32(pc + imm)
        elif m in ("lb", "lh", "lw", "lbu", "lhu"):
            size = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[m]
            mem_addr = _u32(a + imm)
            raw = sum(memory.get(_u32(mem_addr + i), 0) << (8 * i)
                      for i in range(size))
            if m in ("lb", "lh") and raw >> (8 * size - 1):
                raw -= 1 << (8 * size)
            value = _s32(raw)
        elif m in ("sb", "sh", "sw"):
            size = {"sb": 1, "sh": 2, "sw": 4}[m]
            mem_addr = _u32(a + imm)
            mem_value = _u32(b) & ((1 << (8 * size)) - 1)
            for i in range(size):
                memory[_u32(mem_addr + i)] = (mem_value >> (8 * i)) & 0xFF
        elif m == "fence":
            pass
        elif m == "ebreak":
            nxt = None
        elif m == "ecall":
            assert _u32(regs[17]) == 93
            exit_code = _u32(regs[10])
            nxt = None
        rd = None
        if value is not None and ins.rd != 0:
            rd = ins.rd
            regs[rd] = value
        records.append(StepState(
            index=index, pc=pc, word=encode(ins), asm=disassemble(ins),
            rd=rd, rd_value=None if rd is None else _u32(value),
            mem_addr=mem_addr, mem_value=mem_value, next_pc=nxt))
        index += 1
        if nxt is None:
            return records, exit_code
        pc = nxt


_WORK_REGS = (5, 6, 7, 10, 11, 12)
_ALU_RR = ("add", "sub", "sll", "srl", "sra", "slt", "sltu",
           "xor", "or", "and")
_ALU_I = ("addi", "slti", "sltiu", "xori", "ori", "andi")
_SHIFT_I = ("slli", "srli", "srai")
_LOAD = ("lb", "lh", "lw", "lbu", "lhu")
_STORE = ("sb", "sh", "sw")
_BRANCHES = ("beq", "bne", "blt", "bge", "bltu", "bgeu")


@st.composite
def random_rv32i_program(draw) -> list[Instruction]:
    """A random, always-terminating RV32I program ending in exit."""
    instrs = [Instruction("lui", rd=14, imm=0x8)]  # x14 = 0x8000 scratch
    for reg in _WORK_REGS:
        instrs.append(Instruction("addi", rd=reg, rs1=0,
                                  imm=draw(st.integers(-2048, 2047))))
    for _ in range(draw(st.integers(1, 15))):
        kind = draw(st.sampled_from(
            ("rr", "rr", "imm", "shift", "upper", "load", "store",
             "branch", "jump")))
        rd = draw(st.sampled_from(_WORK_REGS))
        rs1 = draw(st.sampled_from(_WORK_REGS + (0,)))
        rs2 = draw(st.sampled_from(_WORK_REGS + (0,)))
        if kind == "rr":
            instrs.append(Instruction(draw(st.sampled_from(_ALU_RR)),
                                      rd=rd, rs1=rs1, rs2=rs2))
        elif kind == "imm":
            instrs.append(Instruction(draw(st.sampled_from(_ALU_I)),
                                      rd=rd, rs1=rs1,
                                      imm=draw(st.integers(-2048, 2047))))
        elif kind == "shift":
            instrs.append(Instruction(draw(st.sampled_from(_SHIFT_I)),
                                      rd=rd, rs1=rs1,
                                      imm=draw(st.integers(0, 31))))
        elif kind == "upper":
            instrs.append(Instruction(draw(st.sampled_from(("lui",
                                                            "auipc"))),
                                      rd=rd,
                                      imm=draw(st.integers(0, 0xFFFFF))))
        elif kind == "load":
            instrs.append(Instruction(draw(st.sampled_from(_LOAD)),
                                      rd=rd, rs1=14,
                                      imm=draw(st.integers(0, 64))))
        elif kind == "store":
            instrs.append(Instruction(draw(st.sampled_from(_STORE)),
                                      rs1=14, rs2=rs2,
                                      imm=draw(st.integers(0, 64))))
        elif kind == "branch":
            # Forward skip-one: terminating whichever way it resolves.
            instrs.append(Instruction(draw(st.sampled_from(_BRANCHES)),
                                      rs1=rs1, rs2=rs2, imm=8))
            instrs.append(Instruction("addi", rd=rd, rs1=rd, imm=1))
        else:
            instrs.append(Instruction("jal",
                                      rd=draw(st.sampled_from((0, 1))),
                                      imm=8))
            instrs.append(Instruction("addi", rd=rd, rs1=rd, imm=-1))
    instrs.append(Instruction("addi", rd=17, rs1=0, imm=93))
    instrs.append(Instruction("ecall"))
    return instrs


class TestReferenceDifferential:
    @settings(max_examples=100, deadline=None)
    @given(random_rv32i_program())
    def test_machine_matches_reference(self, instrs):
        expected, exit_code = reference_trace(instrs)
        program = RiscvProgram(name="fuzz", data=assemble_words(instrs))
        divergence = diff_state_traces(expected, state_trace(program))
        assert divergence is None, str(divergence)
        _, machine = run_riscv_program(program)
        assert machine.exit_code == exit_code


# --------------------------------------------------------------------------
# Engine plumbing: cache keys and spec files.
# --------------------------------------------------------------------------

class TestCacheKeys:
    """Job keys derive from program *bytes*, mirroring the add-a-trace
    contract in test_engine_sharding.py: one edited binary re-simulates
    exactly one trace."""

    @staticmethod
    def shard_key_by_label(paths) -> dict[str, str]:
        programs = tuple(RiscvProgram.from_file(path) for path in paths)
        sweep = VccSweep(SweepSettings(profiles=(KERNEL_LIKE,),
                                       trace_length=300, riscv=programs))
        job = sweep.job_for(500.0, ClockScheme.IRAW)
        return {shard.trace.label: job_key(shard)
                for shard in shard_jobs(job)}

    def test_one_byte_edit_moves_only_that_trace_key(self, tmp_path):
        loop = tmp_path / "loop.bin"
        mix = tmp_path / "mix.bin"
        loop.write_bytes(rv32i_programs.build_loop())
        mix.write_bytes(rv32i_programs.build_mix())
        before = self.shard_key_by_label([loop, mix])
        assert set(before) == {"kernel-like/seed0", "loop", "mix"}

        data = bytearray(loop.read_bytes())
        data[4] ^= 0x01  # flip one bit of one instruction
        loop.write_bytes(bytes(data))
        after = self.shard_key_by_label([loop, mix])
        changed = [label for label in before
                   if before[label] != after[label]]
        assert changed == ["loop"]

    def test_moving_a_binary_keeps_its_key(self, tmp_path):
        original = tmp_path / "loop.bin"
        original.write_bytes(rv32i_programs.build_loop())
        moved = tmp_path / "elsewhere" / "loop.bin"
        moved.parent.mkdir()
        moved.write_bytes(original.read_bytes())
        assert self.shard_key_by_label([original]) == \
            self.shard_key_by_label([moved])


class TestSpecIntegration:
    def make_spec_file(self, tmp_path, body: str) -> pathlib.Path:
        path = tmp_path / "campaign.toml"
        path.write_text(body, encoding="utf-8")
        return path

    RISCV_ONLY = """\
name = "riscv-only"
artifacts = ["table1"]

[population.riscv.loop]
path = "loop.bin"

[grid]
vcc_mv = [500.0]
schemes = ["iraw"]

[table1]
vcc_mv = 500.0
"""

    def test_load_resolves_paths_against_spec_dir(self, tmp_path):
        (tmp_path / "loop.bin").write_bytes(rv32i_programs.build_loop())
        spec = ExperimentSpec.load(
            self.make_spec_file(tmp_path, self.RISCV_ONLY))
        assert spec.riscv[0].name == "loop"
        assert pathlib.Path(spec.riscv[0].path) == tmp_path / "loop.bin"
        assert spec.has_population()

    def test_riscv_only_population_runs(self, tmp_path):
        (tmp_path / "loop.bin").write_bytes(rv32i_programs.build_loop())
        spec = ExperimentSpec.load(
            self.make_spec_file(tmp_path, self.RISCV_ONLY))
        experiment = Experiment(spec)
        experiment.run()
        assert experiment.artifacts()["table1"]

    def test_round_trip_preserves_riscv_tables(self, tmp_path):
        (tmp_path / "loop.bin").write_bytes(rv32i_programs.build_loop())
        spec = ExperimentSpec.load(
            self.make_spec_file(tmp_path, self.RISCV_ONLY))
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_missing_binary_fails_at_load_time(self):
        ref = RiscvProgramRef("ghost", "/nonexistent/ghost.bin")
        with pytest.raises(ConfigError, match="cannot read"):
            ref.load()

    def test_ref_validation(self):
        with pytest.raises(ConfigError, match="must use only"):
            RiscvProgramRef("has.dots", "x.bin")
        with pytest.raises(ConfigError, match="needs a path"):
            RiscvProgramRef("ok", "")
        with pytest.raises(ConfigError, match="max_instructions"):
            RiscvProgramRef("ok", "x.bin", max_instructions=0)

    def test_duplicate_program_names_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ExperimentSpec(name="dup", vcc_mv=(500.0,),
                           riscv=(RiscvProgramRef("p", "a.bin"),
                                  RiscvProgramRef("p", "b.bin")))

    def test_unknown_riscv_key_rejected(self):
        with pytest.raises(ConfigError):
            RiscvProgramRef.from_dict("loop", {"path": "x.bin",
                                               "entry": 4096})
