"""Tests for the declarative experiment API (specs, driver, results)."""

import json

import pytest

from repro.analysis.dvfs import DvfsPhase
from repro.engine import ParallelRunner, ResultCache
from repro.engine.jobs import TraceSpec
from repro.errors import ConfigError
from repro.experiments import (
    ARTIFACTS,
    AblationSpec,
    DvfsScheduleSpec,
    Experiment,
    ExperimentSpec,
    KNOWN_ARTIFACTS,
    Record,
    ResultSet,
    run_spec,
)
from repro.experiments.specio import dumps_toml, loads_toml, \
    parse_toml_subset

pytestmark = pytest.mark.engine

#: A tiny, fast campaign reused across driver tests.
SMALL_SPEC = ExperimentSpec(
    name="small",
    profiles=("kernel-like",),
    trace_length=400,
    vcc_mv=(500.0,),
    artifacts=("table1", "fig11b", "overheads"),
)


def small_dvfs_spec(**kwargs) -> ExperimentSpec:
    defaults = dict(
        name="dvfs-small",
        profiles=("kernel-like",),
        trace_length=400,
        vcc_mv=(500.0,),
        artifacts=("dvfs",),
        dvfs=(DvfsScheduleSpec(
            name="phone",
            trace=TraceSpec.synthetic("office-like", seed=5, length=900),
            phases=(DvfsPhase(650.0, 300), DvfsPhase(450.0, 600)),
        ),),
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestSpecValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigError, match="unknown profile"):
            ExperimentSpec(profiles=("nope",))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="unknown clock scheme"):
            ExperimentSpec(schemes=("warp",))

    def test_unknown_artifact_rejected(self):
        with pytest.raises(ConfigError, match="unknown artifact"):
            ExperimentSpec(artifacts=("table2",))

    def test_explicit_grid_and_step_conflict(self):
        with pytest.raises(ConfigError, match="not both"):
            ExperimentSpec(vcc_mv=(500.0,), step_mv=50.0)

    def test_dvfs_artifact_needs_schedules(self):
        with pytest.raises(ConfigError, match="no schedules"):
            ExperimentSpec(artifacts=("dvfs",))

    def test_unknown_params_field_rejected(self):
        with pytest.raises(ConfigError, match="PipelineParams field"):
            ExperimentSpec(params={"warp_factor": 9})

    def test_unknown_memory_field_rejected(self):
        with pytest.raises(ConfigError, match="MemoryConfig field"):
            ExperimentSpec(memory={"l9_kb": 1})

    def test_duplicate_variant_names_rejected(self):
        with pytest.raises(ConfigError, match="unique"):
            ExperimentSpec(ablations=(AblationSpec(name="x"),
                                      AblationSpec(name="x")))

    def test_schedule_must_cover_trace(self):
        with pytest.raises(ConfigError, match="covers"):
            DvfsScheduleSpec(
                name="short",
                trace=TraceSpec.synthetic("office-like", length=1000),
                phases=(DvfsPhase(500.0, 999),))

    def test_ablation_scheme_validated(self):
        with pytest.raises(ConfigError, match="unknown clock scheme"):
            AblationSpec(name="bad", scheme="warp")

    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            ExperimentSpec.from_dict({"name": "x", "tables": {}})
        with pytest.raises(ConfigError, match="unknown grid"):
            ExperimentSpec.from_dict({"grid": {"vcc": [500]}})

    def test_grid_defaults_to_paper_sweep(self):
        spec = ExperimentSpec()
        grid = spec.grid()
        assert grid[0] == 700.0 and grid[-1] == 400.0
        assert len(grid) == 13  # 25 mV steps

    def test_params_overrides_apply(self):
        spec = ExperimentSpec(params={"fetch_width": 1},
                              memory={"dram_latency_cycles": 9})
        assert spec.pipeline_params().fetch_width == 1
        assert spec.memory_config().dram_latency_cycles == 9


class TestSpecSerialization:
    def test_dict_round_trip_full_featured(self):
        spec = small_dvfs_spec(
            ablations=(AblationSpec(name="no-rf",
                                    overrides={"rf_enabled": False}),),
            params=(("fetch_width", 1),),
            metadata=(("note", "hello"),),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_toml_round_trip(self):
        spec = small_dvfs_spec()
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_json_round_trip(self):
        spec = small_dvfs_spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_kernel_trace_round_trip(self):
        spec = small_dvfs_spec(dvfs=(DvfsScheduleSpec(
            name="kern",
            trace=TraceSpec.for_kernel("fib", size=12),
            phases=(DvfsPhase(500.0, 100),)),), artifacts=())
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_file_round_trip_both_formats(self, tmp_path):
        spec = small_dvfs_spec()
        for suffix in (".toml", ".json"):
            path = tmp_path / f"spec{suffix}"
            spec.save(path)
            assert ExperimentSpec.load(path) == spec

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("x")
        with pytest.raises(ConfigError, match="unknown spec format"):
            ExperimentSpec.load(path)
        with pytest.raises(ConfigError, match="unknown spec format"):
            SMALL_SPEC.save(path)

    def test_missing_file_clean_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read spec file"):
            ExperimentSpec.load(tmp_path / "absent.toml")

    def test_malformed_json_clean_error(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            ExperimentSpec.from_json("{nope")
        with pytest.raises(ConfigError, match="must be an object"):
            ExperimentSpec.from_json("[1, 2]")

    def test_json_integer_vcc_normalizes_to_float_keys(self):
        """A hand-written spec with `vcc_mv = [500]` must key like 500.0."""
        data = SMALL_SPEC.to_dict()
        data["grid"]["vcc_mv"] = [500]
        spec = ExperimentSpec.from_dict(data)
        assert spec == SMALL_SPEC
        assert Experiment(spec).plan_keys() \
            == Experiment(SMALL_SPEC).plan_keys()


class TestTomlSubsetParser:
    """The 3.10 fallback parser, exercised on every interpreter."""

    def test_matches_stdlib_on_spec_files(self):
        tomllib = pytest.importorskip("tomllib")
        for spec in (SMALL_SPEC,
                     small_dvfs_spec(
                         ablations=(AblationSpec(
                             name="no-rf",
                             overrides={"rf_enabled": False}),))):
            text = spec.to_toml()
            assert parse_toml_subset(text) == tomllib.loads(text)

    def test_fallback_engages_without_tomllib(self, monkeypatch):
        """The 3.10 path: no stdlib tomllib, full spec still loads."""
        from repro.experiments import specio

        monkeypatch.setattr(specio, "_tomllib", None)
        spec = small_dvfs_spec()
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec

    def test_stdlib_parse_error_becomes_config_error(self):
        pytest.importorskip("tomllib")
        with pytest.raises(ConfigError, match="invalid TOML"):
            ExperimentSpec.from_toml("= broken")

    def test_scalars_arrays_and_comments(self):
        data = parse_toml_subset(
            '# header comment\n'
            'name = "x # not a comment"  # trailing\n'
            'count = 3\n'
            'big = 1_000\n'
            'ratio = 0.5\n'
            'exp = 1e3\n'
            'neg = -2.5\n'
            'on = true\n'
            'off = false\n'
            'grid = [700.0, 650.0,\n'
            '        600.0]\n'
            'empty = []\n')
        assert data["name"] == "x # not a comment"
        assert data["count"] == 3 and data["big"] == 1000
        assert data["ratio"] == 0.5 and data["exp"] == 1000.0
        assert data["neg"] == -2.5
        assert data["on"] is True and data["off"] is False
        assert data["grid"] == [700.0, 650.0, 600.0]
        assert data["empty"] == []

    def test_nested_tables_and_table_arrays(self):
        data = parse_toml_subset(
            '[a]\nx = 1\n'
            '[a.b]\ny = 2\n'
            '[[items]]\nname = "first"\n'
            '[items.sub]\nz = 3\n'
            '[[items.points]]\nv = 1\n'
            '[[items.points]]\nv = 2\n'
            '[[items]]\nname = "second"\n')
        assert data["a"] == {"x": 1, "b": {"y": 2}}
        assert data["items"][0]["name"] == "first"
        assert data["items"][0]["sub"] == {"z": 3}
        assert [p["v"] for p in data["items"][0]["points"]] == [1, 2]
        assert data["items"][1] == {"name": "second"}

    @pytest.mark.parametrize("text", [
        "key",                       # no '='
        "a.b = 1",                   # dotted keys unsupported
        "x = ",                      # missing value
        'x = "unterminated',
        "x = [1, 2",
        "x = 2026-07-31",            # dates outside the subset
        "[table",                    # malformed header
        "x = 1\nx = 2",              # duplicate key
    ])
    def test_rejects_out_of_subset(self, text):
        with pytest.raises(ConfigError):
            parse_toml_subset(text)

    def test_emitter_round_trips_plain_data(self):
        data = {"name": 'quote " and \\ slash', "n": 3, "f": 0.25,
                "flag": True, "list": [1.5, 2.5], "strings": ["a", "b"],
                "table": {"x": 1, "nested": {"y": 2.0}},
                "rows": [{"a": 1}, {"a": 2, "sub": {"b": 3}}]}
        assert loads_toml(dumps_toml(data)) == data
        assert parse_toml_subset(dumps_toml(data)) == data

    def test_emitter_rejects_unrepresentable(self):
        with pytest.raises(ConfigError, match="cannot emit"):
            dumps_toml({"x": object()})
        with pytest.raises(ConfigError, match="cannot emit TOML key"):
            dumps_toml({"bad key": 1})


class TestResultSet:
    @staticmethod
    def records():
        return ResultSet([
            Record(kind="sweep-point", scheme="baseline", vcc_mv=500.0,
                   metrics={"ipc": 0.7, "cycles": 100}),
            Record(kind="sweep-point", scheme="iraw", vcc_mv=500.0,
                   metrics={"ipc": 0.6, "cycles": 120}),
            Record(kind="sweep-point", scheme="iraw", vcc_mv=450.0,
                   variant="no-rf", metrics={"ipc": 0.65}),
            Record(kind="dvfs-schedule", scheme="iraw", vcc_mv=0.0,
                   variant="phone", trace="office-like/seed5",
                   metrics={"total_time_s": 1e-3}),
        ])

    def test_record_access(self):
        record = self.records()[0]
        assert record["scheme"] == "baseline"
        assert record["ipc"] == 0.7
        assert record.get("absent", 42) == 42
        with pytest.raises(KeyError):
            record["absent"]
        assert record.as_dict()["kind"] == "sweep-point"

    def test_filter_and_where(self):
        results = self.records()
        assert len(results.filter(scheme="iraw")) == 3
        assert len(results.filter(scheme="iraw", variant="")) == 1
        assert len(results.where(lambda r: r.get("ipc", 0) > 0.64)) == 2

    def test_group_by(self):
        groups = self.records().group_by("scheme")
        assert set(groups) == {"baseline", "iraw"}
        assert len(groups["iraw"]) == 3
        pairs = self.records().group_by("kind", "scheme")
        assert ("dvfs-schedule", "iraw") in pairs

    def test_pivot(self):
        table = self.records().filter(kind="sweep-point", variant="") \
            .pivot("vcc_mv", "scheme", "ipc")
        assert table == [{"vcc_mv": 500.0, "baseline": 0.7, "iraw": 0.6}]

    def test_pivot_rejects_ambiguity(self):
        with pytest.raises(ConfigError, match="ambiguous"):
            self.records().pivot("kind", "scheme", "ipc")

    def test_columns_union_in_order(self):
        columns = self.records().columns
        assert columns[:5] == ["kind", "scheme", "vcc_mv", "variant",
                               "trace"]
        assert "cycles" in columns and "total_time_s" in columns

    def test_csv_export(self, tmp_path):
        path = tmp_path / "out.csv"
        text = self.records().to_csv(path)
        assert path.read_text() == text
        lines = text.splitlines()
        assert lines[0].startswith("kind,scheme,vcc_mv")
        assert len(lines) == 5
        assert "baseline" in lines[1] and "" in lines[1]

    def test_json_export_round_trips(self, tmp_path):
        path = tmp_path / "out.json"
        text = self.records().to_json(path)
        rows = json.loads(path.read_text())
        assert rows == json.loads(text)
        assert rows[0]["ipc"] == 0.7

    def test_slicing_and_equality(self):
        results = self.records()
        assert isinstance(results[1:], ResultSet)
        assert results[1:] == ResultSet(results.records[1:])
        assert ResultSet([]) == ResultSet(())
        assert results != object()
        assert "4 records" in repr(results)

    def test_contains(self):
        record = self.records()[0]
        assert "ipc" in record and "scheme" in record
        assert "absent" not in record

    def test_rejects_non_records(self):
        with pytest.raises(ConfigError, match="must be Records"):
            ResultSet([{"kind": "dict"}])

    def test_group_by_needs_columns(self):
        with pytest.raises(ConfigError, match="at least one column"):
            self.records().group_by()


class TestArtifactRegistry:
    def test_registry_serves_every_known_artifact(self):
        assert tuple(sorted(ARTIFACTS)) == tuple(sorted(KNOWN_ARTIFACTS))
        for artifact in ARTIFACTS.values():
            assert artifact.title and artifact.description
            assert callable(artifact.jobs) and callable(artifact.build)

    def test_unknown_artifact_lookup(self):
        from repro.experiments import artifact

        with pytest.raises(ConfigError, match="unknown artifact"):
            artifact("table2")


class TestExperimentDriver:
    def test_run_returns_resultset(self):
        experiment = Experiment(SMALL_SPEC)
        results = experiment.run()
        assert experiment.results is results
        # grid: 1 vcc x 2 schemes, plus faulty-bits/extra-bypass rows.
        assert len(results.filter(kind="sweep-point")) == 2
        assert len(results.filter(kind="faulty-bits")) == 1
        assert len(results.filter(kind="extra-bypass")) == 1
        iraw = results.filter(scheme="iraw", kind="sweep-point")[0]
        assert iraw["ipc"] > 0 and iraw["traces"] == 1

    def test_one_batch_no_rerender_simulation(self):
        experiment = Experiment(SMALL_SPEC)
        experiment.run()
        simulated = experiment.stats.simulated
        rendered = experiment.artifacts()
        assert experiment.stats.simulated == simulated  # pure memo-lookup
        assert set(rendered) == set(SMALL_SPEC.artifacts)
        assert len(rendered["table1"]) == 4
        assert rendered["fig11b"][0]["vcc_mv"] == 500.0

    def test_run_rebinds_runner(self, tmp_path):
        runner = ParallelRunner(cache=ResultCache(root=tmp_path))
        experiment = Experiment(SMALL_SPEC)
        results = experiment.run(runner)
        assert experiment.runner is runner
        assert runner.stats.simulated > 0
        assert len(results) == 4

    def test_run_spec_convenience(self):
        experiment = run_spec(SMALL_SPEC)
        assert experiment.results is not None

    def test_ablation_points_recorded(self):
        spec = ExperimentSpec(
            name="ablate", profiles=("kernel-like",), trace_length=400,
            vcc_mv=(500.0,), artifacts=(),
            ablations=(AblationSpec(name="no-rf",
                                    overrides={"rf_enabled": False}),))
        results = Experiment(spec).run()
        ablated = results.filter(variant="no-rf")
        assert len(ablated) == 1
        plain = results.filter(scheme="iraw", variant="")[0]
        # Disabling RF stalls can only help IPC at this point.
        assert ablated[0]["ipc"] >= plain["ipc"]

    def test_dvfs_records_and_artifact(self):
        experiment = Experiment(small_dvfs_spec())
        results = experiment.run()
        dvfs = results.filter(kind="dvfs-schedule")
        assert len(dvfs) == 2  # baseline + iraw
        assert {r.scheme for r in dvfs} == {"baseline", "iraw"}
        assert all(r.variant == "phone" for r in dvfs)
        rows = experiment.artifact("dvfs")
        by_scheme = {row["scheme"]: row for row in rows}
        assert by_scheme["baseline"]["speedup_vs_baseline"] \
            == pytest.approx(1.0)
        assert by_scheme["iraw"]["speedup_vs_baseline"] > 1.0
        assert by_scheme["iraw"]["transitions"] == 2

    def test_dvfs_only_spec_needs_no_population(self):
        spec = small_dvfs_spec(profiles=(), artifacts=("dvfs",))
        experiment = Experiment(spec)
        results = experiment.run()
        assert len(results.filter(kind="dvfs-schedule")) == 2
        with pytest.raises(ConfigError, match="no trace population"):
            experiment.sweep

    def test_shared_points_deduplicated(self):
        """table1 + fig11b at one Vcc share the baseline/iraw points."""
        experiment = Experiment(SMALL_SPEC)
        experiment.run()
        stats = experiment.stats
        # 4 distinct population evaluations x 1 trace = 4 simulations;
        # duplicates across grid/table1/fig11b plans never re-simulate.
        assert stats.simulated == 4
        assert stats.deduplicated + stats.memory_hits > 0

    def test_unknown_artifact_render_rejected(self):
        with pytest.raises(ConfigError, match="unknown artifact"):
            Experiment(SMALL_SPEC).artifact("table2")

    def test_off_grid_table1_points_are_recorded(self):
        """table1_vcc_mv outside the grid: its baseline/IRAW points are
        simulated for the table and must appear in the ResultSet."""
        spec = ExperimentSpec(
            name="offgrid", profiles=("kernel-like",), trace_length=400,
            vcc_mv=(450.0,), table1_vcc_mv=500.0, artifacts=("table1",))
        results = Experiment(spec).run()
        at_500 = results.filter(kind="sweep-point", vcc_mv=500.0)
        assert {r.scheme for r in at_500} == {"baseline", "iraw"}
        assert len(results.filter(kind="sweep-point", vcc_mv=450.0)) == 2
        # On-grid table1 (SMALL_SPEC) keeps deduplicating instead.
        on_grid = Experiment(SMALL_SPEC).run()
        assert len(on_grid.filter(kind="sweep-point", vcc_mv=500.0)) == 2

    def test_artifact_without_run_resolves_lazily(self):
        """Rendering before run() simulates exactly what it needs."""
        experiment = Experiment(SMALL_SPEC)
        rows = experiment.artifact("table1")
        assert len(rows) == 4
        assert experiment.stats.simulated > 0

    def test_legacy_wrappers_share_implementation(self):
        """build_table1/figure11b_series delegate to the registry code."""
        from repro.analysis.figures import figure11b_series
        from repro.analysis.table1 import build_table1
        from repro.analysis.sweep import SweepSettings, VccSweep

        experiment = Experiment(SMALL_SPEC)
        experiment.run()
        sweep = VccSweep(SMALL_SPEC.sweep_settings(),
                         runner=experiment.runner)
        assert build_table1(sweep, 500.0) == experiment.artifact("table1")
        rows = figure11b_series(sweep, step_mv=200.0)  # 700, 500 mV
        assert rows[1] == experiment.artifact("fig11b")[0]
        assert SweepSettings(trace_length=400).params \
            == SMALL_SPEC.sweep_settings().params


class TestInlineProfiles:
    """Custom (non-named) trace profiles authored directly in specs."""

    TOML = """
name = "inline"
artifacts = []

[population]
profiles = ["hot-loops", "kernel-like"]
trace_length = 400

[population.custom.hot-loops]
description = "tiny tight loops"
load_weight = 6.5
mean_block_size = 9
working_set_kb = 32

[grid]
vcc_mv = [500.0]
"""

    def test_custom_profiles_resolve_and_coerce(self):
        spec = ExperimentSpec.from_toml(self.TOML)
        custom, builtin = spec.profile_objects()
        assert custom.name == "hot-loops"
        assert custom.load_weight == 6.5
        assert custom.mean_block_size == 9.0          # int -> float
        assert isinstance(custom.mean_block_size, float)
        assert custom.working_set_kb == 32            # stays int
        assert builtin.name == "kernel-like"

    def test_round_trip_preserves_plan_keys(self):
        spec = ExperimentSpec.from_toml(self.TOML)
        via_toml = ExperimentSpec.from_toml(spec.to_toml())
        via_json = ExperimentSpec.from_json(spec.to_json())
        assert via_toml == spec and via_json == spec
        reference = Experiment(spec).plan_keys()
        assert Experiment(via_toml).plan_keys() == reference
        assert Experiment(via_json).plan_keys() == reference

    def test_campaign_runs_on_the_inline_population(self):
        spec = ExperimentSpec.from_toml(self.TOML)
        results = Experiment(spec).run()
        points = results.filter(kind="sweep-point")
        assert len(points) == 2                       # 1 vcc x 2 schemes
        assert all(row["traces"] == 2 for row in points)

    def test_custom_profile_keys_differ_from_builtin(self):
        """An inline profile is its own cache identity, not an alias."""
        inline = ExperimentSpec.from_toml(self.TOML)
        plain = ExperimentSpec(name="inline", profiles=("kernel-like",),
                               trace_length=400, vcc_mv=(500.0,),
                               artifacts=())
        assert set(Experiment(plain).plan_keys()) \
            != set(Experiment(inline).plan_keys())

    def test_validation(self):
        with pytest.raises(ConfigError, match="shadows a built-in"):
            ExperimentSpec.from_dict({
                "name": "x", "artifacts": [],
                "population": {"profiles": ["kernel-like"],
                               "custom": {"kernel-like": {}}},
                "grid": {"vcc_mv": [500.0]}})
        with pytest.raises(ConfigError, match="unknown fields"):
            ExperimentSpec.from_dict({
                "name": "x", "artifacts": [],
                "population": {"profiles": ["p"],
                               "custom": {"p": {"warp_factor": 2}}},
                "grid": {"vcc_mv": [500.0]}})
        with pytest.raises(ConfigError, match="unknown profile"):
            # Referencing a profile that is neither built-in nor custom.
            ExperimentSpec.from_toml(self.TOML.replace(
                '"hot-loops", ', '"hot-loops", "missing", '))
        from repro.workloads.profiles import TraceProfile

        with pytest.raises(ConfigError, match="duplicate custom"):
            ExperimentSpec(name="x", profiles=("a",), artifacts=(),
                           vcc_mv=(500.0,),
                           custom_profiles=(TraceProfile(name="a"),
                                            TraceProfile(name="a")))
        with pytest.raises(ConfigError, match="TraceProfile instances"):
            ExperimentSpec(name="x", profiles=(), artifacts=(),
                           vcc_mv=(500.0,), dvfs=(),
                           custom_profiles=({"name": "a"},),
                           montecarlo=None)


class TestStallsArtifact:
    SPEC = ExperimentSpec(name="stalls", profiles=("kernel-like",),
                          trace_length=400, vcc_mv=(575.0,),
                          stalls_vcc_mv=575.0, artifacts=("stalls",))

    def test_rows_match_the_legacy_decomposition(self):
        from repro.analysis.sweep import VccSweep

        experiment = Experiment(self.SPEC)
        experiment.run()
        rows = experiment.artifact("stalls")
        sweep = VccSweep(self.SPEC.sweep_settings(),
                         runner=experiment.runner)
        assert rows == [sweep.stall_decomposition(575.0)]
        assert rows[0]["vcc_mv"] == 575.0
        assert set(rows[0]) >= {"total_drop", "rf_drop", "dl0_drop",
                                "other_drop"}

    def test_planned_jobs_cover_the_render(self):
        """run() batches the five ablation points; rendering afterwards
        simulates nothing new."""
        experiment = Experiment(self.SPEC)
        experiment.run()
        simulated = experiment.stats.simulated
        experiment.artifact("stalls")
        assert experiment.stats.simulated == simulated

    def test_stalls_vcc_round_trips(self):
        spec = ExperimentSpec(name="s", profiles=("kernel-like",),
                              vcc_mv=(500.0,), stalls_vcc_mv=450.0,
                              artifacts=("stalls",))
        assert ExperimentSpec.from_toml(spec.to_toml()) == spec
        assert "stalls" in spec.to_dict()

    def test_stalls_artifact_needs_population(self):
        from repro.montecarlo import MonteCarloSpec

        with pytest.raises(ConfigError, match="'stalls'.*no trace"):
            ExperimentSpec(name="x", profiles=(), vcc_mv=(500.0,),
                           artifacts=("stalls",),
                           montecarlo=MonteCarloSpec(dies=1))

    def test_subset_parser_handles_new_sections(self):
        """The 3.10 fallback TOML parser agrees with tomllib on specs
        using [population.custom.*], [montecarlo] and [stalls]."""
        from repro.experiments.specio import loads_toml, parse_toml_subset
        from repro.montecarlo import MonteCarloSpec
        from repro.workloads.profiles import TraceProfile

        spec = ExperimentSpec(
            name="subset", vcc_mv=(500.0,),
            profiles=("hot", "kernel-like"),
            custom_profiles=(TraceProfile(name="hot", load_weight=6.5,
                                          working_set_kb=32),),
            stalls_vcc_mv=450.0,
            montecarlo=MonteCarloSpec(dies=4, arrays=("RF", "DL0")),
            artifacts=("yield_curve",))
        text = spec.to_toml()
        assert parse_toml_subset(text) == loads_toml(text)
        assert ExperimentSpec.from_dict(parse_toml_subset(text)) == spec

    def test_unsafe_custom_profile_names_rejected(self):
        """Names become TOML table headers; a space or dot must fail
        the spec eagerly, never corrupt a saved file."""
        from repro.workloads.profiles import TraceProfile

        for bad in ("my prof", "a.b", "", "quo\"te"):
            with pytest.raises(ConfigError,
                               match="custom profile name|needs a name|"
                                     "no positive|must use"):
                ExperimentSpec(
                    name="x", profiles=(bad,) if bad else ("k",),
                    vcc_mv=(500.0,), artifacts=(),
                    custom_profiles=(TraceProfile(name=bad),))

    def test_emitter_rejects_unsafe_header_paths(self):
        """Defence in depth: the emitter itself refuses table-header
        components that the reader could not parse back."""
        from repro.experiments.specio import dumps_toml

        with pytest.raises(ConfigError, match="cannot emit TOML key"):
            dumps_toml({"population": {"custom": {"my prof": {"x": 1}}}})

    def test_unreferenced_custom_profile_rejected(self):
        from repro.workloads.profiles import TraceProfile

        with pytest.raises(ConfigError, match="never referenced"):
            ExperimentSpec(name="x", profiles=("kernel-like",),
                           vcc_mv=(500.0,), artifacts=(),
                           custom_profiles=(TraceProfile(name="hot"),))

    def test_duplicate_grid_levels_deduped_in_spec(self):
        spec = ExperimentSpec(name="dup", profiles=("kernel-like",),
                              vcc_mv=(500.0, 500, 450.0), artifacts=())
        assert spec.vcc_mv == (500.0, 450.0)

    def test_bad_custom_profile_values_raise_config_errors(self):
        base = {"name": "x", "artifacts": [],
                "grid": {"vcc_mv": [500.0]}}
        with pytest.raises(ConfigError, match="must be an integer"):
            ExperimentSpec.from_dict({
                **base,
                "population": {"profiles": ["p"],
                               "custom": {"p": {"working_set_kb": 32.5}}}})
        with pytest.raises(ConfigError, match="bad value"):
            ExperimentSpec.from_dict({
                **base,
                "population": {"profiles": ["p"],
                               "custom": {"p": {"working_set_kb": "big"}}}})

    def test_duplicate_schemes_deduped_in_spec(self):
        spec = ExperimentSpec(name="dup-s", profiles=("kernel-like",),
                              vcc_mv=(500.0,),
                              schemes=("iraw", "iraw", "baseline"),
                              artifacts=())
        assert spec.schemes == ("iraw", "baseline")

    def test_stall_points_appear_in_the_resultset(self):
        """The five decomposition evaluations must not vanish from the
        export (same contract as off-grid table1 points)."""
        spec = ExperimentSpec(name="s-rec", profiles=("kernel-like",),
                              trace_length=400, vcc_mv=(500.0,),
                              stalls_vcc_mv=575.0, artifacts=("stalls",))
        results = Experiment(spec).run()
        at_575 = results.filter(kind="sweep-point", vcc_mv=575.0)
        assert len(at_575) == 5
        variants = {record.variant for record in at_575}
        assert variants == {"", "stalls:all-off", "stalls:no-rf",
                            "stalls:no-stable", "stalls:no-iq-guards"}
        # On-grid stalls vcc: the full IRAW point stays a grid record.
        on_grid = ExperimentSpec(name="s-on", profiles=("kernel-like",),
                                 trace_length=400, vcc_mv=(575.0,),
                                 stalls_vcc_mv=575.0,
                                 artifacts=("stalls",))
        rows = Experiment(on_grid).run().filter(kind="sweep-point",
                                                vcc_mv=575.0)
        assert len(rows) == 2 + 4   # grid pair + four ablation variants


class TestPerDieRecordLimit:
    """The per-die record cutoff: boundary-exact, aggregates untouched."""

    @staticmethod
    def mc_spec(dies: int) -> ExperimentSpec:
        from repro.montecarlo import MonteCarloSpec

        return ExperimentSpec(name="limit", profiles=(),
                              vcc_mv=(500.0,),
                              montecarlo=MonteCarloSpec(dies=dies),
                              artifacts=("yield_curve",))

    def test_the_limit_is_part_of_the_export_contract(self):
        """Consumers size downstream storage around this constant; a
        silent change is a breaking change to the ResultSet shape."""
        assert Experiment._PER_DIE_RECORD_LIMIT == 4096

    def test_boundary_is_inclusive(self, monkeypatch):
        """A campaign of exactly the limit still exports per-die rows;
        one die more drops them (and only them)."""
        monkeypatch.setattr(Experiment, "_PER_DIE_RECORD_LIMIT", 6)
        at_limit = Experiment(self.mc_spec(6)).run()
        assert len(at_limit.filter(kind="mc-die")) == 2 * 6  # per scheme
        assert len(at_limit.filter(kind="mc-yield")) == 2

        over_limit = Experiment(self.mc_spec(7)).run()
        assert len(over_limit.filter(kind="mc-die")) == 0
        assert len(over_limit.filter(kind="mc-yield")) == 2
