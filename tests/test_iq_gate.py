"""Tests for the IQ occupancy gate (paper Figure 9, Eq. 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.iq_gate import IqOccupancyGate
from repro.errors import ConfigError


class TestThreshold:
    def test_equation_one(self):
        """threshold = ICI + AI*N."""
        gate = IqOccupancyGate(iq_size=32, issue_window=2, alloc_width=2)
        gate.configure(stabilization_cycles=1, enabled=True)
        assert gate.threshold == 2 + 2 * 1
        gate.configure(stabilization_cycles=2, enabled=True)
        assert gate.threshold == 2 + 2 * 2

    def test_shift_trick_matches_multiply(self):
        """Figure 9: appending '0' to the right of N == N * AI for AI=2."""
        gate = IqOccupancyGate(alloc_width=2)
        for n in range(4):
            gate.configure(n, enabled=True)
            assert gate.threshold == 2 + (n << 1)

    def test_non_power_alloc_width(self):
        gate = IqOccupancyGate(iq_size=32, issue_window=2, alloc_width=3)
        gate.configure(2, enabled=True)
        assert gate.threshold == 2 + 6


class TestGating:
    def test_blocks_below_threshold(self):
        gate = IqOccupancyGate()
        gate.configure(1, enabled=True)
        assert not gate.allows_issue(3)
        assert gate.allows_issue(4)
        assert gate.allows_issue(30)

    def test_disabled_gate_always_allows(self):
        """The stall_issue? signal of Figure 9 set to 0."""
        gate = IqOccupancyGate()
        gate.configure(1, enabled=False)
        assert gate.allows_issue(0)
        gate.configure(0, enabled=True)  # N=0: writes fit the cycle
        assert gate.allows_issue(1)

    def test_drain_noops(self):
        """Section 4.2: AI*N NOOPs injected when the pipeline drains."""
        gate = IqOccupancyGate(alloc_width=2)
        gate.configure(1, enabled=True)
        assert gate.drain_noops == 2
        gate.configure(0, enabled=True)
        assert gate.drain_noops == 0


class TestPointerArithmetic:
    def test_simple_cases(self):
        gate = IqOccupancyGate(iq_size=32)
        assert gate.occupancy_from_pointers(head=0, tail=5) == 5
        assert gate.occupancy_from_pointers(head=30, tail=2) == 4
        assert gate.occupancy_from_pointers(head=7, tail=7) == 0

    @given(head=st.integers(min_value=0, max_value=31),
           tail=st.integers(min_value=0, max_value=31))
    def test_matches_modular_arithmetic(self, head, tail):
        """The Figure 9 bit trick equals (tail - head) mod IQsize."""
        gate = IqOccupancyGate(iq_size=32)
        assert (gate.occupancy_from_pointers(head, tail)
                == (tail - head) % 32)

    @given(head=st.integers(min_value=0, max_value=63),
           tail=st.integers(min_value=0, max_value=63))
    def test_other_queue_size(self, head, tail):
        gate = IqOccupancyGate(iq_size=64)
        assert (gate.occupancy_from_pointers(head, tail)
                == (tail - head) % 64)


class TestValidation:
    def test_power_of_two_queue(self):
        with pytest.raises(ConfigError):
            IqOccupancyGate(iq_size=33)

    def test_positive_widths(self):
        with pytest.raises(ConfigError):
            IqOccupancyGate(issue_window=0)

    def test_negative_n(self):
        gate = IqOccupancyGate()
        with pytest.raises(ConfigError):
            gate.configure(-1, enabled=True)
