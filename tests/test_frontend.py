"""Behavioural tests for the fetch stage (mispredicts, icache, RSB)."""

from repro.core.config import IrawConfig
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode
from repro.pipeline.core import simulate
from repro.pipeline.resources import PipelineParams
from repro.workloads.trace import Trace


def alu(index, dest, pc):
    return MicroOp(index, Opcode.ADD, dest=dest, srcs=(), imm=1, pc=pc)


def run_ops(ops, **kwargs):
    trace = Trace("frontend-test", ops)
    return simulate(trace, IrawConfig.disabled(), check_values=False,
                    **kwargs)


def loop_trace(iterations, taken_pattern=None):
    """A tiny loop: 3 ALU ops + a backedge branch, fixed pcs."""
    ops = []
    for iteration in range(iterations):
        base = 0x1000
        for slot in range(3):
            ops.append(alu(len(ops), dest=1 + slot, pc=base + 4 * slot))
        taken = iteration < iterations - 1 if taken_pattern is None \
            else taken_pattern[iteration]
        ops.append(MicroOp(len(ops), Opcode.BNE, srcs=(1,), pc=base + 12,
                           taken=taken, target=base))
    return Trace("loop", ops)


class TestBranchPrediction:
    def test_predictable_loop_has_few_mispredicts(self):
        trace = loop_trace(40)
        result = simulate(trace, IrawConfig.disabled(), check_values=False)
        # Bimodal warms up in a couple of iterations; only the exit (and
        # the cold start) mispredict.
        assert result.branch_mispredicts <= 4
        assert result.branches == 40

    def test_alternating_branch_mispredicts_often(self):
        pattern = [i % 2 == 0 for i in range(40)]
        trace = loop_trace(40, taken_pattern=pattern)
        result = simulate(trace, IrawConfig.disabled(), check_values=False)
        assert result.branch_mispredicts > 10

    def test_mispredicts_cost_cycles(self):
        predictable = loop_trace(40)
        noisy = loop_trace(40, taken_pattern=[i % 2 == 0
                                              for i in range(40)])
        fast = simulate(predictable, IrawConfig.disabled(),
                        check_values=False)
        slow = simulate(noisy, IrawConfig.disabled(), check_values=False)
        assert slow.cycles > fast.cycles

    def test_mispredict_penalty_parameter(self):
        pattern = [i % 2 == 0 for i in range(30)]
        trace = loop_trace(30, taken_pattern=pattern)
        cheap = simulate(trace, IrawConfig.disabled(), check_values=False,
                         params=PipelineParams(mispredict_penalty=1))
        dear = simulate(trace, IrawConfig.disabled(), check_values=False,
                        params=PipelineParams(mispredict_penalty=20))
        assert dear.cycles > cheap.cycles


class TestInstructionCache:
    def test_cold_code_stalls_fetch(self):
        """Instructions spread over many lines: cold IL0 misses stall."""
        dense = [alu(i, dest=1 + (i % 4), pc=0x1000 + 4 * i)
                 for i in range(64)]
        sparse = [alu(i, dest=1 + (i % 4), pc=0x1000 + 256 * i)
                  for i in range(64)]
        dense_result = run_ops(dense)
        sparse_result = run_ops(sparse)
        assert sparse_result.cycles > dense_result.cycles
        assert sparse_result.memory_stats["IL0"]["misses"] > \
            dense_result.memory_stats["IL0"]["misses"]


class TestCallsAndReturns:
    def test_call_ret_sequence_predicts_well(self):
        ops = []
        for repetition in range(10):
            ops.append(MicroOp(len(ops), Opcode.CALL, pc=0x1000, taken=True,
                               target=0x2000))
            ops.append(alu(len(ops), dest=1, pc=0x2000))
            ops.append(MicroOp(len(ops), Opcode.RET, pc=0x2004, taken=True,
                               target=0x1004))
            ops.append(alu(len(ops), dest=2, pc=0x1004))
        result = run_ops(ops)
        # RSB predicts every return correctly.
        assert result.branch_mispredicts == 0

    def test_deep_recursion_overflows_rsb(self):
        """More nested calls than RSB entries -> some returns mispredict."""
        depth = 12  # RSB has 8 entries
        ops = []
        for level in range(depth):
            ops.append(MicroOp(len(ops), Opcode.CALL,
                               pc=0x1000 + 8 * level, taken=True,
                               target=0x1000 + 8 * (level + 1)))
        for level in reversed(range(depth)):
            ops.append(MicroOp(len(ops), Opcode.RET,
                               pc=0x1004 + 8 * level, taken=True,
                               target=0x1004 + 8 * level))
        result = run_ops(ops)
        assert result.branch_mispredicts > 0
