"""Telemetry layer: metrics instruments, span tracing, reporting.

Covers the :mod:`repro.obs` package plus its integration points — the
runner's trace sink and stats-as-registry-view, the ``repro trace
report`` and ``repro cache --stats`` CLI arms, and the progress
listeners.  The two load-bearing invariants are property-tested with
hypothesis: histogram merge equals the histogram of the concatenated
observations, and span serialization round-trips through JSON.

The golden-identity guard matters most: running the same batch with
tracing on and off must produce bit-identical results, because
telemetry that perturbs the experiment would invalidate every
reproduction claim downstream.
"""

import json
import pickle
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (
    CompositeProgress,
    EngineStats,
    Job,
    MetricsProgress,
    NullProgress,
    ParallelRunner,
    PoolBackend,
    QueueBackend,
    ResultCache,
    SpoolBroker,
    TextProgress,
    job_key,
)
from repro.engine.broker import ExpiredEvent, WorkerSupervisor
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Sample,
)
from repro.obs.report import render_report, summarize
from repro.obs.trace import (
    STAGES,
    BatchTrace,
    JsonlTraceSink,
    NullTraceSink,
    Span,
    read_spans,
)

pytestmark = pytest.mark.engine


def sleep_jobs(count: int, tag: str = "t") -> list:
    return [Job(kind="engine-selftest-sleep",
                options=(("note", f"{tag}{index}"), ("seconds", 0.0)))
            for index in range(count)]


# ---------------------------------------------------------------------------
# Instruments


class TestInstruments:
    def test_counter_inc_and_set(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        counter.set(2)
        assert counter.value == 2

    def test_gauge_callback_wins_and_swallows_errors(self):
        gauge = Gauge("g", fn=lambda: 7)
        gauge.set(99)  # the stored value is shadowed by the callback
        assert gauge.value == 7.0
        sick = Gauge("sick", fn=lambda: 1 / 0)
        assert sick.value == 0.0

    def test_histogram_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, float("inf")))

    def test_histogram_observe_and_cumulative(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.bucket_counts() == [1, 2, 1]
        assert hist.cumulative() == [1, 3, 4]
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)

    def test_histogram_merge_rejects_different_buckets(self):
        with pytest.raises(ValueError):
            Histogram("a", buckets=(1.0,)).merge(
                Histogram("b", buckets=(2.0,)))

    @settings(max_examples=50, deadline=None)
    @given(left=st.lists(st.floats(0.0, 100.0), max_size=30),
           right=st.lists(st.floats(0.0, 100.0), max_size=30))
    def test_histogram_merge_equals_union_of_observations(self, left,
                                                          right):
        """merge(A, B) must equal the histogram of A's and B's inputs."""
        merged = Histogram("left")
        other = Histogram("right")
        union = Histogram("union")
        for value in left:
            merged.observe(value)
            union.observe(value)
        for value in right:
            other.observe(value)
            union.observe(value)
        merged.merge(other)
        assert merged.bucket_counts() == union.bucket_counts()
        assert merged.count == union.count
        assert merged.sum == pytest.approx(union.sum)


class TestRegistry:
    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("jobs", "help")
        second = registry.counter("jobs")
        assert first is second

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        lost = registry.counter("faults", labels={"outcome": "lost"})
        failed = registry.counter("faults", labels={"outcome": "failed"})
        assert lost is not failed
        lost.inc()
        snap = registry.snapshot()
        assert snap["faults{outcome=lost}"] == 1
        assert snap["faults{outcome=failed}"] == 0

    def test_collector_samples_in_snapshot_and_text(self):
        registry = MetricsRegistry()
        registry.collector(lambda: [
            Sample("tenants", 3, (("tenant", "acme"),), help="per tenant")])
        registry.collector(lambda: 1 / 0)  # sick collector is skipped
        assert registry.snapshot()["tenants{tenant=acme}"] == 3
        text = registry.to_prometheus()
        assert 'repro_tenants{tenant="acme"} 3' in text

    def test_prometheus_text_is_well_formed(self):
        import re
        registry = MetricsRegistry()
        registry.counter("done", "jobs done").inc(2)
        registry.gauge("depth", "queue depth").set(1.5)
        hist = registry.histogram("lat", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(10.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_done_total counter" in text
        assert "repro_done_total 2" in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum" in text and "repro_lat_count 2" in text
        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
                            r"(\{[^}]*\})? -?[0-9.e+E-]+$")
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("g", labels={"path": 'a"b\\c\nd'}).set(1)
        text = registry.to_prometheus()
        assert r'path="a\"b\\c\nd"' in text


# ---------------------------------------------------------------------------
# Spans and sinks


span_dicts = st.fixed_dictionaries({
    "key": st.text(max_size=16),
    "label": st.text(max_size=16),
    "kind": st.text(max_size=16),
    "backend": st.sampled_from(["serial", "pool", "queue"]),
    "worker": st.text(max_size=8),
    "batch": st.text(max_size=8),
    "start_s": st.floats(0.0, 1e6),
    "duration_s": st.floats(0.0, 1e3),
    "stages": st.dictionaries(st.sampled_from(STAGES),
                              st.floats(0.0, 1e3), max_size=len(STAGES)),
    "cache_hit": st.booleans(),
    "status": st.sampled_from(["ok", "error"]),
})


class TestSpans:
    @settings(max_examples=50, deadline=None)
    @given(payload=span_dicts)
    def test_span_round_trips_through_json(self, payload):
        span = Span(**payload)
        clone = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert clone.to_dict() == span.to_dict()

    def test_from_dict_tolerates_unknown_and_missing_fields(self):
        span = Span.from_dict({"key": "k", "future_field": 1})
        assert span.key == "k"
        assert span.status == "ok"
        assert span.stages == {}

    def test_jsonl_sink_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "spans.jsonl"
        sink = JsonlTraceSink(path)
        sink.emit(Span(key="a", kind="j"))
        sink.emit(Span(key="b", kind="j", status="error"))
        sink.close()
        spans = read_spans(path)
        assert [span.key for span in spans] == ["a", "b"]
        assert spans[1].status == "error"

    def test_read_spans_skips_garbage_lines(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text('{"key": "good"}\nnot json\n[1, 2]\n')
        assert [span.key for span in read_spans(path)] == ["good"]

    def test_null_sink_is_disabled(self):
        assert NullTraceSink().enabled is False

    def test_batch_trace_attributes_stages_exactly(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        trace = BatchTrace(sink, backend="serial", batch_label="b")
        job = Job(kind="engine-selftest-sleep", options=(("note", "x"),))
        key = job_key(job)
        trace.plan_done()
        trace.submitted({key: job}.items())
        trace.executed(key, 0.002, worker="w1")
        trace.collected(key, cache_write_s=0.0005)
        trace.finish("ok")
        sink.close()
        shard = [s for s in read_spans(tmp_path / "t.jsonl")
                 if s.kind != "engine-batch"][0]
        parts = sum(shard.stages.get(stage, 0.0)
                    for stage in ("queue_wait", "execute", "cache_write"))
        assert parts == pytest.approx(shard.duration_s, rel=1e-6)
        assert shard.worker == "w1"


# ---------------------------------------------------------------------------
# EngineStats as a registry view


class TestEngineStatsView:
    def test_counters_live_in_the_registry(self):
        registry = MetricsRegistry()
        stats = EngineStats(registry=registry)
        stats.simulated += 3
        assert registry.snapshot()["engine_simulated"] == 3
        assert stats.simulated == 3

    def test_keyword_construction_and_equality(self):
        assert EngineStats(memory_hits=2, disk_hits=1).hits == 3
        assert EngineStats(simulated=1) == EngineStats(simulated=1)
        assert EngineStats(simulated=1) != EngineStats(simulated=2)

    def test_unknown_kwarg_raises(self):
        with pytest.raises(TypeError):
            EngineStats(bogus=1)

    def test_pickle_round_trip(self):
        stats = EngineStats(simulated=4, errors=1)
        assert pickle.loads(pickle.dumps(stats)) == stats

    def test_delta_tolerates_missing_counters(self):
        """Counters added after a snapshot was persisted must read as 0
        in the baseline, not KeyError (old registry JSONs stay loadable)."""
        stats = EngineStats(simulated=5, retried=2)
        old_snapshot = {"simulated": 3}  # persisted before 'retried' existed
        delta = stats.delta(old_snapshot)
        assert delta["simulated"] == 2
        assert delta["retried"] == 2

    def test_delta_tolerates_none_values(self):
        delta = EngineStats(simulated=1).delta({"simulated": None})
        assert delta["simulated"] == 1


# ---------------------------------------------------------------------------
# Progress listeners


class TestProgress:
    def test_null_progress_is_silent(self):
        listener = NullProgress()
        listener.start(3)
        listener.advance(1, 3)
        listener.finish(3)  # nothing to assert: must simply not raise

    def test_text_progress_emits_and_clears(self):
        import io
        stream = io.StringIO()
        listener = TextProgress(stream=stream)
        listener.start(3, "lbl")
        listener.advance(2, 3, "lbl")
        listener.finish(3, "lbl")
        text = stream.getvalue()
        assert "0/3 lbl" in text and "2/3 lbl" in text

    def test_text_progress_skips_tiny_batches(self):
        import io
        stream = io.StringIO()
        listener = TextProgress(stream=stream, min_total=2)
        listener.start(1)
        listener.advance(1, 1)
        listener.finish(1)
        assert stream.getvalue() == ""

    def test_text_progress_survives_closed_stream(self):
        import io
        stream = io.StringIO()
        listener = TextProgress(stream=stream)
        listener.start(5)
        stream.close()
        listener.advance(1, 5)  # must go silent, not raise
        listener.finish(5)

    def test_composite_fans_out_in_order(self):
        calls = []

        class Probe:
            def __init__(self, tag):
                self.tag = tag

            def start(self, total, label=""):
                calls.append((self.tag, "start", total))

            def advance(self, done, total, label=""):
                calls.append((self.tag, "advance", done))

            def finish(self, total, label=""):
                calls.append((self.tag, "finish", total))

        listener = CompositeProgress(Probe("a"), Probe("b"))
        listener.start(2)
        listener.advance(1, 2)
        listener.finish(2)
        assert calls == [("a", "start", 2), ("b", "start", 2),
                         ("a", "advance", 1), ("b", "advance", 1),
                         ("a", "finish", 2), ("b", "finish", 2)]

    def test_metrics_progress_mirrors_batch_state(self):
        registry = MetricsRegistry()
        listener = MetricsProgress(registry)
        listener.start(4)
        listener.advance(3, 4)
        snap = registry.snapshot()
        assert snap["engine_batch_total"] == 4
        assert snap["engine_batch_done"] == 3
        assert snap["engine_batches"] == 1
        listener.finish(4)
        snap = registry.snapshot()
        assert snap["engine_batch_total"] == 0
        assert snap["engine_batch_done"] == 0


# ---------------------------------------------------------------------------
# Runner integration


class TestRunnerTracing:
    def run_traced(self, tmp_path, *, workers=1, backend=None, cache=None,
                   jobs=None, name="run.jsonl"):
        path = tmp_path / name
        runner = ParallelRunner(workers=workers, cache=cache,
                                backend=backend,
                                trace_sink=JsonlTraceSink(path))
        results = runner.run(jobs if jobs is not None else sleep_jobs(4),
                             label="traced")
        return results, read_spans(path), runner

    def test_one_span_per_executed_shard(self, tmp_path):
        _, spans, _ = self.run_traced(tmp_path)
        shards = [span for span in spans if span.kind != "engine-batch"]
        batches = [span for span in spans if span.kind == "engine-batch"]
        assert len(shards) == 4
        assert len(batches) == 1
        assert all(span.backend == "serial" for span in shards)

    def test_stage_timings_sum_to_span_duration(self, tmp_path):
        _, spans, _ = self.run_traced(tmp_path)
        for span in spans:
            if span.kind == "engine-batch" or span.cache_hit:
                continue
            parts = sum(span.stages.get(stage, 0.0)
                        for stage in ("queue_wait", "execute",
                                      "cache_write"))
            assert parts == pytest.approx(span.duration_s, rel=1e-6)

    def test_pool_backend_emits_worker_tagged_spans(self, tmp_path):
        _, spans, _ = self.run_traced(
            tmp_path, workers=2, backend=PoolBackend(workers=2))
        shards = [span for span in spans if span.kind != "engine-batch"]
        assert len(shards) == 4
        assert all(span.backend == "pool" for span in shards)
        assert all(span.worker.startswith("pid:") for span in shards)
        assert all(span.stages.get("execute", 0.0) >= 0.0
                   for span in shards)

    def test_cache_hits_emit_hit_spans(self, tmp_path):
        cache = ResultCache(root=tmp_path / "cache")
        jobs = sleep_jobs(3, tag="hit")
        warm = ParallelRunner(workers=1, cache=cache)
        warm.run(jobs)
        _, spans, runner = self.run_traced(
            tmp_path, cache=ResultCache(root=tmp_path / "cache"),
            jobs=jobs)
        hits = [span for span in spans if span.cache_hit]
        assert len(hits) == 3
        assert runner.stats.disk_hits == 3
        assert all("cache_read" in span.stages for span in hits)

    def test_tracing_does_not_perturb_results(self, tmp_path):
        jobs = sleep_jobs(4, tag="ident")
        plain = ParallelRunner(workers=1).run(jobs)
        traced, _, _ = self.run_traced(tmp_path, jobs=jobs)
        assert pickle.dumps(plain) == pickle.dumps(traced)

    def test_disabled_sink_builds_no_trace(self, tmp_path):
        runner = ParallelRunner(workers=1, trace_sink=NullTraceSink())
        assert runner.trace_sink is None
        runner.run(sleep_jobs(2))

    def test_failed_shard_emits_error_span(self, tmp_path):
        path = tmp_path / "err.jsonl"
        runner = ParallelRunner(workers=1,
                                trace_sink=JsonlTraceSink(path))
        bad = [Job(kind="engine-selftest-crash",
                   options=(("note", "boom"),))]
        with pytest.raises(Exception):
            runner.run(bad, label="failing")
        statuses = {span.kind: span.status for span in read_spans(path)}
        assert statuses["engine-selftest-crash"] == "error"
        assert statuses["engine-batch"] == "error"


# ---------------------------------------------------------------------------
# Reporting and CLI arms


class TestReporting:
    def test_summarize_counts_and_hit_rates(self, tmp_path):
        spans = [
            Span(key="a", kind="k", duration_s=1.0,
                 stages={"execute": 1.0}),
            Span(key="b", kind="k", cache_hit=True, duration_s=0.1,
                 stages={"cache_read": 0.1}),
            Span(key="c", kind="k", status="error"),
            Span(key="", kind="engine-batch", duration_s=2.0,
                 stages={"plan": 0.5}),
        ]
        summary = summarize(spans)
        assert summary["shards"] == 3
        assert summary["batches"] == 1
        assert summary["errors"] == 1
        assert summary["wall_s"] == pytest.approx(2.0)
        (kind_row,) = summary["hit_rates"]
        assert kind_row["hits"] == 1
        assert kind_row["executed"] == 1
        assert kind_row["hit_rate"] == pytest.approx(0.5)

    def test_render_report_mentions_every_stage_observed(self):
        spans = [Span(key="a", kind="k", duration_s=1.0,
                      stages={"execute": 0.7, "queue_wait": 0.3})]
        text = render_report(spans)
        assert "execute" in text and "queue_wait" in text
        assert "1 shard span(s)" in text

    def test_trace_report_cli(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "cli.jsonl"
        runner = ParallelRunner(workers=1,
                                trace_sink=JsonlTraceSink(path))
        runner.run(sleep_jobs(2, tag="cli"))
        assert main(["trace", "report", str(path)]) == 0
        assert "Per-stage breakdown" in capsys.readouterr().out
        assert main(["trace", "report", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["shards"] == 2
        assert main(["trace", "report", str(tmp_path / "nope.jsonl")]) == 2

    def test_trace_generate_still_validates(self, capsys):
        from repro.cli import main
        assert main(["trace"]) == 2
        assert "needs --profile and --out" in capsys.readouterr().err


class TestCacheStatsCli:
    def test_cache_stats_json(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        runner = ParallelRunner(workers=1, cache=ResultCache.default())
        runner.run(sleep_jobs(3, tag="stats"))
        runner.run(sleep_jobs(3, tag="stats"))  # memo hits, not disk
        fresh = ParallelRunner(workers=1, cache=ResultCache.default())
        fresh.run(sleep_jobs(3, tag="stats"))  # disk hits
        fresh.cache.flush()

        assert main(["cache", "--stats", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["entries"] == 3
        assert report["hits"] == 3
        assert report["misses"] == 3
        assert report["hit_rate"] == pytest.approx(0.5)
        assert report["versions"][0]["current"] is True

    def test_cache_stats_is_read_only_and_exclusive(self, tmp_path,
                                                    monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache", "--stats", "--clear"]) == 2
        assert main(["cache", "--json"]) == 2
        capsys.readouterr()
        assert main(["cache", "--stats"]) == 0
        assert "hit rate" in capsys.readouterr().out

    def test_prune_resets_the_hit_rate_window(self, tmp_path,
                                              monkeypatch, capsys):
        from repro.cli import main
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        runner = ParallelRunner(workers=1, cache=ResultCache.default())
        runner.run(sleep_jobs(2, tag="w"))
        runner.cache.flush()
        assert main(["cache", "--prune"]) == 0
        capsys.readouterr()
        assert main(["cache", "--stats", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["hits"] == 0 and report["misses"] == 0
        assert report["hit_rate"] is None


# ---------------------------------------------------------------------------
# Queue, broker and supervisor telemetry


class TestQueueTelemetry:
    def test_traced_queue_run_tags_spans_with_worker(self, tmp_path):
        backend = QueueBackend(tmp_path / "spool", local_workers=2,
                               lease_timeout=60.0, poll_interval=0.01)
        path = tmp_path / "queue.jsonl"
        runner = ParallelRunner(backend=backend,
                                trace_sink=JsonlTraceSink(path))
        results = runner.run(sleep_jobs(4, tag="q"), label="queued")
        assert len(results) == 4
        shards = [span for span in read_spans(path)
                  if span.kind != "engine-batch"]
        assert len(shards) == 4
        assert all(span.backend == "queue" for span in shards)
        # Worker identity and worker-measured execute time ride back in
        # the WireResult envelope; both must survive the spool round
        # trip into the span.
        assert all(span.worker for span in shards)
        assert all(span.stages.get("execute", -1.0) >= 0.0
                   for span in shards)

    def test_queue_run_registers_fault_instruments(self, tmp_path):
        backend = QueueBackend(tmp_path / "spool", local_workers=1,
                               lease_timeout=60.0, poll_interval=0.01)
        runner = ParallelRunner(backend=backend)
        runner.run(sleep_jobs(2, tag="reg"))
        snapshot = runner.metrics.snapshot()
        # A clean run touches none of the fault paths, but every
        # instrument must exist (the scrape surface is stable).
        assert snapshot["queue_requeued"] == 0
        for outcome in ("lost", "expired", "corrupt", "failed"):
            assert snapshot[f"queue_faults{{outcome={outcome}}}"] == 0
        assert snapshot["queue_lease_expired"] == 0
        assert snapshot["queue_heartbeat_lag_s"]["count"] == 0

    def test_lease_lag_hook_reports_stale_heartbeat(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=30.0)
        job = sleep_jobs(1, tag="lag")[0]
        key = job_key(job)
        assert broker.submit(key, job)
        assert broker.claim_next("w1") is not None
        lags: list = []
        broker.on_lease_lag = lags.append
        assert broker.poll([key]) == []  # first pass arms the watch
        assert lags == []
        time.sleep(0.02)
        assert broker.poll([key]) == []  # healthy lease, beat unmoved
        assert len(lags) == 1
        assert lags[0] > 0.0

    def test_lease_expiry_hook_counts_expired_leases(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=0.01)
        job = sleep_jobs(1, tag="expire")[0]
        key = job_key(job)
        assert broker.submit(key, job)
        assert broker.claim_next("w1") is not None
        expiries: list = []
        broker.on_lease_expired = lambda: expiries.append(1)
        assert broker.poll([key]) == []  # arms the staleness clock
        time.sleep(0.05)
        events = broker.poll([key])
        assert [type(event) for event in events] == [ExpiredEvent]
        assert expiries == [1]
        # The shard went back to pending/ and is claimable again.
        assert broker.claim_next("w2") is not None

    def test_attach_metrics_wires_broker_hooks(self, tmp_path):
        backend = QueueBackend(tmp_path / "spool", lease_timeout=0.01,
                               poll_interval=0.01)
        registry = MetricsRegistry()
        backend.attach_metrics(registry)
        broker = backend.broker
        job = sleep_jobs(1, tag="wired")[0]
        key = job_key(job)
        assert broker.submit(key, job)
        assert broker.claim_next("w1") is not None
        broker.poll([key])
        time.sleep(0.05)
        broker.poll([key])
        snapshot = registry.snapshot()
        assert snapshot["queue_lease_expired"] == 1

    def test_supervisor_attach_metrics_exports_fleet_gauges(
            self, tmp_path):
        supervisor = WorkerSupervisor(tmp_path / "spool", max_workers=2,
                                      spawn=lambda: None)
        registry = MetricsRegistry()
        supervisor.attach_metrics(registry)
        supervisor.spawned = 3
        supervisor.crashed = 1
        supervisor.respawns = 2
        job = sleep_jobs(1, tag="sup")[0]
        assert supervisor.broker.submit(job_key(job), job)
        snapshot = registry.snapshot()
        assert snapshot["supervisor_fleet"] == 0
        assert snapshot["supervisor_spawned"] == 3
        assert snapshot["supervisor_crashed"] == 1
        assert snapshot["supervisor_respawns"] == 2
        assert snapshot["queue_backlog_shards"] == 1
