"""Tests for the mini ISA: opcodes, registers, micro-ops, semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import TraceError
from repro.isa.instructions import MicroOp, nop
from repro.isa.opcodes import (
    CONTROL_CLASSES,
    DEFAULT_LATENCY,
    LONG_LATENCY_CLASSES,
    OPCODE_CLASS,
    UNPIPELINED_CLASSES,
    OpClass,
    Opcode,
)
from repro.isa.registers import NUM_REGISTERS, parse_register, register_name
from repro.isa.semantics import alu_result, branch_taken, to_signed64, wrap64


class TestOpcodeTables:
    def test_every_opcode_has_a_class(self):
        for opcode in Opcode:
            assert opcode in OPCODE_CLASS

    def test_every_class_has_a_latency(self):
        for opclass in OpClass:
            assert DEFAULT_LATENCY[opclass] >= 1

    def test_divides_are_long_latency_and_unpipelined(self):
        assert OpClass.INT_DIV in LONG_LATENCY_CLASSES
        assert OpClass.FP_DIV in UNPIPELINED_CLASSES

    def test_control_classes(self):
        assert OPCODE_CLASS[Opcode.BEQ] in CONTROL_CLASSES
        assert OPCODE_CLASS[Opcode.CALL] in CONTROL_CLASSES
        assert OPCODE_CLASS[Opcode.ADD] not in CONTROL_CLASSES


class TestRegisters:
    def test_parse_plain(self):
        assert parse_register("r0") == 0
        assert parse_register("R31") == 31

    def test_parse_aliases(self):
        assert parse_register("sp") == 29
        assert parse_register("lr") == 30

    def test_parse_rejects_garbage(self):
        for bad in ("r32", "x1", "r-1", "", "r1.5"):
            with pytest.raises(TraceError):
                parse_register(bad)

    def test_register_name_roundtrip(self):
        for index in range(NUM_REGISTERS):
            assert parse_register(register_name(index)) == index

    def test_register_name_out_of_range(self):
        with pytest.raises(TraceError):
            register_name(NUM_REGISTERS)


class TestMicroOp:
    def test_precomputed_flags(self):
        load = MicroOp(0, Opcode.LD, dest=1, srcs=(2,), mem_addr=64)
        assert load.is_load and not load.is_store and not load.is_control
        store = MicroOp(1, Opcode.ST, srcs=(1, 2), mem_addr=64)
        assert store.is_store
        ret = MicroOp(2, Opcode.RET, taken=True)
        assert ret.is_control and ret.is_return

    def test_memory_op_requires_address(self):
        with pytest.raises(TraceError):
            MicroOp(0, Opcode.LD, dest=1, srcs=(2,))

    def test_register_bounds_checked(self):
        with pytest.raises(TraceError):
            MicroOp(0, Opcode.ADD, dest=99, srcs=(1, 2))
        with pytest.raises(TraceError):
            MicroOp(0, Opcode.ADD, dest=1, srcs=(99,))

    def test_nop_helper(self):
        op = nop(7, pc=0x40)
        assert op.opclass is OpClass.NOP
        assert op.index == 7

    def test_repr_is_informative(self):
        op = MicroOp(3, Opcode.BNE, srcs=(4,), taken=True, target=0x100)
        text = repr(op)
        assert "bne" in text and "T" in text


class TestSemantics:
    def test_basic_arithmetic(self):
        assert alu_result(Opcode.ADD, 2, 3, 0) == 5
        assert alu_result(Opcode.SUB, 10, 4, 0) == 6
        assert alu_result(Opcode.MUL, 7, 6, 0) == 42
        assert alu_result(Opcode.DIV, 42, 6, 0) == 7

    def test_division_semantics(self):
        assert alu_result(Opcode.DIV, 7, 0, 0) == (1 << 64) - 1
        assert to_signed64(alu_result(Opcode.DIV, wrap64(-7), 2, 0)) == -4

    def test_shifts_use_immediate(self):
        assert alu_result(Opcode.SHL, 1, 0, 5) == 32
        assert alu_result(Opcode.SHR, 32, 0, 3) == 4

    def test_comparisons(self):
        assert alu_result(Opcode.CMPLT, wrap64(-1), 0, 0) == 1
        assert alu_result(Opcode.CMPLT, 1, 0, 0) == 0
        assert alu_result(Opcode.CMPEQ, 5, 5, 0) == 1

    def test_wraparound(self):
        top = (1 << 64) - 1
        assert alu_result(Opcode.ADD, top, 1, 0) == 0

    def test_branch_conditions(self):
        assert branch_taken(Opcode.BEQ, 3, 3)
        assert not branch_taken(Opcode.BEQ, 3, 4)
        assert branch_taken(Opcode.BLT, wrap64(-5), 0)
        assert branch_taken(Opcode.BGE, 0, 0)
        assert branch_taken(Opcode.JMP, 0, 0)

    def test_branch_on_non_control_raises(self):
        with pytest.raises(TraceError):
            branch_taken(Opcode.ADD, 1, 2)

    @given(st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
    def test_signed_unsigned_roundtrip(self, value):
        assert wrap64(to_signed64(value)) == wrap64(value)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_add_sub_inverse(self, a, b):
        total = alu_result(Opcode.ADD, a, b, 0)
        assert alu_result(Opcode.SUB, total, b, 0) == a
