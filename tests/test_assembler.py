"""Tests for the two-pass assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa.opcodes import Opcode
from repro.workloads.assembler import CODE_BASE, assemble


class TestBasics:
    def test_simple_program(self):
        program = assemble("""
            li r1, 5
            add r2, r1, r1
            halt
        """)
        assert len(program) == 3
        assert program.instructions[0].opcode is Opcode.LI
        assert program.instructions[0].imm == 5
        assert program.instructions[1].srcs == (1, 1)

    def test_pcs_are_sequential(self):
        program = assemble("nop\nnop\nhalt")
        pcs = [inst.pc for inst in program.instructions]
        assert pcs == [CODE_BASE, CODE_BASE + 4, CODE_BASE + 8]

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("""
            ; full-line comment

            nop   ; trailing comment
            halt
        """)
        assert len(program) == 2

    def test_at_accessor(self):
        program = assemble("nop\nhalt")
        assert program.at(CODE_BASE).opcode is Opcode.NOP
        with pytest.raises(AssemblyError):
            program.at(CODE_BASE + 400)


class TestLabels:
    def test_forward_and_backward_references(self):
        program = assemble("""
            start:
                beq r1, r2, end
                jmp start
            end:
                halt
        """)
        beq, jmp, _ = program.instructions
        assert beq.target_pc == program.labels["end"]
        assert jmp.target_pc == program.labels["start"]

    def test_label_on_same_line_as_instruction(self):
        program = assemble("loop: jmp loop")
        assert program.labels["loop"] == CODE_BASE

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError, match="duplicate"):
            assemble("a:\nnop\na:\nhalt")

    def test_undefined_label_rejected(self):
        with pytest.raises(AssemblyError, match="undefined"):
            assemble("jmp nowhere")

    def test_bad_label_name_rejected(self):
        with pytest.raises(AssemblyError, match="bad label"):
            assemble("9lives:\nnop")


class TestOperandForms:
    def test_immediate_second_operand(self):
        program = assemble("add r1, r2, 42\nhalt")
        inst = program.instructions[0]
        assert inst.srcs == (2,)
        assert inst.imm == 42

    def test_register_second_operand(self):
        program = assemble("add r1, r2, r3\nhalt")
        assert program.instructions[0].srcs == (2, 3)

    def test_negative_and_hex_immediates(self):
        program = assemble("ld r1, r2, -8\nli r3, 0x10\nhalt")
        assert program.instructions[0].imm == -8
        assert program.instructions[1].imm == 16

    def test_store_operands(self):
        program = assemble("st r4, r5, 24\nhalt")
        inst = program.instructions[0]
        assert inst.srcs == (4, 5)
        assert inst.imm == 24

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError, match="expects"):
            assemble("add r1, r2")
        with pytest.raises(AssemblyError, match="expects"):
            assemble("ret r1")

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError, match="unknown mnemonic"):
            assemble("frobnicate r1, r2")

    def test_bad_immediate(self):
        with pytest.raises(AssemblyError):
            assemble("li r1, banana")
