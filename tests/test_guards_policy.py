"""Tests for fill-stall guards, the policy bundle and the Vcc controller."""

import pytest

from repro.circuits.frequency import ClockScheme
from repro.core.config import IrawConfig
from repro.core.controller import VccController
from repro.core.policy import GUARDED_BLOCKS, IrawPolicy
from repro.core.stall_guard import FillStallGuard
from repro.errors import ConfigError


class TestFillStallGuard:
    def test_blocks_during_window(self):
        guard = FillStallGuard("DL0")
        guard.configure(2)
        guard.arm(fill_cycle=10)
        assert guard.is_blocked(10)
        assert guard.is_blocked(12)
        assert not guard.is_blocked(13)

    def test_release_cycle(self):
        guard = FillStallGuard("DL0")
        guard.configure(2)
        guard.arm(10)
        assert guard.blocked_until(11) == 13

    def test_future_fills_do_not_block_now(self):
        guard = FillStallGuard("DL0")
        guard.configure(2)
        guard.arm(fill_cycle=100)
        assert not guard.is_blocked(50)
        assert guard.is_blocked(100)

    def test_overlapping_windows_take_latest(self):
        guard = FillStallGuard("UL1")
        guard.configure(3)
        guard.arm(10)
        guard.arm(12)
        assert guard.blocked_until(12) == 16

    def test_disabled_guard_never_blocks(self):
        guard = FillStallGuard("IL0")
        guard.configure(0)
        guard.arm(10)
        assert not guard.is_blocked(10)
        assert guard.fills == 0

    def test_negative_n_rejected(self):
        with pytest.raises(ConfigError):
            FillStallGuard("X").configure(-1)

    def test_windows_pruned(self):
        guard = FillStallGuard("DL0")
        guard.configure(1)
        for fill in range(0, 100, 10):
            guard.arm(fill)
        guard.is_blocked(1000)
        assert guard._windows == []


class TestIrawPolicy:
    def test_construction_wires_everything(self):
        policy = IrawPolicy(config=IrawConfig(stabilization_cycles=1))
        assert policy.active
        assert policy.scoreboard.stabilization_cycles == 1
        assert policy.iq_gate.enabled
        assert policy.stable.enabled
        assert set(policy.guards) == set(GUARDED_BLOCKS)
        assert all(g.enabled for g in policy.guards.values())

    def test_disabled_config(self):
        policy = IrawPolicy(config=IrawConfig.disabled())
        assert not policy.active
        assert not policy.iq_gate.enabled
        assert not policy.stable.enabled

    def test_selective_mechanisms(self):
        config = IrawConfig(stabilization_cycles=1, rf_enabled=False)
        policy = IrawPolicy(config=config)
        assert policy.scoreboard.stabilization_cycles == 0
        assert policy.iq_gate.enabled  # others still on

    def test_arm_fill_guards_routes_by_block(self):
        policy = IrawPolicy(config=IrawConfig(stabilization_cycles=1))
        policy.arm_fill_guards([("DL0", 50), ("UL1", 60), ("???", 70)])
        assert policy.guards["DL0"].is_blocked(50)
        assert policy.guards["UL1"].is_blocked(60)

    def test_flush_clears_transients(self):
        policy = IrawPolicy(config=IrawConfig(stabilization_cycles=1))
        policy.scoreboard.producer_issued(1, 3)
        policy.stable.store_committed(0x40, 1, 0)
        policy.flush()
        assert policy.scoreboard.is_idle(1)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            IrawConfig(stabilization_cycles=5, max_stabilization_cycles=2)
        with pytest.raises(ConfigError):
            IrawConfig(stabilization_cycles=-1)


class TestVccController:
    def test_resolve_iraw_point(self):
        controller = VccController()
        config = controller.resolve(500.0)
        assert config.iraw.stabilization_cycles == 1
        assert config.frequency_mhz > 0

    def test_resolve_high_vcc_disables(self):
        controller = VccController()
        config = controller.resolve(650.0)
        assert not config.iraw.active

    def test_switch_reprograms_policy(self):
        controller = VccController()
        policy = IrawPolicy(config=IrawConfig.disabled())
        config = controller.switch(policy, 500.0)
        assert policy.stabilization_cycles == config.iraw.stabilization_cycles
        assert policy.iq_gate.enabled
        controller.switch(policy, 700.0)
        assert not policy.active
        assert controller.switches == 2

    def test_baseline_scheme_controller(self):
        controller = VccController(scheme=ClockScheme.BASELINE)
        config = controller.resolve(500.0)
        assert not config.iraw.active
        iraw_controller = VccController(scheme=ClockScheme.IRAW)
        assert (config.frequency_mhz
                < iraw_controller.resolve(500.0).frequency_mhz)

    def test_overrides_forwarded(self):
        controller = VccController()
        config = controller.resolve(500.0, rf_enabled=False)
        assert not config.iraw.rf_enabled
