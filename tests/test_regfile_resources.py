"""Tests for the RF datapath model, bypass network and functional units."""

import pytest

from repro.errors import ConfigError
from repro.isa.opcodes import OpClass
from repro.pipeline.regfile import (
    BypassNetwork,
    CORRUPTION_MASK,
    RegisterFileModel,
)
from repro.pipeline.resources import FunctionalUnits, PipelineParams


class TestRegisterFileModel:
    def test_plain_read_write(self):
        rf = RegisterFileModel()
        rf.write(3, 42, cycle=10)
        assert rf.read(3, read_cycle=20, stabilization_cycles=1) == 42
        assert rf.violations == 0

    def test_read_inside_window_corrupts(self):
        rf = RegisterFileModel()
        rf.write(3, 42, cycle=10)
        value = rf.read(3, read_cycle=11, stabilization_cycles=1)
        assert value == 42 ^ CORRUPTION_MASK
        assert rf.violations == 1

    def test_read_during_write_cycle_corrupts(self):
        """Under IRAW the write is interrupted mid-cycle."""
        rf = RegisterFileModel()
        rf.write(3, 42, cycle=10)
        assert rf.read(3, 10, stabilization_cycles=1) != 42

    def test_boundary_read_is_clean(self):
        rf = RegisterFileModel()
        rf.write(3, 42, cycle=10)
        assert rf.read(3, 12, stabilization_cycles=1) == 42

    def test_baseline_same_cycle_read_is_legal(self):
        """N=0: write-before-read port discipline, no corruption."""
        rf = RegisterFileModel()
        rf.write(3, 42, cycle=10)
        assert rf.read(3, 10, stabilization_cycles=0) == 42
        assert rf.violations == 0

    def test_initial_values(self):
        rf = RegisterFileModel({5: 99})
        assert rf.read(5, 0, 0) == 99


class TestBypassNetwork:
    def test_forward_in_window(self):
        net = BypassNetwork(levels=1)
        net.publish(3, 42, completion_cycle=10)
        assert net.lookup(3, issue_cycle=10) == 42
        assert net.lookup(3, issue_cycle=11) is None

    def test_two_level_window(self):
        net = BypassNetwork(levels=2)
        net.publish(3, 42, completion_cycle=10)
        assert net.lookup(3, 10) == 42
        assert net.lookup(3, 11) == 42
        assert net.lookup(3, 12) is None

    def test_before_completion_no_forward(self):
        net = BypassNetwork(levels=1)
        net.publish(3, 42, completion_cycle=10)
        assert net.lookup(3, 9) is None

    def test_zero_levels(self):
        net = BypassNetwork(levels=0)
        net.publish(3, 42, 10)
        assert net.lookup(3, 10) is None

    def test_flush(self):
        net = BypassNetwork(levels=1)
        net.publish(3, 42, 10)
        net.flush()
        assert net.lookup(3, 10) is None


class TestFunctionalUnits:
    def make(self):
        return FunctionalUnits(PipelineParams()), PipelineParams()

    def test_two_alu_ops_per_cycle(self):
        units, _ = self.make()
        units.begin_cycle(0)
        assert units.can_accept(OpClass.INT_ALU)
        units.accept(OpClass.INT_ALU)
        assert units.can_accept(OpClass.INT_ALU)
        units.accept(OpClass.INT_ALU)
        assert not units.can_accept(OpClass.INT_ALU)

    def test_single_mul_per_cycle_but_pipelined(self):
        units, _ = self.make()
        units.begin_cycle(0)
        units.accept(OpClass.INT_MUL)
        assert not units.can_accept(OpClass.INT_MUL)
        units.begin_cycle(1)  # pipelined: next cycle is free
        assert units.can_accept(OpClass.INT_MUL)

    def test_divider_unpipelined(self):
        units, params = self.make()
        latency = params.latency_of(OpClass.INT_DIV)
        units.begin_cycle(0)
        units.accept(OpClass.INT_DIV)
        units.begin_cycle(5)
        assert not units.can_accept(OpClass.INT_DIV)
        assert not units.can_accept(OpClass.FP_DIV)  # shared unit
        units.begin_cycle(latency + 1)
        assert units.can_accept(OpClass.INT_DIV)

    def test_branches_share_alus(self):
        units, _ = self.make()
        units.begin_cycle(0)
        units.accept(OpClass.BRANCH)
        units.accept(OpClass.INT_ALU)
        assert not units.can_accept(OpClass.BRANCH)

    def test_nop_needs_no_unit(self):
        units, _ = self.make()
        units.begin_cycle(0)
        for _ in range(5):
            assert units.can_accept(OpClass.NOP)
            units.accept(OpClass.NOP)


class TestPipelineParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PipelineParams(fetch_width=0)
        with pytest.raises(ConfigError):
            PipelineParams(iq_size=0)

    def test_latency_override(self):
        from repro.isa.opcodes import DEFAULT_LATENCY
        latencies = dict(DEFAULT_LATENCY)
        latencies[OpClass.INT_MUL] = 7
        params = PipelineParams(latencies=latencies)
        assert params.latency_of(OpClass.INT_MUL) == 7
