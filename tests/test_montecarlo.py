"""Tests for the Monte-Carlo die-sampling subsystem.

Covers the sampling primitives (seeded, order-independent die RNG
streams; exact max-of-N inverse-CDF sampling), the streaming statistics,
the spec/TOML surface, the engine integration (an ``mc-die`` job is an
ordinary cacheable unit), and the headline acceptance property: a
64-die ``yield_curve`` campaign reproduces **bit-identically** through
the serial, pool and queue backends, and a warm-cache rerun simulates
nothing.
"""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.frequency import ClockScheme
from repro.engine import (
    Job,
    ParallelRunner,
    QueueBackend,
    ResultCache,
    job_key,
)
from repro.errors import ConfigError
from repro.experiments import Experiment, ExperimentSpec
from repro.montecarlo import (
    DiscreteDistribution,
    MonteCarloConfig,
    MonteCarloSpec,
    StreamingStats,
    evaluate_die_point,
    montecarlo_jobs,
    per_die_rows,
    sample_die,
    vccmin_rows,
    weighted_wilson_interval,
    wilson_interval,
    yield_curve_rows,
)
from repro.montecarlo.sampling import worst_cell_sigma

pytestmark = pytest.mark.engine


# ----------------------------------------------------------------------
# Sampling primitives
# ----------------------------------------------------------------------

class TestSampling:
    def test_sample_is_deterministic_and_per_die_independent(self):
        config = MonteCarloConfig(seed=7)
        first = sample_die(config, 3)
        again = sample_die(config, 3)
        assert first == again
        other = sample_die(config, 4)
        assert other != first
        reseeded = sample_die(MonteCarloConfig(seed=8), 3)
        assert reseeded != first

    def test_samples_do_not_depend_on_evaluation_order(self):
        config = MonteCarloConfig(seed=1)
        forward = [sample_die(config, die) for die in range(16)]
        backward = [sample_die(config, die) for die in reversed(range(16))]
        assert forward == list(reversed(backward))

    def test_worst_cell_sigma_grows_with_array_size(self):
        # Median worst cell of a big array beats a small array's.
        assert worst_cell_sigma(0.5, 4_000_000) \
            > worst_cell_sigma(0.5, 4_096) > worst_cell_sigma(0.5, 1)
        # The max of one cell is just that cell's quantile.
        assert worst_cell_sigma(0.5, 1) == pytest.approx(0.0, abs=1e-12)

    def test_worst_cell_sigma_is_in_a_physical_range(self):
        # E[max of ~5M Gaussians] sits near 5.1 sigma; the sampled
        # worst cells must live in that neighbourhood, not at 0 or 20.
        config = MonteCarloConfig(seed=0, die_sigma_mv=0.0)
        worst = [max(s for _, s in sample_die(config, die).worst_sigma)
                 for die in range(64)]
        assert 4.0 < statistics.mean(worst) < 6.5
        assert max(worst) < 9.0

    def test_effective_sigma_folds_die_offset(self):
        config = MonteCarloConfig(seed=0)
        sample = sample_die(config, 0)
        base = max(s for _, s in sample.worst_sigma)
        assert sample.effective_sigma(config.sigma_mv) == pytest.approx(
            base + sample.offset_mv / config.sigma_mv)

    def test_arrays_subset_restricts_sampling(self):
        config = MonteCarloConfig(seed=0, arrays=("RF", "IQ"))
        names = [name for name, _ in sample_die(config, 0).worst_sigma]
        assert names == ["IQ", "RF"]  # sorted by name

    def test_unknown_array_rejected(self):
        with pytest.raises(ConfigError, match="unknown SRAM array"):
            MonteCarloConfig(arrays=("L3",))

    @given(seed=st.integers(0, 2**32), die=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_rng_streams_are_pure_functions_of_seed_and_die(self, seed,
                                                           die):
        """The per-die stream depends on (seed, die) and nothing else —
        the invariant that makes worker count, backend and evaluation
        order irrelevant to the sampled physics."""
        config = MonteCarloConfig(seed=seed)
        assert sample_die(config, die) == sample_die(config, die)
        # Interleaving other dies must not perturb the stream.
        sample_die(config, die + 1)
        sample_die(config, 0)
        assert sample_die(config, die) == sample_die(config, die)


class TestDieEvaluation:
    def test_strong_die_meets_design_weak_die_does_not(self):
        config = MonteCarloConfig(seed=0, die_sigma_mv=0.0)
        # All-array within-die max sits near ~5 sigma < 6 design sigma,
        # so with no die-to-die offset every die makes the top bin.
        result = evaluate_die_point(config, 0, 450.0, ClockScheme.BASELINE)
        assert result.meets_design and result.functional
        assert result.slowdown <= 1.0 + 1e-9
        assert result.die_frequency_mhz >= result.design_frequency_mhz

    def test_slowdown_grows_as_vcc_drops(self):
        config = MonteCarloConfig(seed=0)
        weak = next(die for die in range(64)
                    if sample_die(config, die).effective_sigma(
                        config.sigma_mv) > config.design_sigma + 0.5)
        slowdowns = [
            evaluate_die_point(config, weak, vcc,
                               ClockScheme.BASELINE).slowdown
            for vcc in (650.0, 550.0, 450.0, 400.0)]
        assert slowdowns == sorted(slowdowns)
        assert slowdowns[-1] > slowdowns[0]

    def test_iraw_weak_die_needs_more_stabilization(self):
        config = MonteCarloConfig(seed=0)
        weak = next(die for die in range(256)
                    if sample_die(config, die).effective_sigma(
                        config.sigma_mv) > config.design_sigma + 1.0)
        result = evaluate_die_point(config, weak, 450.0, ClockScheme.IRAW)
        assert result.required_stabilization \
            >= result.design_stabilization >= 1

    def test_result_is_plain_picklable_data(self):
        import pickle

        result = evaluate_die_point(MonteCarloConfig(), 1, 500.0,
                                    ClockScheme.IRAW)
        assert pickle.loads(pickle.dumps(result)) == result


# ----------------------------------------------------------------------
# Streaming statistics
# ----------------------------------------------------------------------

class TestStreamingStats:
    def test_matches_batch_statistics(self):
        values = [3.0, 1.5, -2.0, 8.25, 0.125, 7.0]
        stats = StreamingStats()
        for value in values:
            stats.add(value)
        assert stats.count == len(values)
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.std == pytest.approx(statistics.pstdev(values))
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    def test_empty_reports_nan(self):
        columns = StreamingStats().as_dict("x_")
        assert all(math.isnan(value) for value in columns.values())

    def test_discrete_percentiles_are_exact(self):
        dist = DiscreteDistribution()
        for value, count in ((400.0, 7), (425.0, 2), (500.0, 1)):
            for _ in range(count):
                dist.add(value)
        assert dist.count == 10
        assert dist.percentile(0.0) == 400.0
        assert dist.percentile(50.0) == 400.0
        assert dist.percentile(80.0) == 425.0
        assert dist.percentile(95.0) == 500.0
        assert dist.percentile(100.0) == 500.0
        assert dist.minimum == 400.0 and dist.maximum == 500.0
        assert dist.mean == pytest.approx(415.0)

    def test_wilson_interval_brackets_the_proportion(self):
        low, high = wilson_interval(9, 10, 0.95)
        assert low < 0.9 < high
        assert 0.0 <= low and high <= 1.0
        # Degenerate yields stay informative (no 0-width intervals).
        low, high = wilson_interval(10, 10, 0.95)
        assert low < 1.0 and high == 1.0
        low, high = wilson_interval(0, 10, 0.95)
        assert low == pytest.approx(0.0, abs=1e-12) and high > 0.1
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_wilson_tightens_with_trials_and_confidence(self):
        narrow = wilson_interval(50, 100, 0.95)
        wide = wilson_interval(5, 10, 0.95)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]
        strict = wilson_interval(50, 100, 0.99)
        assert strict[0] < narrow[0] and strict[1] > narrow[1]

    def test_validation(self):
        with pytest.raises(ConfigError):
            wilson_interval(5, 3)
        with pytest.raises(ConfigError):
            wilson_interval(1, 2, confidence=1.0)
        with pytest.raises(ConfigError):
            DiscreteDistribution().percentile(101.0)


class TestStatsEdgeCases:
    """Boundary inputs the campaign reducers can legitimately produce."""

    def test_wilson_at_observed_zero_and_full_yield(self):
        """0/N and N/N campaigns: bounds stay in [0, 1], the observed
        endpoint is pinned exactly, and the far bound stays informative
        (a zero-failure campaign never claims certainty)."""
        for trials in (1, 16, 4096):
            low, high = wilson_interval(0, trials, 0.95)
            assert low == 0.0
            assert 0.0 < high < 1.0
            low, high = wilson_interval(trials, trials, 0.95)
            assert high == 1.0
            assert 0.0 < low < 1.0
            # Symmetry of the score interval around p -> 1 - p.
            zero = wilson_interval(0, trials, 0.95)
            full = wilson_interval(trials, trials, 0.95)
            assert full[0] == pytest.approx(1.0 - zero[1], abs=1e-15)

    def test_weighted_wilson_is_bit_identical_at_integer_ess(self):
        """The refactor onto the shared float core must not move the
        historical integer-path bounds by a single bit."""
        for successes, trials in ((0, 16), (9, 10), (16, 16), (1, 4096)):
            reference = wilson_interval(successes, trials, 0.95)
            weighted = weighted_wilson_interval(successes / trials,
                                                float(trials), 0.95)
            assert weighted == reference

    def test_percentile_of_a_single_observation(self):
        dist = DiscreteDistribution()
        dist.add(450.0)
        for p in (0.0, 25.0, 50.0, 99.9, 100.0):
            assert dist.percentile(p) == 450.0
        assert dist.minimum == dist.maximum == 450.0
        assert dist.std == 0.0

    def test_percentile_when_every_observation_is_equal(self):
        dist = DiscreteDistribution()
        for _ in range(10):
            dist.add(425.0)
        for p in (0.0, 10.0, 50.0, 90.0, 100.0):
            assert dist.percentile(p) == 425.0
        assert dist.mean == 425.0
        assert dist.std == 0.0

    def test_streaming_extend_with_an_empty_iterable(self):
        stats = StreamingStats()
        stats.extend([])
        assert stats.count == 0
        assert all(math.isnan(value)
                   for value in stats.as_dict("x_").values())
        stats.add(2.5)
        before = (stats.count, stats.mean, stats.std,
                  stats.minimum, stats.maximum)
        stats.extend(iter(()))  # and mid-stream: a pure no-op
        assert (stats.count, stats.mean, stats.std,
                stats.minimum, stats.maximum) == before


# ----------------------------------------------------------------------
# Spec surface
# ----------------------------------------------------------------------

class TestMonteCarloSpec:
    def test_round_trips_through_dict(self):
        spec = MonteCarloSpec(dies=32, seed=5, confidence=0.9,
                              design_sigma=5.0, arrays=("RF",))
        assert MonteCarloSpec.from_dict(spec.to_dict()) == spec

    def test_presentation_knobs_stay_out_of_the_job_key(self):
        base = MonteCarloSpec(dies=16, confidence=0.95)
        grown = MonteCarloSpec(dies=64, confidence=0.5)
        assert base.config() == grown.config()

    def test_validation(self):
        with pytest.raises(ConfigError, match="at least one die"):
            MonteCarloSpec(dies=0)
        with pytest.raises(ConfigError, match="confidence"):
            MonteCarloSpec(confidence=1.5)
        with pytest.raises(ConfigError, match="max_slowdown"):
            MonteCarloSpec(max_slowdown=0.5)
        with pytest.raises(ConfigError, match="unknown montecarlo"):
            MonteCarloSpec.from_dict({"die_count": 4})

    def test_experiment_spec_requires_mc_for_mc_artifacts(self):
        with pytest.raises(ConfigError, match="yield_curve"):
            ExperimentSpec(name="x", profiles=("kernel-like",),
                           vcc_mv=(500.0,), artifacts=("yield_curve",))

    def test_population_less_spec_allowed_with_montecarlo(self):
        spec = ExperimentSpec(name="mc", profiles=(), vcc_mv=(500.0,),
                              montecarlo=MonteCarloSpec(dies=2),
                              artifacts=("yield_curve",))
        assert spec.grid() == (500.0,)

    def test_toml_round_trip_preserves_plan_keys(self):
        spec = ExperimentSpec(
            name="mc-keys", profiles=(), vcc_mv=(550.0, 450.0),
            montecarlo=MonteCarloSpec(dies=6, seed=11, die_sigma_mv=8.0),
            artifacts=("yield_curve", "vccmin_dist"))
        via_toml = ExperimentSpec.from_toml(spec.to_toml())
        via_json = ExperimentSpec.from_json(spec.to_json())
        assert via_toml == spec and via_json == spec
        reference = Experiment(spec).plan_keys()
        assert Experiment(via_toml).plan_keys() == reference
        assert Experiment(via_json).plan_keys() == reference


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------

def small_campaign(dies=8, grid=(550.0, 450.0),
                   schemes=("baseline", "iraw")):
    mc = MonteCarloSpec(dies=dies, seed=2)
    jobs = montecarlo_jobs(mc, grid, schemes)
    return mc, list(grid), list(schemes), jobs


class TestEngineIntegration:
    def test_job_keys_are_unique_and_die_scoped(self):
        mc, grid, schemes, jobs = small_campaign()
        keys = [job_key(job) for job in jobs]
        assert len(set(keys)) == len(jobs)
        # Growing the campaign keeps every existing die's keys.
        bigger = montecarlo_jobs(MonteCarloSpec(dies=16, seed=2),
                                 grid, schemes)
        assert set(keys) <= {job_key(job) for job in bigger}

    def test_mc_die_jobs_are_atomic_units(self):
        from repro.engine import shard_jobs

        _, _, _, jobs = small_campaign()
        assert all(shard_jobs(job) is None for job in jobs)

    def test_runner_deduplicates_and_caches(self, tmp_path):
        _, _, _, jobs = small_campaign(dies=4, grid=(500.0,),
                                       schemes=("iraw",))
        runner = ParallelRunner(cache=ResultCache(root=tmp_path))
        first = runner.run(jobs + jobs)
        assert runner.stats.simulated == len(jobs)
        assert runner.stats.deduplicated == len(jobs)
        warm = ParallelRunner(cache=ResultCache(root=tmp_path))
        again = warm.run(jobs)
        assert warm.stats.simulated == 0
        assert again == first[:len(jobs)]

    def test_executor_validates_options(self):
        job = Job(kind="mc-die", vcc_mv=500.0, scheme="iraw")
        from repro.engine.executors import execute_job

        with pytest.raises(ConfigError, match="mc-die job needs"):
            execute_job(job)


class TestBackendEquivalence:
    """Acceptance: 64 dies bit-identical across serial, pool and queue."""

    GRID = (550.0, 450.0)
    SCHEMES = ("baseline", "iraw")
    DIES = 64

    def campaign_rows(self, runner):
        mc, grid, schemes, jobs = small_campaign(
            dies=self.DIES, grid=self.GRID, schemes=self.SCHEMES)
        results = runner.run(jobs, label="mc-equivalence")
        return (yield_curve_rows(results, grid, schemes, mc.dies,
                                 mc.confidence),
                vccmin_rows(results, grid, schemes, mc.dies),
                per_die_rows(results, grid, schemes, mc.dies))

    def test_serial_pool_and_queue_are_bit_identical(self, tmp_path):
        serial = self.campaign_rows(ParallelRunner(workers=1))
        pool = self.campaign_rows(ParallelRunner(workers=2))
        queue = self.campaign_rows(ParallelRunner(
            backend=QueueBackend(tmp_path / "spool", local_workers=2,
                                 lease_timeout=60.0, poll_interval=0.01)))
        assert serial == pool == queue  # bit-identical, not approx

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        cold = ParallelRunner(workers=1,
                              cache=ResultCache(root=tmp_path / "cache"))
        reference = self.campaign_rows(cold)
        assert cold.stats.simulated > 0
        warm = ParallelRunner(workers=1,
                              cache=ResultCache(root=tmp_path / "cache"))
        assert self.campaign_rows(warm) == reference
        assert warm.stats.simulated == 0

    @given(workers=st.sampled_from([1, 2, 3]),
           dies=st.integers(1, 12),
           seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_worker_count_never_changes_the_physics(self, workers, dies,
                                                    seed):
        """Hypothesis property: for arbitrary campaign shapes, the
        per-die results are identical whatever the worker count —
        the sampled RNG streams cannot observe the execution layout."""
        mc = MonteCarloSpec(dies=dies, seed=seed)
        jobs = montecarlo_jobs(mc, (500.0,), ("iraw",))
        serial = ParallelRunner(workers=1).run(jobs)
        parallel = ParallelRunner(workers=workers).run(jobs)
        assert serial == parallel


# ----------------------------------------------------------------------
# Experiment driver integration
# ----------------------------------------------------------------------

class TestExperimentIntegration:
    SPEC = ExperimentSpec(
        name="mc-driver", profiles=(), vcc_mv=(550.0, 450.0),
        montecarlo=MonteCarloSpec(dies=6, seed=4),
        artifacts=("yield_curve", "vccmin_dist"))

    def test_run_produces_per_die_and_aggregate_records(self):
        experiment = Experiment(self.SPEC)
        results = experiment.run()
        yields = results.filter(kind="mc-yield")
        dies = results.filter(kind="mc-die")
        assert len(yields) == 2 * 2          # grid x schemes
        assert len(dies) == 2 * 6            # schemes x dies
        row = yields[0]
        assert 0.0 <= row["functional_yield"] <= 1.0
        assert row["functional_low"] <= row["functional_yield"] \
            <= row["functional_high"]
        die_row = dies[0]
        assert die_row.variant.startswith("die")
        assert "worst_sigma" in die_row

    def test_artifacts_render_from_the_memo(self):
        experiment = Experiment(self.SPEC)
        experiment.run()
        simulated = experiment.stats.simulated
        curve = experiment.artifact("yield_curve")
        dist = experiment.artifact("vccmin_dist")
        assert experiment.stats.simulated == simulated  # pure lookup
        assert [row["vcc_mv"] for row in curve] == [550.0, 550.0,
                                                    450.0, 450.0]
        assert {row["scheme"] for row in dist} == {"baseline", "iraw"}

    def test_mc_jobs_planned_even_without_mc_artifacts(self):
        spec = ExperimentSpec(
            name="mixed", profiles=("kernel-like",), trace_length=300,
            vcc_mv=(500.0,), montecarlo=MonteCarloSpec(dies=2),
            artifacts=("overheads",))
        experiment = Experiment(spec)
        kinds = {job.kind for job in experiment.plan()}
        assert "mc-die" in kinds
        results = experiment.run()
        assert len(results.filter(kind="mc-yield")) == 2

    def test_montecarlo_artifact_without_section_fails_cleanly(self):
        spec = ExperimentSpec(name="plain", profiles=("kernel-like",),
                              trace_length=300, vcc_mv=(500.0,),
                              artifacts=("overheads",))
        experiment = Experiment(spec)
        with pytest.raises(ConfigError, match="montecarlo"):
            experiment.artifact("yield_curve")

    def test_censored_dies_export_valid_json(self, tmp_path):
        """Dies functional nowhere on the grid export vccmin null, not
        a bare NaN token that no strict JSON parser accepts."""
        import json

        spec = ExperimentSpec(
            name="censored", profiles=(), vcc_mv=(400.0,),
            montecarlo=MonteCarloSpec(dies=32, seed=0,
                                      max_slowdown=1.0),
            artifacts=("vccmin_dist",))
        results = Experiment(spec).run()
        rows = json.loads(results.to_json())     # must parse strictly
        censored = [row for row in rows if row.get("censored")]
        assert censored                          # the fixture censors
        assert all(row["vccmin_mv"] is None for row in censored)
        path = tmp_path / "mc.json"
        results.to_json(path)
        json.loads(path.read_text())

    def test_artifact_builds_share_one_resolved_batch(self):
        """yield_curve and vccmin_dist must not re-submit the mc batch
        after run() — one resolution, shared by records and builds."""
        experiment = Experiment(self.SPEC)
        experiment.run()
        submitted = experiment.stats.submitted
        experiment.artifact("yield_curve")
        experiment.artifact("vccmin_dist")
        assert experiment.stats.submitted == submitted

    def test_growing_dies_reuses_cached_samples(self, tmp_path):
        small = ExperimentSpec(
            name="grow", profiles=(), vcc_mv=(500.0,),
            montecarlo=MonteCarloSpec(dies=4, seed=9),
            artifacts=("yield_curve",))
        import dataclasses

        cold = ParallelRunner(cache=ResultCache(root=tmp_path))
        Experiment(small, runner=cold).run()
        grown = dataclasses.replace(
            small, montecarlo=dataclasses.replace(small.montecarlo,
                                                  dies=8))
        warm = ParallelRunner(cache=ResultCache(root=tmp_path))
        Experiment(grown, runner=warm).run()
        # Only the 4 new dies (x 1 grid point x 2 schemes) simulate.
        assert warm.stats.simulated == 4 * 2


class TestRoundFourRegressions:
    def test_array_order_does_not_change_campaign_identity(self):
        """['RF', 'DL0'] and ['DL0', 'RF'] are the same campaign: same
        samples, same canonical job keys, same cache."""
        a = MonteCarloSpec(dies=2, arrays=("RF", "DL0"))
        b = MonteCarloSpec(dies=2, arrays=("DL0", "RF"))
        assert a == b and a.config() == b.config()
        keys_a = [job_key(j) for j in montecarlo_jobs(a, (500.0,),
                                                      ("iraw",))]
        keys_b = [job_key(j) for j in montecarlo_jobs(b, (500.0,),
                                                      ("iraw",))]
        assert keys_a == keys_b

    def test_plan_counts_the_die_batch_once(self):
        """Both mc artifacts share one batch; the dry-run plan must
        size the campaign, not double it."""
        both = ExperimentSpec(
            name="both", profiles=(), vcc_mv=(500.0,),
            montecarlo=MonteCarloSpec(dies=4),
            artifacts=("yield_curve", "vccmin_dist"))
        one = dataclasses_replace(both, artifacts=("yield_curve",))
        assert len(Experiment(both).plan()) == len(Experiment(one).plan())
        assert len(Experiment(both).plan()) == 4 * 2  # dies x schemes

    def test_plan_evictions_never_writes_even_on_corrupt_index(self,
                                                               tmp_path):
        cache = ResultCache(root=tmp_path)      # unbounded writer
        cache.put("key", b"x" * 64)
        index = cache.version_dir / "index.json"
        index.write_text("{garbage")
        mtime_before = index.stat().st_mtime_ns
        fresh = ResultCache(root=tmp_path, max_bytes=1)
        assert fresh.plan_evictions()          # plan from the rebuild
        assert index.read_text() == "{garbage"  # still untouched
        assert index.stat().st_mtime_ns == mtime_before

    def test_censored_metric_membership(self):
        from repro.experiments import Record

        record = Record(kind="mc-die", scheme="iraw", vcc_mv=0.0,
                        metrics={"vccmin_mv": None, "die": 3})
        assert "vccmin_mv" in record
        assert record["vccmin_mv"] is None
        assert "absent_column" not in record


from dataclasses import replace as dataclasses_replace  # noqa: E402


class TestReductionShapeChecks:
    def test_mismatched_results_fail_loudly(self):
        mc, grid, schemes, jobs = small_campaign(dies=4, grid=(500.0,),
                                                 schemes=("iraw",))
        results = ParallelRunner().run(jobs)
        with pytest.raises(ConfigError, match="expected 8 die results"):
            yield_curve_rows(results, grid, schemes, dies=8)
        with pytest.raises(ConfigError, match="more results than"):
            list(yield_curve_rows(results, grid, schemes, dies=2))
