"""Tests for the IRAW-extended scoreboard (paper Figures 6-8).

The key test reproduces the paper's running example bit-for-bit: a 3-cycle
producer with one bypass level and N=1 initializes its destination's shift
register to ``0001011`` and blocks consumers exactly at cycle i+4.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scoreboard import Scoreboard
from repro.errors import ConfigError, PipelineError


def make_scoreboard(n=1, baseline_bits=5, bypass=1, max_n=2):
    sb = Scoreboard(num_registers=8, baseline_bits=baseline_bits,
                    bypass_levels=bypass, max_stabilization_cycles=max_n)
    sb.configure(n)
    return sb


def ready_timeline(sb: Scoreboard, reg: int, horizon: int) -> list[bool]:
    """is_ready(reg) at issue cycles i, i+1, ..., i+horizon-1."""
    timeline = []
    for _ in range(horizon):
        timeline.append(sb.is_ready(reg))
        sb.tick()
    return timeline


class TestPaperFigure8:
    def test_pattern_0001011(self):
        """The literal example of Section 4.1.2 / Figure 8."""
        sb = make_scoreboard(n=1, baseline_bits=5, bypass=1, max_n=2)
        sb.producer_issued(reg=3, latency=3)
        # Physical width is 5+1+2=8; the paper's 7-bit example maps to the
        # first 7 positions with an extra trailing '1'.
        assert sb.pattern_string(3).startswith("0001011")

    def test_readiness_windows_match_paper(self):
        """Ready at i+3 (bypass), blocked at i+4 (bubble), ready i+5+."""
        sb = make_scoreboard(n=1)
        sb.producer_issued(reg=3, latency=3)
        timeline = ready_timeline(sb, 3, 7)
        assert timeline == [False, False, False, True, False, True, True]

    def test_baseline_has_no_bubble(self):
        """N=0 reduces to the classic 00011 delayed-wakeup pattern."""
        sb = make_scoreboard(n=0)
        sb.producer_issued(reg=3, latency=3)
        assert sb.pattern_string(3).startswith("00011")
        timeline = ready_timeline(sb, 3, 6)
        assert timeline == [False, False, False, True, True, True]

    def test_single_cycle_producer(self):
        sb = make_scoreboard(n=1)
        sb.producer_issued(reg=1, latency=1)
        timeline = ready_timeline(sb, 1, 5)
        # i: not ready, i+1: bypass, i+2: bubble, i+3+: stable.
        assert timeline == [False, True, False, True, True]

    def test_n2_has_two_bubble_cycles(self):
        sb = make_scoreboard(n=2)
        sb.producer_issued(reg=1, latency=1)
        timeline = ready_timeline(sb, 1, 6)
        assert timeline == [False, True, False, False, True, True]


class TestLongLatencyPath:
    def test_long_producer_zeroes_register(self):
        sb = make_scoreboard(n=1)
        sb.producer_issued(reg=2, latency=20)  # beyond B-1
        timeline = ready_timeline(sb, 2, 10)
        assert not any(timeline)

    def test_completion_event_installs_tail(self):
        sb = make_scoreboard(n=1)
        sb.producer_issued(reg=2, latency=20)
        for _ in range(5):
            sb.tick()
        sb.long_latency_completed(2)
        timeline = ready_timeline(sb, 2, 4)
        # Ready now (result bus), bubble next cycle, then stable.
        assert timeline == [True, False, True, True]

    def test_completion_event_baseline(self):
        sb = make_scoreboard(n=0)
        sb.producer_issued(reg=2, latency=20)
        sb.long_latency_completed(2)
        assert all(ready_timeline(sb, 2, 4))


class TestBookkeeping:
    def test_idle_registers_always_ready(self):
        sb = make_scoreboard()
        assert sb.is_ready(0) and sb.is_idle(0)

    def test_flush_clears_inflight(self):
        sb = make_scoreboard()
        sb.producer_issued(reg=1, latency=3)
        sb.flush()
        assert sb.is_ready(1) and sb.is_idle(1)

    def test_reconfigure_bounds(self):
        sb = make_scoreboard(max_n=2)
        with pytest.raises(ConfigError):
            sb.configure(3)
        with pytest.raises(ConfigError):
            sb.configure(-1)

    def test_latency_must_be_positive(self):
        sb = make_scoreboard()
        with pytest.raises(PipelineError):
            sb.producer_issued(reg=1, latency=0)

    def test_max_encodable_latency(self):
        sb = make_scoreboard(baseline_bits=6)
        assert sb.max_encodable_latency == 5

    def test_sizing_validation(self):
        with pytest.raises(ConfigError):
            Scoreboard(num_registers=0)
        with pytest.raises(ConfigError):
            Scoreboard(baseline_bits=1)


@settings(max_examples=60, deadline=None)
@given(latency=st.integers(min_value=1, max_value=4),
       n=st.integers(min_value=0, max_value=3),
       bypass=st.integers(min_value=1, max_value=2))
def test_readiness_window_property(latency, n, bypass):
    """Property (paper Section 4.1.2): a consumer may issue at cycle c iff
    c is in the bypass window [i+L, i+L+bypass-1] or past the bubble
    (c >= i+L+bypass+N)."""
    sb = Scoreboard(num_registers=4, baseline_bits=6, bypass_levels=bypass,
                    max_stabilization_cycles=3)
    sb.configure(n)
    sb.producer_issued(reg=1, latency=latency)
    horizon = latency + bypass + n + 3
    timeline = ready_timeline(sb, 1, horizon)
    for offset, ready in enumerate(timeline):
        in_bypass = latency <= offset < latency + bypass
        past_bubble = offset >= latency + bypass + n
        assert ready == (in_bypass or past_bubble), (offset, timeline)
