"""Property-based tests over the circuit-level models (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits.energy import EnergyModel
from repro.circuits.frequency import ClockScheme, FrequencySolver

vcc_values = st.floats(min_value=400.0, max_value=700.0)


@pytest.fixture(scope="module")
def solver():
    return FrequencySolver()


class TestFrequencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(vcc=vcc_values)
    def test_scheme_ordering_everywhere(self, vcc):
        solver = FrequencySolver()
        logic = solver.operating_point(vcc, ClockScheme.LOGIC)
        iraw = solver.operating_point(vcc, ClockScheme.IRAW)
        base = solver.operating_point(vcc, ClockScheme.BASELINE)
        assert logic.frequency_mhz >= iraw.frequency_mhz - 1e-9
        assert iraw.frequency_mhz >= base.frequency_mhz - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(low=vcc_values, high=vcc_values)
    def test_frequency_monotone_in_vcc(self, low, high):
        if low > high:
            low, high = high, low
        solver = FrequencySolver()
        for scheme in ClockScheme:
            f_low = solver.operating_point(low, scheme).frequency_mhz
            f_high = solver.operating_point(high, scheme).frequency_mhz
            assert f_low <= f_high + 1e-6

    @settings(max_examples=30, deadline=None)
    @given(vcc=vcc_values)
    def test_stabilization_cycles_bounded(self, vcc):
        solver = FrequencySolver()
        point = solver.operating_point(vcc, ClockScheme.IRAW)
        assert 0 <= point.stabilization_cycles <= 2

    @settings(max_examples=30, deadline=None)
    @given(vcc=vcc_values, latency=st.floats(min_value=1.0, max_value=500.0))
    def test_memory_cycles_positive_and_monotone(self, vcc, latency):
        solver = FrequencySolver()
        point = solver.operating_point(vcc, ClockScheme.IRAW)
        cycles = point.memory_latency_cycles(latency)
        assert cycles >= 1
        assert point.memory_latency_cycles(latency * 2) >= cycles


class TestEnergyProperties:
    @settings(max_examples=40, deadline=None)
    @given(vcc=vcc_values, time_s=st.floats(min_value=1e-6, max_value=100.0))
    def test_energy_components_positive(self, vcc, time_s):
        model = EnergyModel()
        breakdown = model.task_energy(vcc, time_s)
        assert breakdown.dynamic_j > 0
        assert breakdown.leakage_j > 0
        assert 0 < breakdown.leakage_share < 1

    @settings(max_examples=40, deadline=None)
    @given(vcc=vcc_values,
           base_time=st.floats(min_value=0.1, max_value=10.0),
           gain=st.floats(min_value=1.01, max_value=3.0))
    def test_faster_is_never_worse(self, vcc, base_time, gain):
        """At equal Vcc, finishing sooner can only reduce energy and EDP
        (dynamic unchanged, leakage scales with time, +1% overhead)."""
        model = EnergyModel()
        row = model.relative_metrics(vcc, base_time, base_time / gain)
        assert row["delay_ratio"] < 1.0
        assert row["edp_ratio"] < row["energy_ratio"]
        if gain > 1.1:  # +1% dynamic overhead amortized by leakage savings
            assert row["edp_ratio"] < 1.0

    @settings(max_examples=40, deadline=None)
    @given(vcc=vcc_values)
    def test_leakage_power_monotone_downward(self, vcc):
        """Leakage current growth dominates the Vcc factor below 600 mV."""
        model = EnergyModel()
        if vcc <= 575.0:
            assert (model.leakage_power_w(vcc)
                    > model.leakage_power_w(vcc + 25.0))
