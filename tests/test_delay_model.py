"""Tests for the calibrated delay curves (Figure 1 reproduction)."""

import pytest

from repro.circuits.constants import default_delay_model
from repro.circuits.ekv import voltage_grid


@pytest.fixture(scope="module")
def model():
    return default_delay_model()


class TestNormalization:
    def test_logic_phase_is_one_at_700(self, model):
        assert model.logic(700.0) == pytest.approx(1.0)

    def test_logic_grows_modestly(self, model):
        """The paper: 'most of the delays grow almost linearly'."""
        assert 2.0 < model.logic(400.0) < 6.0


class TestFigure1Shape:
    def test_write_crossover_near_525(self, model):
        """Bitcell-only write crosses 12 FO4 between 500 and 550 mV."""
        assert model.write(550.0) < model.logic(550.0) * 1.1
        assert model.write(500.0) > model.logic(500.0)

    def test_write_with_wordline_crossover_near_600(self, model):
        ratio_625 = model.write_with_wordline(625.0) / model.logic(625.0)
        ratio_575 = model.write_with_wordline(575.0) / model.logic(575.0)
        assert ratio_625 < 1.05
        assert ratio_575 > 1.0

    def test_read_stays_below_logic(self, model):
        """8-T read ports keep read+WL under the 12 FO4 chain (Sec 2.1)."""
        for vcc in voltage_grid(25.0):
            assert model.read_with_wordline(vcc) < model.logic(vcc)

    def test_write_grows_exponentially(self, model):
        """Write delay growth accelerates as Vcc drops (Figure 1)."""
        g_high = model.write(550.0) / model.write(600.0)
        g_low = model.write(450.0) / model.write(500.0)
        assert g_low > g_high > 1.0

    def test_wordline_tracks_logic(self, model):
        """WL activation 'slope resembles that of the 12 FO4 chain'."""
        for vcc in (700.0, 550.0, 400.0):
            assert (model.wordline(vcc) / model.logic(vcc)
                    == pytest.approx(model.wordline_fraction))

    def test_figure1_row_contains_all_series(self, model):
        row = model.figure1_row(500.0)
        assert set(row) == {"vcc_mv", "logic_12fo4", "bitcell_write",
                            "bitcell_read", "write_plus_wordline",
                            "read_plus_wordline"}
        assert row["write_plus_wordline"] > row["bitcell_write"]


class TestPaperFrequencyAnchors:
    def test_550mv_frequency_fraction(self, model):
        """Paper: baseline frequency drops to ~77% at 550 mV."""
        fraction = model.logic(550.0) / model.write_with_wordline(550.0)
        assert fraction == pytest.approx(0.77, abs=0.06)

    def test_450mv_frequency_fraction(self, model):
        """Paper: baseline frequency drops to ~24% at 450 mV."""
        fraction = model.logic(450.0) / model.write_with_wordline(450.0)
        assert fraction == pytest.approx(0.24, abs=0.04)

    def test_500mv_cycle_roughly_doubles(self, model):
        ratio = model.write_with_wordline(500.0) / model.logic(500.0)
        assert 1.7 < ratio < 2.3


class TestStabilization:
    def test_completed_write_needs_no_stabilization(self, model):
        full = model.write(500.0)
        assert model.stabilization_time(500.0, full) == 0.0
        assert model.stabilization_time(500.0, full * 2) == 0.0

    def test_interrupted_write_needs_stabilization(self, model):
        partial = model.flip(500.0)
        remaining = model.stabilization_time(500.0, partial)
        assert remaining > 0
        # Unassisted completion is slower than the assisted write would be.
        assert remaining > (model.write(500.0) - partial)

    def test_flip_below_full_write(self, model):
        for vcc in voltage_grid(25.0):
            assert model.flip(vcc) < model.write(vcc)
