"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out
        assert repro.__version__ == "1.6.0"


class TestRunSpec:
    @staticmethod
    def write_spec(tmp_path, **overrides):
        from repro.experiments import ExperimentSpec

        defaults = dict(name="cli-spec", profiles=("kernel-like",),
                        trace_length=400, vcc_mv=(500.0,),
                        artifacts=("table1", "fig11b"))
        defaults.update(overrides)
        path = tmp_path / "spec.toml"
        ExperimentSpec(**defaults).save(path)
        return path

    def test_run_renders_spec_artifacts(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Figure 11(b)" in out
        assert "trace shards simulated" in out

    def test_run_artifact_selection_and_exports(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        csv_path = tmp_path / "records.csv"
        json_path = tmp_path / "records.json"
        assert main(["run", str(path), "--no-cache",
                     "--artifact", "fig11b",
                     "--export-csv", str(csv_path),
                     "--export-json", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 11(b)" in out and "Table 1" not in out
        assert csv_path.read_text().startswith("kind,scheme,vcc_mv")
        import json as json_module

        rows = json_module.loads(json_path.read_text())
        assert {row["scheme"] for row in rows} == {"baseline", "iraw"}

    def test_dry_run_simulates_nothing(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "jobs:" in out and "artifacts:   table1, fig11b" in out
        assert "simulated" not in out

    def test_dry_run_json_emits_the_plan_summary(self, tmp_path, capsys):
        """--dry-run --json prints the same machine-readable plan the
        service's dry_run endpoint returns."""
        import json as json_module

        path = self.write_spec(tmp_path)
        assert main(["run", str(path), "--no-cache",
                     "--dry-run", "--json"]) == 0
        summary = json_module.loads(capsys.readouterr().out)
        assert summary["name"] == "cli-spec"
        assert summary["artifacts"] == ["table1", "fig11b"]
        assert summary["planned_jobs"] == len(summary["jobs"]) > 0
        assert summary["unique_jobs"] <= summary["planned_jobs"]
        first = summary["jobs"][0]
        assert {"kind", "key", "label", "origin", "scheme",
                "vcc_mv"} <= set(first)
        assert first["origin"].startswith(("population[", "profile:",
                                           "riscv:", "model"))

    def test_json_without_dry_run_exits_2(self, tmp_path, capsys):
        path = self.write_spec(tmp_path)
        assert main(["run", str(path), "--json"]) == 2
        assert "--json needs --dry-run" in capsys.readouterr().err

    def test_dry_run_lists_trace_origins(self, tmp_path, capsys):
        """--dry-run names every planned trace and where it comes from:
        synthetic profile or riscv program path."""
        import rv32i_programs
        from repro.experiments import RiscvProgramRef

        binary = tmp_path / "loop.bin"
        binary.write_bytes(rv32i_programs.build_loop())
        path = self.write_spec(
            tmp_path, seeds_per_profile=2,
            riscv=(RiscvProgramRef("loop", str(binary)),))
        assert main(["run", str(path), "--no-cache", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "+ 1 riscv program" in out
        assert "kernel-like/seed0  (synthetic profile 'kernel-like')" in out
        assert "kernel-like/seed1  (synthetic profile 'kernel-like')" in out
        assert f"loop  (riscv program {binary})" in out

    def test_bad_spec_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text('artifacts = ["table2"]\n')
        assert main(["run", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "none.toml")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_example_specs_load(self, capsys):
        """The checked-in example spec files stay valid (dry-run only)."""
        assert main(["run", "examples/table1.toml", "--dry-run"]) == 0
        assert main(["run", "examples/lowvcc_campaign.toml",
                     "--dry-run"]) == 0
        assert main(["run", "examples/yield_campaign.toml",
                     "--dry-run"]) == 0
        assert main(["run", "examples/rv32i_campaign.toml",
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "experiment:  table1" in out
        assert "experiment:  lowvcc-campaign" in out
        assert "experiment:  yield-campaign" in out
        assert "montecarlo:" in out
        assert "experiment:  rv32i-campaign" in out
        assert "+ 4 riscv programs" in out
        assert "(riscv program" in out


class TestMonteCarloCli:
    @staticmethod
    def write_mc_spec(tmp_path, dies=4):
        from repro.experiments import ExperimentSpec
        from repro.montecarlo import MonteCarloSpec

        path = tmp_path / "mc.toml"
        ExperimentSpec(name="cli-mc-spec", profiles=(),
                       vcc_mv=(500.0,),
                       montecarlo=MonteCarloSpec(dies=dies, seed=1),
                       artifacts=("yield_curve", "vccmin_dist"),
                       ).save(path)
        return path

    def test_mc_renders_yield_and_vccmin(self, capsys):
        assert main(["mc", "--samples", "4", "--vcc", "500",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Yield vs Vcc" in out
        assert "Vccmin distribution" in out
        assert "functional_yield" in out

    def test_mc_export_and_validation(self, tmp_path, capsys):
        csv_path = tmp_path / "mc.csv"
        assert main(["mc", "--samples", "3", "--vcc", "500", "450",
                     "--no-cache", "--export-csv", str(csv_path)]) == 0
        assert csv_path.read_text().startswith("kind,scheme,vcc_mv")
        capsys.readouterr()
        assert main(["mc", "--samples", "0"]) == 2
        assert "--samples" in capsys.readouterr().err
        assert main(["mc", "--confidence", "2.0"]) == 2
        assert "--confidence" in capsys.readouterr().err

    def test_run_samples_override(self, tmp_path, capsys):
        path = self.write_mc_spec(tmp_path, dies=16)
        assert main(["run", str(path), "--dry-run", "--samples", "2",
                     "--confidence", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "montecarlo:  2 dies (seed 1, 0.5 confidence)" in out

    def test_run_samples_without_mc_section_exits_2(self, tmp_path,
                                                    capsys):
        from repro.experiments import ExperimentSpec

        path = tmp_path / "plain.toml"
        ExperimentSpec(name="plain", profiles=("kernel-like",),
                       trace_length=400, vcc_mv=(500.0,),
                       artifacts=()).save(path)
        assert main(["run", str(path), "--samples", "4"]) == 2
        assert "[montecarlo]" in capsys.readouterr().err


class TestCachePruneDryRun:
    @staticmethod
    def seeded_cache(tmp_path, monkeypatch, max_bytes):
        from repro.engine import ResultCache

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(max_bytes))
        cache = ResultCache(root=tmp_path)  # unbounded writer
        for index in range(4):
            cache.put(f"key{index}", b"x" * 64)
        return cache

    def test_dry_run_reports_without_deleting(self, tmp_path,
                                              monkeypatch, capsys):
        cache = self.seeded_cache(tmp_path, monkeypatch, max_bytes=150)
        before = cache.entry_count()
        assert before == 4
        assert main(["cache", "--prune", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would evict" in out
        assert cache.entry_count() == before          # nothing deleted
        # The reported plan matches what a real prune then deletes.
        assert main(["cache", "--prune"]) == 0
        pruned = capsys.readouterr().out
        assert "evicted" in pruned
        assert cache.entry_count() < before

    def test_dry_run_reports_stale_versions(self, tmp_path, monkeypatch,
                                            capsys):
        self.seeded_cache(tmp_path, monkeypatch, max_bytes=10**6)
        stale = tmp_path / "v0-0123456789abcdef"
        stale.mkdir()
        (stale / "old.pkl").write_bytes(b"stale")
        assert main(["cache", "--prune", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "would prune stale version v0-0123456789abcdef" in out
        assert stale.exists()                         # untouched

    def test_dry_run_requires_prune(self, capsys):
        assert main(["cache", "--dry-run"]) == 2
        assert "--dry-run" in capsys.readouterr().err
        assert main(["cache", "--prune", "--clear", "--dry-run"]) == 2


class TestQueueCommand:
    def test_queue_reports_spool_state(self, tmp_path, capsys):
        assert main(["queue", "--queue", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "spool root:" in out and "pending:" in out
        assert "stale versions: 0" in out

    def test_queue_json_reports_per_version_depth_and_age(self, tmp_path,
                                                          capsys):
        import json as json_module
        import time

        from repro.engine.cache import version_tag

        pending = tmp_path / version_tag() / "pending"
        pending.mkdir(parents=True)
        (pending / "a.job").write_bytes(b"x")
        old = time.time() - 30.0
        import os

        os.utime(pending / "a.job", (old, old))
        stale = tmp_path / "v1-deadbeef00000000" / "done"
        stale.mkdir(parents=True)
        (stale / "r.pkl").write_bytes(b"x")
        assert main(["queue", "--queue", str(tmp_path), "--json"]) == 0
        status = json_module.loads(capsys.readouterr().out)
        assert status["root"] == str(tmp_path)
        assert status["current_version"] == version_tag()
        by_version = {entry["version"]: entry
                      for entry in status["versions"]}
        current = by_version[version_tag()]
        assert current["current"] is True
        assert current["pending"] == 1
        assert current["oldest_pending_age_s"] >= 25.0
        assert by_version["v1-deadbeef00000000"]["done"] == 1
        assert by_version["v1-deadbeef00000000"]["current"] is False

    def test_queue_human_output_names_oldest_pending_age(self, tmp_path,
                                                         capsys):
        from repro.engine.cache import version_tag

        pending = tmp_path / version_tag() / "pending"
        pending.mkdir(parents=True)
        (pending / "a.job").write_bytes(b"x")
        assert main(["queue", "--queue", str(tmp_path)]) == 0
        assert "oldest pending:" in capsys.readouterr().out

    def test_queue_gc_removes_stale_versions(self, tmp_path, capsys):
        from repro.engine.cache import version_tag

        stale = tmp_path / "v1-deadbeef00000000" / "pending"
        stale.mkdir(parents=True)
        (stale / "a.job").write_bytes(b"x")
        (stale / "b.job").write_bytes(b"x")
        current = tmp_path / version_tag() / "pending"
        current.mkdir(parents=True)
        (current / "keep.job").write_bytes(b"x")
        assert main(["queue", "--queue", str(tmp_path), "--gc"]) == 0
        out = capsys.readouterr().out
        assert "v1-deadbeef00000000 (2 file(s))" in out
        assert "garbage-collected 1 stale spool version(s)" in out
        assert not (tmp_path / "v1-deadbeef00000000").exists()
        assert (current / "keep.job").exists()  # current version untouched

    def test_worker_gc_shares_the_collector(self, tmp_path, capsys):
        stale = tmp_path / "v0-cafe000000000000"
        stale.mkdir()
        (stale / "x.pkl").write_bytes(b"x")
        assert main(["worker", "--queue", str(tmp_path), "--gc"]) == 0
        out = capsys.readouterr().out
        assert "garbage-collected 1 stale spool version(s)" in out
        assert not stale.exists()

    def test_queue_without_root_exits_2(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
        assert main(["queue"]) == 2
        assert "spool directory" in capsys.readouterr().err

    def test_gc_never_touches_non_version_directories(self, tmp_path,
                                                      capsys):
        """Only exact version-tag names are ours to delete: an
        operator's venv/ (or any v*-named dir) beside the spool must
        survive a --gc."""
        for name in ("venv", "vendor", "v1-short", "v1-NOTHEXFINGERPRN",
                     "vault-2026"):
            bystander = tmp_path / name
            bystander.mkdir()
            (bystander / "precious.txt").write_text("keep me")
        stale = tmp_path / "v7-00000000deadbeef"
        stale.mkdir()
        (stale / "x.job").write_bytes(b"x")
        assert main(["queue", "--queue", str(tmp_path), "--gc"]) == 0
        out = capsys.readouterr().out
        assert "garbage-collected 1 stale spool version(s)" in out
        assert not stale.exists()
        for name in ("venv", "vendor", "v1-short", "v1-NOTHEXFINGERPRN",
                     "vault-2026"):
            assert (tmp_path / name / "precious.txt").exists()

    def test_queue_status_is_read_only(self, tmp_path, capsys):
        """Inspecting a spool must not create the spool tree, and a
        missing root is a clean error, not a freshly created one."""
        missing = tmp_path / "typo"
        assert main(["queue", "--queue", str(missing)]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()
        empty = tmp_path / "real"
        empty.mkdir()
        assert main(["queue", "--queue", str(empty)]) == 0
        out = capsys.readouterr().out
        assert "no spool written yet" in out
        assert list(empty.iterdir()) == []  # nothing created


class TestFigures:
    def test_circuit_figures(self, capsys):
        assert main(["figures", "--artifact", "circuit", "--step", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 11(a)" in out

    def test_single_artifact(self, capsys):
        assert main(["figures", "--artifact", "fig1", "--step", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 11" not in out


class TestSimulate:
    def test_kernel_run(self, capsys):
        code = main(["simulate", "--kernel", "fib", "--size", "12",
                     "--vcc", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC:" in out
        assert "golden-value mismatches: 0" in out
        assert "violations:   0" in out

    def test_profile_run(self, capsys):
        code = main(["simulate", "--profile", "kernel-like",
                     "--length", "1500", "--vcc", "450", "--cold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "450 mV" in out

    def test_baseline_scheme(self, capsys):
        code = main(["simulate", "--kernel", "dot", "--size", "8",
                     "--scheme", "baseline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N=0" in out


class TestTraceCommand:
    def test_generate_and_rerun(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["trace", "--profile", "office-like",
                     "--length", "600", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["simulate", "--trace-file", str(out_file),
                     "--vcc", "500"]) == 0
        out = capsys.readouterr().out
        assert "600 instructions" in out


class TestInfoCommands:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "pointer_chase" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "Calibration anchors" in out
        assert "crossover" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--vcc", "500", "--length", "1200"]) == 0
        out = capsys.readouterr().out
        assert "frequency_gain" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBackendSelection:
    def test_compare_with_explicit_serial_backend(self, capsys):
        assert main(["compare", "--vcc", "500", "--length", "1200",
                     "--backend", "serial", "--no-cache"]) == 0
        assert "frequency_gain" in capsys.readouterr().out

    def test_compare_through_queue_backend(self, tmp_path, capsys):
        """The full CLI wire path: spool, detached-style worker, collect."""
        import threading

        from repro.engine import SpoolBroker, run_worker_loop

        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker_loop,
            kwargs=dict(broker=SpoolBroker(tmp_path), stop=stop,
                        poll_interval=0.02),
            daemon=True)
        worker.start()
        try:
            assert main(["compare", "--vcc", "500", "--length", "1200",
                         "--backend", "queue", "--queue", str(tmp_path),
                         "--no-cache"]) == 0
        finally:
            stop.set()
            worker.join()
        assert "frequency_gain" in capsys.readouterr().out


class TestMcArgumentValidation:
    def test_bad_step_and_vcc_exit_2(self, capsys):
        from repro.cli import main

        assert main(["mc", "--step", "0"]) == 2
        assert "--step" in capsys.readouterr().err
        assert main(["mc", "--step", "-5"]) == 2
        capsys.readouterr()
        assert main(["mc", "--vcc", "300"]) == 2
        assert "modeled" in capsys.readouterr().err
        assert main(["mc", "--vcc", "800", "500"]) == 2

    def test_duplicate_vcc_levels_deduped(self, capsys):
        from repro.cli import main

        assert main(["mc", "--samples", "2", "--vcc", "500", "500",
                     "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert out.count("500    | baseline") == 1
