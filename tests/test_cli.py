"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestFigures:
    def test_circuit_figures(self, capsys):
        assert main(["figures", "--artifact", "circuit", "--step", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 11(a)" in out

    def test_single_artifact(self, capsys):
        assert main(["figures", "--artifact", "fig1", "--step", "100"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "Figure 11" not in out


class TestSimulate:
    def test_kernel_run(self, capsys):
        code = main(["simulate", "--kernel", "fib", "--size", "12",
                     "--vcc", "500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "IPC:" in out
        assert "golden-value mismatches: 0" in out
        assert "violations:   0" in out

    def test_profile_run(self, capsys):
        code = main(["simulate", "--profile", "kernel-like",
                     "--length", "1500", "--vcc", "450", "--cold"])
        assert code == 0
        out = capsys.readouterr().out
        assert "450 mV" in out

    def test_baseline_scheme(self, capsys):
        code = main(["simulate", "--kernel", "dot", "--size", "8",
                     "--scheme", "baseline"])
        assert code == 0
        out = capsys.readouterr().out
        assert "N=0" in out


class TestTraceCommand:
    def test_generate_and_rerun(self, tmp_path, capsys):
        out_file = tmp_path / "t.jsonl"
        assert main(["trace", "--profile", "office-like",
                     "--length", "600", "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["simulate", "--trace-file", str(out_file),
                     "--vcc", "500"]) == 0
        out = capsys.readouterr().out
        assert "600 instructions" in out


class TestInfoCommands:
    def test_kernels_listing(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert "matmul" in out and "pointer_chase" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "Calibration anchors" in out
        assert "crossover" in out

    def test_compare_small(self, capsys):
        assert main(["compare", "--vcc", "500", "--length", "1200"]) == 0
        out = capsys.readouterr().out
        assert "frequency_gain" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestBackendSelection:
    def test_compare_with_explicit_serial_backend(self, capsys):
        assert main(["compare", "--vcc", "500", "--length", "1200",
                     "--backend", "serial", "--no-cache"]) == 0
        assert "frequency_gain" in capsys.readouterr().out

    def test_compare_through_queue_backend(self, tmp_path, capsys):
        """The full CLI wire path: spool, detached-style worker, collect."""
        import threading

        from repro.engine import SpoolBroker, run_worker_loop

        stop = threading.Event()
        worker = threading.Thread(
            target=run_worker_loop,
            kwargs=dict(broker=SpoolBroker(tmp_path), stop=stop,
                        poll_interval=0.02),
            daemon=True)
        worker.start()
        try:
            assert main(["compare", "--vcc", "500", "--length", "1200",
                         "--backend", "queue", "--queue", str(tmp_path),
                         "--no-cache"]) == 0
        finally:
            stop.set()
            worker.join()
        assert "frequency_gain" in capsys.readouterr().out
