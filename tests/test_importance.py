"""Cross-validation and property suite for deep-tail importance sampling.

The estimator is only as trustworthy as its contracts, so each one is
locked independently:

* **exact weights** — the per-die log weight is the exact Gaussian
  likelihood ratio of the nominal die-offset density against the
  mean-shifted proposal, for arbitrary shifts (hypothesis property);
* **shift-zero degeneracy** — ``shift_sigma = 0`` is bit-identical to
  plain Monte-Carlo on both the scalar per-die and the vectorized
  ``mc-block`` paths, down to the weighted reducer columns;
* **cross-validation** — in the 3-4 sigma region where brute force
  still converges, the shifted estimator must agree with it (overlapping
  confidence intervals and a two-estimator z-test);
* **ESS diagnostics** — the Kish effective sample size is invariant
  under block partitioning and collapses trigger the warning;
* **deep-tail acceptance** — a 100k-die shifted campaign resolves a
  failure probability at or below 1e-7 with ESS >= 1000, which brute
  force would need ~1e9 dies to see.
"""

import math
from statistics import NormalDist

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.frequency import ClockScheme
from repro.engine.jobs import job_key
from repro.errors import ConfigError
from repro.montecarlo import (
    EffectiveSampleSizeWarning,
    ImportanceSpec,
    MonteCarloSpec,
    deep_tail_rows,
    montecarlo_jobs,
    shifted_offset,
    yield_curve_rows,
)
from repro.montecarlo.importance import AUTO_MAX_LAMBDA
from repro.montecarlo.sampling import (
    DieBlock,
    MonteCarloConfig,
    evaluate_block,
    evaluate_die_point,
    sample_die,
)
from repro.montecarlo.stats import (
    StreamingStats,
    WeightedIndicator,
    WeightedStats,
    weighted_wilson_interval,
    wilson_interval,
)

#: The cross-validation point: deep enough that IRAW failures are a
#: genuine tail event, shallow enough that a 4000-die brute-force
#: campaign still observes dozens of them (p ~ 1.3e-2 at 500 mV).
XVAL_VCC = 500.0
XVAL_DIES = 4000

#: The deep-tail acceptance point (see TestDeepTailAcceptance).
DEEP_VCC = 565.0
DEEP_DIES = 100_000
DEEP_SHIFT = 2.0


def block_results(config, dies, vcc, scheme, block=None):
    """Campaign results for one (vcc, scheme) point, in plan order."""
    block = block or dies
    results = []
    for start in range(0, dies, block):
        count = min(block, dies - start)
        results.append(evaluate_block(config, start, count, vcc, scheme))
    return results


def failure_indicator(results) -> WeightedIndicator:
    """Fold functional-failure mass exactly as the reducers do."""
    indicator = WeightedIndicator()
    for result in results:
        for is_functional, log_weight in zip(result.functional.tolist(),
                                             result.log_weight.tolist()):
            indicator.add(not is_functional, math.exp(log_weight))
    return indicator


class TestExactWeights:
    """The log weight is the exact Gaussian likelihood ratio."""

    @given(shift=st.floats(1e-3, 3.0), z=st.floats(-4.0, 4.0),
           sigma=st.floats(5.0, 15.0), die_sigma=st.floats(5.0, 20.0))
    @settings(max_examples=200, deadline=None)
    def test_weight_is_the_exact_likelihood_ratio(self, shift, z, sigma,
                                                  die_sigma):
        """For arbitrary shifts, ``exp(log_weight)`` equals the density
        ratio nominal/proposal evaluated at the reported offset."""
        config = MonteCarloConfig(shift_sigma=shift, sigma_mv=sigma,
                                  die_sigma_mv=die_sigma)
        offset = z * die_sigma
        reported, log_weight = shifted_offset(offset, config)
        assert reported == offset + shift * sigma
        nominal = NormalDist(0.0, die_sigma)
        proposal = NormalDist(shift * sigma, die_sigma)
        expected = nominal.pdf(reported) / proposal.pdf(reported)
        assert math.isclose(math.exp(log_weight), expected, rel_tol=1e-9)

    @given(offset=st.floats(-100.0, 100.0),
           die_sigma=st.floats(0.5, 30.0))
    @settings(max_examples=100, deadline=None)
    def test_zero_shift_is_an_exact_identity(self, offset, die_sigma):
        config = MonteCarloConfig(die_sigma_mv=die_sigma)
        reported, log_weight = shifted_offset(offset, config)
        assert reported == offset          # same object-level float
        assert log_weight == 0.0

    def test_shift_without_die_variation_is_rejected(self):
        """A zero-sigma campaign has no Gaussian to shift: the config
        must refuse rather than silently sample the nominal population
        with unit weights labelled as a shifted proposal."""
        with pytest.raises(ConfigError):
            MonteCarloConfig(shift_sigma=1.0, die_sigma_mv=0.0)


class TestShiftZeroDegeneracy:
    """``shift_sigma = 0`` degenerates bit-identically to brute force."""

    def test_scalar_and_block_paths_match_bitwise(self):
        for shift in (0.0, 1.5):
            config = MonteCarloConfig(seed=3, shift_sigma=shift)
            sample = DieBlock(config, 0, 32).build()
            for die in range(32):
                scalar = sample_die(config, die)
                assert scalar.effective_sigma(config.sigma_mv) \
                    == sample.effective[die]
                assert scalar.log_weight == sample.log_weight[die]

    def test_zero_shift_weights_are_exactly_zero(self):
        config = MonteCarloConfig(seed=1)
        sample = DieBlock(config, 0, 64).build()
        assert sample.log_weight.tolist() == [0.0] * 64
        result = evaluate_die_point(config, 5, XVAL_VCC, ClockScheme.IRAW)
        assert result.log_weight == 0.0

    @pytest.mark.parametrize("block", [None, 16])
    def test_weighted_columns_degenerate_bitwise(self, block):
        """At shift 0 every weight is exactly 1.0, so the weighted
        yield-curve columns equal the unweighted ones bit for bit —
        on the per-die path and the vectorized block path alike."""
        mc = MonteCarloSpec(dies=48, seed=0, block=block,
                            importance=ImportanceSpec(shift_sigma=0.0))
        config = mc.config()
        grid, schemes = (XVAL_VCC,), ("iraw",)
        if block is None:
            results = [evaluate_die_point(config, die, XVAL_VCC,
                                          ClockScheme.IRAW)
                       for die in range(mc.dies)]
        else:
            results = block_results(config, mc.dies, XVAL_VCC,
                                    ClockScheme.IRAW, block=block)
        [row] = yield_curve_rows(results, grid, schemes, mc.dies,
                                 mc.confidence, importance=mc.importance)
        assert row["weighted_functional_yield"] == row["functional_yield"]
        assert row["weighted_frequency_yield"] == row["frequency_yield"]
        assert row["weighted_functional_low"] == row["functional_low"]
        assert row["weighted_functional_high"] == row["functional_high"]
        assert row["weighted_frequency_mhz_mean"] \
            == row["frequency_mhz_mean"]
        assert row["weighted_slowdown_mean"] == row["slowdown_mean"]
        assert row["ess"] == float(mc.dies)
        assert row["ess_fraction"] == 1.0

    def test_deep_tail_estimate_degenerates_to_the_count(self):
        mc = MonteCarloSpec(dies=64, seed=0, block=64,
                            importance=ImportanceSpec(shift_sigma=0.0))
        results = block_results(mc.config(), mc.dies, 450.0,
                                ClockScheme.IRAW)
        [row] = deep_tail_rows(results, (450.0,), ("iraw",), mc.dies,
                               mc.importance, mc.confidence)
        failures = sum(1 for r in results
                       for f in r.functional.tolist() if not f)
        assert row["functional_fail"] == failures / mc.dies
        assert row["ess"] == float(mc.dies)


class TestCrossValidation:
    """Brute force and the shifted estimator agree where both converge."""

    def setup_method(self):
        self.scheme = ClockScheme.IRAW
        brute = MonteCarloConfig(seed=0)
        shifted = MonteCarloConfig(seed=7, shift_sigma=1.0)
        self.brute = block_results(brute, XVAL_DIES, XVAL_VCC, self.scheme)
        self.shifted = block_results(shifted, XVAL_DIES, XVAL_VCC,
                                     self.scheme)

    def test_confidence_intervals_overlap(self):
        hits = sum(1 for r in self.brute
                   for f in r.functional.tolist() if not f)
        assert hits >= 20  # the point really is brute-observable
        b_low, b_high = wilson_interval(hits, XVAL_DIES, 0.95)
        indicator = failure_indicator(self.shifted)
        i_low, i_high = indicator.interval(0.95)
        assert indicator.ess >= 1000.0
        assert max(b_low, i_low) <= min(b_high, i_high), \
            f"brute [{b_low}, {b_high}] vs IS [{i_low}, {i_high}]"

    def test_two_estimator_z_test(self):
        hits = sum(1 for r in self.brute
                   for f in r.functional.tolist() if not f)
        p_brute = hits / XVAL_DIES
        var_brute = p_brute * (1.0 - p_brute) / XVAL_DIES
        indicator = failure_indicator(self.shifted)
        z = abs(indicator.estimate - p_brute) \
            / math.sqrt(indicator.variance() + var_brute)
        assert z < 4.0, (f"z = {z:.2f}: IS {indicator.estimate:.4g} vs "
                         f"brute {p_brute:.4g}")


class TestEssDiagnostics:
    def test_ess_is_invariant_under_block_partitioning(self):
        """The Kish ESS folds per-die weights in die order, so how the
        campaign was cut into jobs must not change it at all."""
        config = MonteCarloConfig(seed=0, shift_sigma=1.0)
        references = None
        for block in (256, 64, 7):
            results = block_results(config, 256, XVAL_VCC,
                                    ClockScheme.IRAW, block=block)
            indicator = failure_indicator(results)
            values = (indicator.ess, indicator.estimate,
                      indicator.interval(0.95))
            if references is None:
                references = values
            assert values == references

    def test_collapsed_weights_warn(self):
        """An over-aggressive shift spreads the weights so far that a
        few dies dominate; the diagnostic must fire with the grid point
        in the message (seeded campaign: ESS/dies ~ 0.23 here)."""
        mc = MonteCarloSpec(dies=16, seed=0, block=16,
                            importance=ImportanceSpec(shift_sigma=3.0,
                                                      ess_warn=0.5))
        results = block_results(mc.config(), mc.dies, XVAL_VCC,
                                ClockScheme.IRAW)
        with pytest.warns(EffectiveSampleSizeWarning, match="500 mV"):
            deep_tail_rows(results, (XVAL_VCC,), ("iraw",), mc.dies,
                           mc.importance, mc.confidence)


class TestJobKeyDirections:
    """What re-simulates and what must not, pinned both ways."""

    @staticmethod
    def keys(mc: MonteCarloSpec) -> list[str]:
        return [job_key(job)
                for job in montecarlo_jobs(mc, (XVAL_VCC,), ("iraw",))]

    def test_presentation_knobs_stay_out_of_the_job_key(self):
        base = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=1.0))
        ess = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=1.0,
                                              ess_warn=0.5))
        confidence = MonteCarloSpec(
            dies=8, confidence=0.5,
            importance=ImportanceSpec(shift_sigma=1.0))
        assert self.keys(base) == self.keys(ess) == self.keys(confidence)

    def test_growing_the_campaign_reuses_every_key(self):
        small = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=1.0))
        grown = MonteCarloSpec(
            dies=16, importance=ImportanceSpec(shift_sigma=1.0))
        assert self.keys(grown)[:8] == self.keys(small)

    def test_the_shift_is_physics_and_changes_every_key(self):
        base = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=1.0))
        deeper = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=1.5))
        assert not set(self.keys(base)) & set(self.keys(deeper))

    def test_zero_shift_shares_the_brute_force_cache(self):
        """An importance section resolving to shift 0 is the brute
        campaign: every cached die must be reusable."""
        brute = MonteCarloSpec(dies=8)
        degenerate = MonteCarloSpec(
            dies=8, importance=ImportanceSpec(shift_sigma=0.0))
        assert self.keys(brute) == self.keys(degenerate)

    def test_auto_resolves_deterministically(self):
        """``"auto"`` with the stock arrays lands on the ESS-safe cap
        (the design-margin target is deeper), so two auto specs and the
        equivalent explicit float all share one cache."""
        auto = MonteCarloSpec(dies=8, importance=ImportanceSpec())
        assert auto.config().shift_sigma == AUTO_MAX_LAMBDA
        explicit = MonteCarloSpec(
            dies=8,
            importance=ImportanceSpec(shift_sigma=AUTO_MAX_LAMBDA))
        assert self.keys(auto) == self.keys(explicit)


class TestDeepTailAcceptance:
    """The headline capability: p <= 1e-7 resolved from 100k dies."""

    def test_deep_tail_resolves_1e7_with_healthy_ess(self):
        mc = MonteCarloSpec(dies=DEEP_DIES, seed=0, block=DEEP_DIES,
                            importance=ImportanceSpec(
                                shift_sigma=DEEP_SHIFT, ess_warn=0.01))
        results = block_results(mc.config(), mc.dies, DEEP_VCC,
                                ClockScheme.IRAW)
        [row] = deep_tail_rows(results, (DEEP_VCC,), ("iraw",), mc.dies,
                               mc.importance, mc.confidence)
        assert 0.0 < row["functional_fail"] <= 1e-7
        assert row["functional_fail_low"] > 0.0  # CI excludes zero
        assert row["ess"] >= 1000.0
        assert row["log10_functional_fail"] is not None
        assert row["log10_functional_fail"] <= -7.0


class TestWeightedAccumulatorUnits:
    def test_unit_weights_degenerate_to_streaming_stats_bitwise(self):
        values = [3.25, -1.5, 0.0, 7.125, 2.0, -8.75]
        plain = StreamingStats()
        weighted = WeightedStats()
        for value in values:
            plain.add(value)
            weighted.add(value, 1.0)
        assert weighted.mean == plain.mean
        assert weighted.std == plain.std
        assert weighted.minimum == plain.minimum
        assert weighted.maximum == plain.maximum

    def test_zero_weights_carry_no_mass(self):
        stats = WeightedStats()
        stats.add(100.0, 0.0)
        assert stats.count == 0  # never enters the Welford stream
        indicator = WeightedIndicator()
        indicator.add(True, 0.0)
        assert indicator.count == 1  # observed, but weightless:
        assert math.isnan(indicator.estimate)
        assert indicator.ess == 0.0

    def test_invalid_weights_are_rejected(self):
        for bad in (-1.0, math.nan, math.inf):
            with pytest.raises(ConfigError):
                WeightedStats().add(1.0, bad)
            with pytest.raises(ConfigError):
                WeightedIndicator().add(True, bad)

    def test_empty_indicator_reports_nan_and_full_interval(self):
        indicator = WeightedIndicator()
        assert math.isnan(indicator.estimate)
        assert indicator.ess == 0.0
        assert weighted_wilson_interval(indicator.estimate, indicator.ess,
                                        0.95) == (0.0, 1.0)
