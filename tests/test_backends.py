"""Backend-equivalence and fault-injection suite for the queue backend.

The queue backend's promise is exactly-once *collection* on top of
at-least-once *execution*: a shard may be claimed by a worker that is
then SIGKILLed, may come back as a corrupt result file, or may raise on
the worker — and the batch must still complete with bit-identical
results, bounded retries and honest ``requeued``/``retried`` counters.
These tests drill each failure mode against the real spool protocol
(rename-based leases, heartbeat files, quarantine), including one test
that SIGKILLs a live ``python -m repro worker`` subprocess mid-shard,
and a hypothesis property over arbitrary lease-expiry/failure/completion
interleavings.
"""

import os
import pathlib
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    EngineError,
    EngineStats,
    Job,
    ParallelRunner,
    QueueBackend,
    SpoolBroker,
    TraceSpec,
    job_key,
    run_worker_loop,
)
from repro.engine.backends import (
    PoolBackend,
    RemoteShardError,
    SerialBackend,
    resolve_backend,
)
from repro.engine.broker import (
    CompletedEvent,
    LEASE_ENV,
    QUEUE_DIR_ENV,
    default_lease_timeout,
    validated_queue_root,
)
from repro.errors import ConfigError
from repro.workloads.profiles import KERNEL_LIKE

pytestmark = pytest.mark.engine

SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"


def sleep_job(note: str = "", sleep_s: float = 0.0) -> Job:
    """Cheap deterministic job whose result echoes ``note``."""
    options = {"note": note}
    if sleep_s:
        options["sleep_s"] = sleep_s
    return Job(kind="engine-selftest-sleep", options=tuple(options.items()))


def shard_job(seed: int = 0) -> Job:
    """A real single-trace simulation shard (milliseconds at length 300)."""
    return Job(kind="sweep-point", vcc_mv=500.0, scheme="iraw",
               trace=TraceSpec.synthetic(KERNEL_LIKE, seed=seed, length=300))


def queue_backend(root, **kwargs) -> QueueBackend:
    kwargs.setdefault("lease_timeout", 30.0)
    kwargs.setdefault("poll_interval", 0.02)
    return QueueBackend(root, **kwargs)


class TestBrokerPrimitives:
    def test_submit_claim_complete_round_trip(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        job = sleep_job("round-trip")
        key = job_key(job)
        assert broker.submit(key, job)
        claim = broker.claim_next("w1")
        assert claim is not None and claim.key == key
        assert claim.job == job            # survived the pickle round trip
        assert not (broker.pending_dir / f"{key}.job").exists()
        assert claim.heartbeat_path.read_text("utf-8") == "w1"
        broker.complete(claim, {"note": "round-trip"})
        (event,) = broker.poll({key})
        assert isinstance(event, CompletedEvent)
        assert event.result == {"note": "round-trip"}
        # collection consumes every spool file of the key
        for directory in (broker.pending_dir, broker.claimed_dir,
                          broker.done_dir, broker.failed_dir):
            assert list(directory.iterdir()) == []

    def test_claim_is_exclusive(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        job = sleep_job("solo")
        broker.submit(job_key(job), job)
        assert broker.claim_next("w1") is not None
        assert broker.claim_next("w2") is None

    def test_submit_deduplicates_spooled_shards(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        job = sleep_job("once")
        key = job_key(job)
        assert broker.submit(key, job)
        assert not broker.submit(key, job)          # still pending
        claim = broker.claim_next()
        assert not broker.submit(key, job)          # claimed
        claim.release()
        assert not broker.submit(key, job)          # pending again
        claim = broker.claim_next()
        assert claim is not None
        broker.complete(claim, {"note": "once"})
        # A published result is already the answer for this key: do not
        # re-spool the shard for a worker to redundantly re-simulate.
        assert not broker.submit(key, job)
        (event,) = broker.poll({key})
        assert isinstance(event, CompletedEvent)
        assert broker.submit(key, job)              # collected: fresh batch

    def test_release_returns_shard_to_pending(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        job = sleep_job("boomerang")
        key = job_key(job)
        broker.submit(key, job)
        broker.claim_next("w1").release()
        assert (broker.pending_dir / f"{key}.job").exists()
        assert list(broker.claimed_dir.iterdir()) == []

    def test_corrupt_pending_shard_is_quarantined_on_claim(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        (broker.pending_dir / "deadbeef.job").write_bytes(b"not a pickle")
        assert broker.claim_next("w1") is None
        assert list(broker.pending_dir.iterdir()) == []
        assert len(list(broker.quarantine_dir.iterdir())) == 1

    def test_worker_loop_executes_spooled_shards(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        for i in range(3):
            job = sleep_job(f"n{i}")
            broker.submit(job_key(job), job)
        completed, failed = run_worker_loop(broker, idle_exit=0.0,
                                            poll_interval=0.01)
        assert (completed, failed) == (3, 0)
        assert len(list(broker.done_dir.iterdir())) == 3

    def test_worker_loop_reports_failures_separately(self, tmp_path):
        broker = SpoolBroker(tmp_path)
        crash = Job(kind="engine-selftest-crash")
        broker.submit(job_key(crash), crash)
        ok = sleep_job("fine")
        broker.submit(job_key(ok), ok)
        completed, failed = run_worker_loop(broker, idle_exit=0.0,
                                            poll_interval=0.01)
        assert (completed, failed) == (1, 1)
        assert len(list(broker.failed_dir.iterdir())) == 1

    def test_straggler_cannot_clobber_a_reclaimed_lease(self, tmp_path):
        # W1 freezes past its lease; the collector re-pends the shard and
        # W2 re-claims it.  When W1 wakes up, its stale claim handle must
        # neither delete W2's lease files nor publish a failure that
        # would charge the retry budget for a healthy shard.
        broker = SpoolBroker(tmp_path)
        job = sleep_job("contested")
        key = job_key(job)
        broker.submit(key, job)
        w1 = broker.claim_next("w1")
        # Simulate the collector's expiry: shard back to pending/, lease
        # heartbeat dropped (exactly what _expire does).
        os.rename(w1.path, broker.pending_dir / f"{key}.job")
        w1.heartbeat_path.unlink()
        w2 = broker.claim_next("w2")
        assert not w1.owns() and w2.owns()
        broker.fail(w1, RuntimeError("stale straggler failure"))
        assert list(broker.failed_dir.iterdir()) == []   # silently dropped
        assert w2.path.exists() and w2.heartbeat_path.exists()
        w1.release()                                     # also a no-op
        assert w2.path.exists()
        broker.complete(w2, {"note": "contested"})
        (event,) = broker.poll({key})
        assert isinstance(event, CompletedEvent)
        assert event.result == {"note": "contested"}

    def test_idle_exit_measures_idleness_not_execution_time(self, tmp_path):
        # A shard that runs longer than --idle-exit must not count as
        # idleness: work arriving shortly after it finishes is served.
        import threading

        broker = SpoolBroker(tmp_path)
        slow = sleep_job("slow", sleep_s=0.4)
        broker.submit(job_key(slow), slow)
        follow_up = sleep_job("follow-up")

        def submit_later():
            time.sleep(0.5)
            broker.submit(job_key(follow_up), follow_up)

        helper = threading.Thread(target=submit_later, daemon=True)
        helper.start()
        completed, failed = run_worker_loop(broker, idle_exit=0.3,
                                            poll_interval=0.02)
        helper.join()
        assert (completed, failed) == (2, 0)

    def test_spool_is_code_versioned(self, tmp_path):
        from repro.engine.cache import CACHE_SCHEMA_VERSION, code_fingerprint

        broker = SpoolBroker(tmp_path)
        assert broker.spool.parent == tmp_path
        assert broker.spool.name \
            == f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()}"


class TestQueueBackendEquivalence:
    def test_queue_matches_serial_and_shards_populations(self, tmp_path):
        from repro.analysis.sweep import SweepSettings, VccSweep
        from repro.circuits.frequency import ClockScheme

        settings_ = SweepSettings(profiles=(KERNEL_LIKE,), trace_length=300)
        points = [(650.0, ClockScheme.BASELINE), (500.0, ClockScheme.IRAW)]
        serial = VccSweep(settings_).run_points(points)
        runner = ParallelRunner(
            backend=queue_backend(tmp_path, local_workers=2))
        queued = VccSweep(settings_, runner=runner).run_points(points)
        for a, b in zip(serial, queued):
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.ipc == b.ipc
            assert a.point == b.point
        assert runner.stats.sharded == len(points)
        assert runner.stats.requeued == 0

    def test_results_travel_through_the_spool_pickles(self, tmp_path):
        # local_workers really go through pending/ -> claimed/ -> done/.
        backend = queue_backend(tmp_path, local_workers=1)
        runner = ParallelRunner(backend=backend)
        job = shard_job()
        (result,) = runner.run([job])
        (expected,) = ParallelRunner().run([job])
        assert result.results[0].cycles == expected.results[0].cycles
        assert result == expected


class TestFaultInjection:
    """The satellite drills: SIGKILL, corruption, retry exhaustion."""

    def test_sigkilled_worker_lease_expires_and_batch_completes(
            self, tmp_path, monkeypatch):
        queue = tmp_path / "spool"
        broker = SpoolBroker(queue, lease_timeout=1.0)
        job = sleep_job("survivor")
        key = job_key(job)
        broker.submit(key, job)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_DIR) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env["REPRO_SELFTEST_SLEEP_S"] = "600"   # the worker hangs mid-shard
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--queue", str(queue),
             "--poll", "0.05"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        try:
            claimed = broker.claimed_dir / f"{key}.job"
            deadline = time.monotonic() + 60.0
            while not claimed.exists():
                if proc.poll() is not None:
                    pytest.fail("worker exited early: "
                                f"{proc.stderr.read().decode()}")
                assert time.monotonic() < deadline, \
                    "worker never claimed the shard"
                time.sleep(0.02)
        finally:
            proc.kill()     # SIGKILL: no cleanup, lease goes stale
            proc.wait()
            proc.stderr.close()

        monkeypatch.delenv("REPRO_SELFTEST_SLEEP_S", raising=False)
        runner = ParallelRunner(backend=queue_backend(
            queue, local_workers=1, lease_timeout=1.0))
        results = runner.run([job])
        assert results == [{"note": "survivor"}]    # not lost
        assert runner.stats.simulated == 1          # not duplicated
        assert runner.stats.requeued >= 1           # lease expired
        assert runner.stats.retried == 1
        assert runner.stats.errors == 0

    def test_corrupt_done_result_is_quarantined_and_reexecuted(
            self, tmp_path):
        backend = queue_backend(tmp_path, local_workers=1)
        # The 0.15 s execution keeps the corrupt file in place long
        # enough that the collector provably reads it first.
        job = sleep_job("phoenix", sleep_s=0.15)
        key = job_key(job)
        garbage = b"these bytes are not a pickle"
        (backend.broker.done_dir / f"{key}.pkl").write_bytes(garbage)
        runner = ParallelRunner(backend=backend)
        results = runner.run([job])
        assert results == [{"note": "phoenix"}]
        assert runner.stats.requeued == 1
        assert runner.stats.retried == 1
        quarantined = list(backend.broker.quarantine_dir.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == garbage

    def test_exhausted_retries_name_the_trace_and_job_key(self, tmp_path):
        job = Job(kind="engine-selftest-crash",
                  trace=TraceSpec.synthetic(KERNEL_LIKE, seed=0, length=300),
                  options=(("note", "doomed"),))
        backend = queue_backend(tmp_path, local_workers=1, max_retries=2)
        runner = ParallelRunner(backend=backend)
        with pytest.raises(EngineError) as excinfo:
            runner.run([job])
        message = str(excinfo.value)
        assert "trace=kernel-like/seed0" in message   # names the trace
        assert job_key(job) in message                # names the job key
        assert "after 3 attempts" in message          # 1 + max_retries
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteShardError)
        assert "injected engine crash (doomed)" in str(cause)
        assert runner.stats.requeued == 2
        assert runner.stats.retried == 1
        assert runner.stats.errors == 1
        # The failed batch leaves no orphaned work for detached workers.
        assert list(backend.broker.pending_dir.iterdir()) == []
        assert list(backend.broker.failed_dir.iterdir()) == []

    def test_corrupt_pending_payload_is_requeued_not_hung(self, tmp_path):
        # A worker that claims an unreadable pending payload quarantines
        # it, leaving the shard with no spool file at all; the collector
        # must detect the loss and re-submit rather than poll forever.
        backend = queue_backend(tmp_path, local_workers=1)
        job = sleep_job("lazarus")
        key = job_key(job)
        backend.broker.submit(key, job)
        (backend.broker.pending_dir / f"{key}.job").write_bytes(b"scrambled")
        runner = ParallelRunner(backend=backend)
        results = runner.run([job])
        assert results == [{"note": "lazarus"}]
        assert runner.stats.requeued >= 1
        assert len(list(backend.broker.quarantine_dir.iterdir())) == 1

    def test_foreign_cleanup_is_redispatched_after_two_lost_polls(
            self, tmp_path):
        # Another runner sharing the spool collected (and forgot) a key
        # this runner still needs: two consecutive lost polls, then a
        # re-dispatch — never an infinite wait.
        backend = queue_backend(tmp_path, local_workers=0)
        broker = backend.broker
        job = sleep_job("shared")
        key = job_key(job)
        pending = {key: job}
        stats = EngineStats()
        state = backend._new_state(pending)
        broker.submit(key, job)
        broker.forget(key)                      # the other runner's cleanup
        assert backend._step(pending, state, stats) == ([], None)  # candidate
        assert stats.requeued == 0
        assert backend._step(pending, state, stats) == ([], None)  # confirmed
        assert stats.requeued == 1
        assert (broker.pending_dir / f"{key}.job").exists() # re-spooled
        claim = broker.claim_next("w1")
        broker.complete(claim, {"note": "shared"})
        assert backend._step(pending, state, stats) \
            == ([(key, {"note": "shared"})], None)

    def test_mid_transition_race_does_not_burn_retry_budget(self, tmp_path):
        # One lost poll followed by the shard reappearing must clear the
        # candidate instead of counting toward max_retries.
        backend = queue_backend(tmp_path, local_workers=0)
        broker = backend.broker
        job = sleep_job("flicker")
        key = job_key(job)
        pending = {key: job}
        stats = EngineStats()
        state = backend._new_state(pending)
        assert backend._step(pending, state, stats) == ([], None)  # lost once
        assert state.lost_polls == {key: 1}
        broker.submit(key, job)                             # reappears
        assert backend._step(pending, state, stats) == ([], None)
        assert state.lost_polls == {}                       # candidate cleared
        assert stats.requeued == 0

    def test_workerless_spool_warns_instead_of_hanging_silently(
            self, tmp_path):
        import threading

        backend = QueueBackend(tmp_path, local_workers=0, lease_timeout=0.1,
                               poll_interval=0.01)
        job = sleep_job("late")

        def late_worker():
            time.sleep(0.5)   # well past the lease window
            run_worker_loop(backend.broker, max_shards=1,
                            poll_interval=0.01, idle_exit=5.0)

        helper = threading.Thread(target=late_worker, daemon=True)
        helper.start()
        try:
            with pytest.warns(RuntimeWarning, match="no worker has claimed"):
                results = ParallelRunner(backend=backend).run([job])
        finally:
            helper.join()
        assert results == [{"note": "late"}]

    def test_workerless_warning_fires_once_per_spool(self, tmp_path):
        """Regression: every concurrent batch over one workerless spool
        used to emit its own copy of the warning; now the first batch
        warns and the rest go quiet (but still stop re-checking)."""
        import warnings

        first = QueueBackend(tmp_path, local_workers=0, lease_timeout=0.01)
        second = QueueBackend(tmp_path, local_workers=0, lease_timeout=0.01)
        stalled_since = time.monotonic() - 1.0
        with pytest.warns(RuntimeWarning, match="no worker has claimed"):
            assert first._looks_stalled(stalled_since, False) is True
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert second._looks_stalled(stalled_since, False) is True
        # A different spool directory is a different mistake: warn again.
        other = QueueBackend(tmp_path / "other", local_workers=0,
                             lease_timeout=0.01)
        with pytest.warns(RuntimeWarning, match="no worker has claimed"):
            assert other._looks_stalled(stalled_since, False) is True

    def test_worker_side_exception_text_travels_to_the_runner(self, tmp_path):
        job = Job(kind="engine-selftest-crash", options=(("note", "once"),))
        backend = queue_backend(tmp_path, local_workers=1, max_retries=0)
        with pytest.raises(EngineError) as excinfo:
            ParallelRunner(backend=backend).run([job])
        # The remote traceback (raise site and message) is preserved.
        assert "injected engine crash (once)" in str(excinfo.value.__cause__)
        assert "RuntimeError" in str(excinfo.value.__cause__)

    def test_sibling_completion_survives_a_fatal_pass(self, tmp_path):
        # One poll pass can deliver a completed shard *and* a fatal
        # failure for another; the completed result's done/ file is
        # consumed by that same pass, so it must be returned (and reach
        # the runner's memo) rather than dropped with the dying batch.
        backend = queue_backend(tmp_path, local_workers=0, max_retries=0)
        ok = sleep_job("kept")
        doomed = sleep_job("doomed")
        k_ok, k_bad = job_key(ok), job_key(doomed)
        broker = backend.broker
        pending = {k_ok: ok, k_bad: doomed}
        stats = EngineStats()
        state = backend._new_state(pending)
        for key, job in pending.items():
            broker.submit(key, job)
        c1 = broker.claim_next("w", key=k_ok)
        broker.complete(c1, {"note": "kept"})
        c2 = broker.claim_next("w", key=k_bad)
        broker.fail(c2, RuntimeError("permanent failure"))
        completions, failure = backend._step(pending, state, stats)
        assert completions == [(k_ok, {"note": "kept"})]
        assert failure is not None
        assert "permanent failure" in str(failure.cause)

    def test_stale_failure_report_is_not_charged_to_a_new_batch(
            self, tmp_path):
        # A failed/ file left by an interrupted previous run must not
        # consume this batch's retry budget before any execution.
        backend = queue_backend(tmp_path, local_workers=1, max_retries=0)
        job = sleep_job("fresh-start")
        (backend.broker.failed_dir / f"{job_key(job)}.err").write_text(
            "RuntimeError: stale failure from a dead runner\n")
        runner = ParallelRunner(backend=backend)
        assert runner.run([job]) == [{"note": "fresh-start"}]
        assert runner.stats.requeued == 0
        assert runner.stats.errors == 0


class TestInterleavingProperty:
    """Random lease-expiry/failure/completion interleavings converge."""

    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_every_interleaving_collects_exactly_once(self, data,
                                                      tmp_path_factory):
        root = tmp_path_factory.mktemp("interleave")
        n = data.draw(st.integers(min_value=2, max_value=4), label="shards")
        fates = {}
        jobs = {}
        order = {}
        for i in range(n):
            job = sleep_job(f"shard-{i}")
            key = job_key(job)
            jobs[key] = job
            order[key] = i
            fates[key] = data.draw(
                st.lists(st.sampled_from(("expire", "fail", "corrupt")),
                         max_size=2),
                label=f"fates[{i}]") + ["complete"]
        # Lease expiry is observation-based (heartbeat mtime unchanged
        # for lease_timeout of the collector's monotonic clock); a tiny
        # timeout makes any claim left in place across two polls expire,
        # which is exactly what the scripted "expire" fate sets up —
        # every other fate resolves its claim before the next poll.
        backend = QueueBackend(root, local_workers=0, lease_timeout=1e-9,
                               poll_interval=0.0, max_retries=10)
        broker = backend.broker
        stats = EngineStats()
        state = backend._new_state(jobs)
        for key, job in jobs.items():
            broker.submit(key, job)
        collected = {}
        fault_counts = {key: len(f) - 1 for key, f in fates.items()}
        faults = sum(fault_counts.values())

        def step():
            completions, failure = backend._step(jobs, state, stats)
            assert failure is None, f"retry budget unexpectedly spent: " \
                                    f"{failure}"
            for key, result in completions:
                assert key not in collected, "collected twice"
                collected[key] = result

        budget = 50 * (faults + n + 1)
        while any(fates.values()):
            budget -= 1
            assert budget > 0, "interleaving failed to converge"
            actionable = sorted((k for k, f in fates.items() if f),
                                key=order.__getitem__)
            key = data.draw(st.sampled_from(actionable), label="next shard")
            claim = broker.claim_next("scripted", key=key)
            if claim is None:
                step()  # a prior expiry/corruption needs collecting first
                continue
            fate = fates[key].pop(0)
            if fate == "complete":
                broker.complete(claim, {"note": jobs[key].option("note")})
            elif fate == "fail":
                broker.fail(claim, RuntimeError("transient worker failure"))
            elif fate == "expire":
                pass  # leave the claim in place: its heartbeat never
                      # moves again, so the lease watch expires it
            elif fate == "corrupt":
                (broker.done_dir / f"{key}.pkl").write_bytes(b"garbage")
                claim.discard()
            if data.draw(st.booleans(), label="poll now"):
                step()
        while state.outstanding:
            budget -= 1
            assert budget > 0, "collection failed to converge"
            step()

        assert sorted(collected) == sorted(jobs)
        for key, job in jobs.items():
            assert collected[key] == {"note": job.option("note")}
        assert stats.requeued == faults
        assert stats.retried == sum(
            1 for count in fault_counts.values() if count > 0)
        for directory in (broker.pending_dir, broker.claimed_dir,
                          broker.done_dir, broker.failed_dir):
            assert list(directory.iterdir()) == []


class TestValidation:
    """Env-root validation: clean errors, never tracebacks."""

    def test_root_that_is_a_file_is_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigError, match="not a directory"):
            SpoolBroker(blocker)

    def test_uncreatable_root_is_rejected(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        with pytest.raises(ConfigError, match="cannot create"):
            validated_queue_root(blocker / "nested")

    def test_missing_root_configuration_is_rejected(self, monkeypatch):
        monkeypatch.delenv(QUEUE_DIR_ENV, raising=False)
        with pytest.raises(ConfigError, match=QUEUE_DIR_ENV):
            QueueBackend()

    def test_lease_env_validation(self, monkeypatch):
        monkeypatch.setenv(LEASE_ENV, "not-a-number")
        with pytest.raises(ConfigError, match="number of seconds"):
            default_lease_timeout()
        monkeypatch.setenv(LEASE_ENV, "-3")
        with pytest.raises(ConfigError, match="positive"):
            default_lease_timeout()
        monkeypatch.setenv(LEASE_ENV, "7.5")
        assert default_lease_timeout() == 7.5
        monkeypatch.delenv(LEASE_ENV)
        assert default_lease_timeout() > 0

    def test_worker_cli_rejects_bad_queue_dir_cleanly(self, tmp_path,
                                                      capsys):
        from repro.cli import main

        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        assert main(["worker", "--queue", str(blocker)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not a directory" in err

    def test_worker_cli_requires_a_queue(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.delenv(QUEUE_DIR_ENV, raising=False)
        assert main(["worker"]) == 2
        assert QUEUE_DIR_ENV in capsys.readouterr().err

    def test_worker_cli_rejects_bad_concurrency(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["worker", "--queue", str(tmp_path),
                     "--concurrency", "0"]) == 2
        assert "concurrency" in capsys.readouterr().err

    def test_worker_cli_surfaces_crashed_children(self, tmp_path,
                                                  monkeypatch, capsys):
        from repro.cli import main

        # Each spawned child rebuilds its own broker; if every child
        # dies at startup the parent must not claim success for an
        # unserved spool.
        monkeypatch.setenv("REPRO_SELFTEST_WORKER_CRASH", "1")
        assert main(["worker", "--queue", str(tmp_path),
                     "--concurrency", "2", "--idle-exit", "0.1"]) == 1
        assert "exited abnormally" in capsys.readouterr().err
        monkeypatch.delenv("REPRO_SELFTEST_WORKER_CRASH")
        assert main(["worker", "--queue", str(tmp_path),
                     "--concurrency", "2", "--idle-exit", "0.1"]) == 0

    def test_cache_cli_rejects_non_directory_root_cleanly(self, tmp_path,
                                                          monkeypatch,
                                                          capsys):
        from repro.cli import main

        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker))
        assert main(["cache", "--prune"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "REPRO_CACHE_DIR" in err

    def test_unknown_backend_name_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            resolve_backend("carrier-pigeon")
        with pytest.raises(ConfigError, match="ExecutionBackend"):
            resolve_backend(42)


class TestBackendResolution:
    def test_auto_resolution_follows_workers(self):
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)
        pool = resolve_backend(None, workers=3)
        assert isinstance(pool, PoolBackend) and pool.workers == 3

    def test_names_resolve_and_instances_pass_through(self, tmp_path):
        assert isinstance(resolve_backend("serial", workers=8), SerialBackend)
        assert isinstance(resolve_backend("pool", workers=2), PoolBackend)
        queue = resolve_backend("queue", queue_dir=tmp_path)
        assert isinstance(queue, QueueBackend)
        assert resolve_backend(queue) is queue

    def test_queue_backend_warns_when_workers_flag_is_dropped(self,
                                                              tmp_path):
        with pytest.warns(RuntimeWarning, match="--workers 4 is ignored"):
            resolve_backend("queue", workers=4, queue_dir=tmp_path)

    def test_runner_exposes_its_backend(self, tmp_path):
        assert ParallelRunner().backend.name == "serial"
        assert ParallelRunner(workers=4).backend.name == "pool"
        runner = ParallelRunner(backend=queue_backend(tmp_path))
        assert runner.backend.name == "queue"
        assert runner.backend.wrap_errors


class TestWorkerCli:
    def test_worker_drains_a_spool_and_exits_on_idle(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        broker = SpoolBroker(tmp_path)
        for i in range(2):
            job = sleep_job(f"cli-{i}")
            broker.submit(job_key(job), job)
        assert main(["worker", "--queue", str(tmp_path),
                     "--poll", "0.02", "--idle-exit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "executed 2 shard(s)" in out
        assert len(list(broker.done_dir.iterdir())) == 2

    def test_worker_concurrency_spawns_cooperating_processes(self, tmp_path,
                                                             capsys):
        from repro.cli import main

        broker = SpoolBroker(tmp_path)
        for i in range(4):
            job = sleep_job(f"mp-{i}")
            broker.submit(job_key(job), job)
        assert main(["worker", "--queue", str(tmp_path), "--poll", "0.02",
                     "--concurrency", "2", "--idle-exit", "0.3"]) == 0
        assert "2 worker processes exited" in capsys.readouterr().out
        assert len(list(broker.done_dir.iterdir())) == 4
        assert list(broker.pending_dir.iterdir()) == []

    def test_worker_reports_failed_shards_separately(self, tmp_path, capsys):
        from repro.cli import main

        broker = SpoolBroker(tmp_path)
        crash = Job(kind="engine-selftest-crash")
        broker.submit(job_key(crash), crash)
        ok = sleep_job("good")
        broker.submit(job_key(ok), ok)
        assert main(["worker", "--queue", str(tmp_path), "--poll", "0.02",
                     "--idle-exit", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "executed 1 shard(s), 1 failed" in out

    def test_worker_max_shards_bounds_the_session(self, tmp_path, capsys):
        from repro.cli import main

        broker = SpoolBroker(tmp_path)
        for i in range(3):
            job = sleep_job(f"bounded-{i}")
            broker.submit(job_key(job), job)
        assert main(["worker", "--queue", str(tmp_path), "--poll", "0.02",
                     "--max-shards", "1"]) == 0
        assert "executed 1 shard(s)" in capsys.readouterr().out
        assert len(list(broker.pending_dir.iterdir())) == 2
        assert main(["worker", "--queue", str(tmp_path), "--poll", "0.02",
                     "--max-shards", "0"]) == 0     # zero really means zero
        assert "executed 0 shard(s)" in capsys.readouterr().out
        assert len(list(broker.pending_dir.iterdir())) == 2

    def test_worker_rejects_nonsensical_knobs(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["worker", "--queue", str(tmp_path),
                     "--poll", "0"]) == 2
        assert "--poll" in capsys.readouterr().err
        assert main(["worker", "--queue", str(tmp_path),
                     "--max-shards", "-1"]) == 2
        assert "--max-shards" in capsys.readouterr().err
