"""Tests for trace serialization (save/load round trips)."""

import pytest

from repro.errors import TraceError
from repro.pipeline.core import simulate
from repro.core.config import IrawConfig
from repro.workloads.kernels import kernel_trace
from repro.workloads.profiles import SPECINT_LIKE
from repro.workloads.synthetic import SyntheticTraceGenerator
from repro.workloads.traceio import load_trace, save_trace


class TestRoundTrip:
    def test_synthetic_round_trip(self, tmp_path):
        original = SyntheticTraceGenerator(SPECINT_LIKE, seed=1).generate(800)
        path = tmp_path / "trace.jsonl"
        save_trace(original, path)
        restored = load_trace(path)
        assert restored.name == original.name
        assert len(restored) == len(original)
        for a, b in zip(original.ops, restored.ops):
            assert a.opcode == b.opcode
            assert a.dest == b.dest
            assert a.srcs == b.srcs
            assert a.mem_addr == b.mem_addr
            assert a.taken == b.taken
            assert a.target == b.target
            assert a.pc == b.pc

    def test_golden_values_survive(self, tmp_path):
        original, _ = kernel_trace("fib", 15)
        path = tmp_path / "fib.jsonl"
        save_trace(original, path)
        restored = load_trace(path)
        assert restored.has_golden_values()
        for a, b in zip(original.ops, restored.ops):
            assert a.golden_result == b.golden_result
            assert a.store_value == b.store_value

    def test_restored_kernel_still_verifies(self, tmp_path):
        """The pipeline's golden check must work on a reloaded trace."""
        original, _ = kernel_trace("dot", 12)
        path = tmp_path / "dot.jsonl"
        save_trace(original, path)
        restored = load_trace(path)
        result = simulate(restored, IrawConfig(stabilization_cycles=1))
        assert result.value_mismatches == 0
        assert result.iraw_violations == 0

    def test_metadata_preserved_with_int_keys(self, tmp_path):
        original, _ = kernel_trace("matmul", 3)
        path = tmp_path / "mm.jsonl"
        save_trace(original, path)
        restored = load_trace(path)
        assert restored.metadata["initial_registers"][7] == 3


class TestErrorHandling:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty"):
            load_trace(path)

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceError, match="header"):
            load_trace(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text('{"format": 99, "trace": "x"}\n')
        with pytest.raises(TraceError, match="unsupported format"):
            load_trace(path)

    def test_bad_opcode(self, tmp_path):
        path = tmp_path / "badop.jsonl"
        path.write_text('{"format": 1, "trace": "x"}\n{"o": "zap"}\n')
        with pytest.raises(TraceError, match="bad opcode"):
            load_trace(path)

    def test_bad_record(self, tmp_path):
        path = tmp_path / "badrec.jsonl"
        path.write_text('{"format": 1, "trace": "x"}\n{{{\n')
        with pytest.raises(TraceError, match="bad op record"):
            load_trace(path)
