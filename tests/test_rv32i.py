"""Property and unit tests for the RV32I decoder/encoder.

Two hypothesis properties lock the codec down:

* encode -> decode -> encode is an identity on every legal
  :class:`Instruction`, across all nine encoding formats;
* every 32-bit word either decodes to an instruction that re-encodes to
  the *same* word, or raises a typed :class:`IllegalInstruction` — there
  is no silent immediate wrap-around or field aliasing anywhere in the
  2^32 space.

Unit tests pin a handful of encodings against independently-known
assembler output, the strict-decode rejections (reserved funct7 bits,
SYSTEM with operand fields set, FENCE with funct3 != 0) and the
constructor validation that keeps one-word-one-Instruction true.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TraceError
from repro.isa.rv32i import (
    MNEMONICS,
    IllegalInstruction,
    Instruction,
    _FORMAT_FIELDS,
    _IMM_RANGE,
    _SPECS,
    assemble_words,
    decode,
    disassemble,
    encode,
)

_REG = st.integers(0, 31)


@st.composite
def instructions(draw) -> Instruction:
    """A uniformly random *legal* RV32I instruction."""
    mnemonic = draw(st.sampled_from(MNEMONICS))
    fmt = _SPECS[mnemonic][0]
    fields = {}
    encoded = _FORMAT_FIELDS[fmt]
    for reg_field in ("rd", "rs1", "rs2"):
        if reg_field in encoded:
            fields[reg_field] = draw(_REG)
    if "imm" in encoded:
        lo, hi = _IMM_RANGE[fmt]
        if fmt in ("b", "j"):
            fields["imm"] = draw(st.integers(lo // 2, hi // 2)) * 2
        else:
            fields["imm"] = draw(st.integers(lo, hi))
    return Instruction(mnemonic, **fields)


class TestRoundTripProperties:
    @settings(max_examples=400)
    @given(instructions())
    def test_encode_decode_encode_identity(self, instr):
        word = encode(instr)
        assert 0 <= word < 2**32
        assert decode(word) == instr
        assert encode(decode(word)) == word

    @settings(max_examples=1000)
    @given(st.integers(0, 2**32 - 1))
    def test_every_word_decodes_legally_or_raises(self, word):
        try:
            instr = decode(word)
        except IllegalInstruction:
            return
        # Legal decode: fully validated fields, and the exact same word
        # back — any immediate truncation or aliasing would break this.
        assert instr.mnemonic in MNEMONICS
        lo, hi = _IMM_RANGE.get(instr.format, (0, 0))
        assert lo <= instr.imm <= hi
        assert encode(instr) == word

    def test_corner_immediates_round_trip(self):
        """Deterministic sweep: every mnemonic at its immediate extremes."""
        for mnemonic in MNEMONICS:
            fmt = _SPECS[mnemonic][0]
            if "imm" not in _FORMAT_FIELDS[fmt]:
                corners = [0]
            else:
                lo, hi = _IMM_RANGE[fmt]
                step = 2 if fmt in ("b", "j") else 1
                corners = sorted({lo, lo + step, 0, hi - step, hi})
            for imm in corners:
                kwargs = {"imm": imm} if imm or fmt != "sys" else {}
                instr = Instruction(mnemonic, **kwargs) if fmt == "sys" \
                    else Instruction(mnemonic, imm=imm)
                assert decode(encode(instr)) == instr


class TestKnownEncodings:
    """Words cross-checked against standard RISC-V assembler output."""

    KNOWN = [
        (Instruction("addi", rd=5, rs1=0, imm=10), 0x00A00293),
        (Instruction("add", rd=1, rs1=2, rs2=3), 0x003100B3),
        (Instruction("lui", rd=1, imm=0x12345), 0x123450B7),
        (Instruction("jal", rd=1, imm=8), 0x008000EF),
        (Instruction("sw", rs1=1, rs2=2, imm=8), 0x0020A423),
        (Instruction("beq", rs1=1, rs2=2, imm=-4), 0xFE208EE3),
        (Instruction("srai", rd=1, rs1=2, imm=4), 0x40415093),
        (Instruction("jalr", rd=0, rs1=1, imm=0), 0x00008067),
        (Instruction("ecall"), 0x00000073),
        (Instruction("ebreak"), 0x00100073),
        (Instruction("fence"), 0x0000000F),
    ]

    @pytest.mark.parametrize("instr,word", KNOWN,
                             ids=[str(i) for i, _ in KNOWN])
    def test_encodes_to_reference_word(self, instr, word):
        assert encode(instr) == word
        assert decode(word) == instr

    def test_assemble_words_is_little_endian_concat(self):
        instrs = [Instruction("ecall"), Instruction("ebreak")]
        assert assemble_words(instrs) == bytes.fromhex("7300000073001000")


class TestStrictDecode:
    """Reserved encodings must raise, never decode approximately."""

    ILLEGAL_WORDS = {
        "all-zero": 0x00000000,
        "all-ones": 0xFFFFFFFF,
        "srai-bad-funct7": 0x20415093,      # funct7=0x10 on an OP-IMM shift
        "add-bad-funct7": 0x023100B3,       # funct7=0x01 (that would be mul)
        "ecall-with-rd": 0x000000F3,        # SYSTEM must have rd=0
        "ecall-with-rs1": 0x00008073,       # ... and rs1=0
        "system-bad-imm": 0x00200073,       # imm12=2 is neither ecall/ebreak
        "fence-bad-funct3": 0x0000100F,     # fence.i is not in RV32I base
        "store-bad-funct3": 0x0020B023,     # funct3=3: no 64-bit sd in RV32
        "branch-bad-funct3": 0x0020A063,    # funct3=2 unused by branches
        "amo-opcode": 0x0000002F,           # atomics are a different extension
    }

    @pytest.mark.parametrize("word", ILLEGAL_WORDS.values(),
                             ids=list(ILLEGAL_WORDS))
    def test_illegal_word_raises(self, word):
        with pytest.raises(IllegalInstruction):
            decode(word)

    def test_out_of_range_word_raises(self):
        with pytest.raises(IllegalInstruction):
            decode(2**32)
        with pytest.raises(IllegalInstruction):
            decode(-1)

    def test_illegal_instruction_is_a_trace_error(self):
        assert issubclass(IllegalInstruction, TraceError)


class TestConstructorValidation:
    """One legal word, one Instruction: off-format fields must be 0."""

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(IllegalInstruction):
            Instruction("mul", rd=1, rs1=2, rs2=3)

    def test_register_out_of_range_rejected(self):
        with pytest.raises(IllegalInstruction):
            Instruction("add", rd=32, rs1=0, rs2=0)

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(IllegalInstruction):
            Instruction("addi", rd=1, rs1=0, imm=2048)
        with pytest.raises(IllegalInstruction):
            Instruction("slli", rd=1, rs1=1, imm=32)
        with pytest.raises(IllegalInstruction):
            Instruction("lui", rd=1, imm=-1)

    def test_odd_branch_offset_rejected(self):
        with pytest.raises(IllegalInstruction):
            Instruction("beq", rs1=1, rs2=2, imm=3)
        with pytest.raises(IllegalInstruction):
            Instruction("jal", rd=1, imm=7)

    def test_off_format_fields_rejected(self):
        with pytest.raises(IllegalInstruction):
            Instruction("add", rd=1, rs1=2, rs2=3, imm=4)
        with pytest.raises(IllegalInstruction):
            Instruction("lui", rd=1, rs1=2, imm=0)
        with pytest.raises(IllegalInstruction):
            Instruction("ecall", rd=1)


class TestDisassembly:
    def test_formats(self):
        assert disassemble(Instruction("add", rd=1, rs1=2, rs2=3)) == \
            "add x1, x2, x3"
        assert disassemble(Instruction("lw", rd=5, rs1=2, imm=-8)) == \
            "lw x5, -8(x2)"
        assert disassemble(Instruction("sw", rs1=2, rs2=5, imm=12)) == \
            "sw x5, 12(x2)"
        assert disassemble(Instruction("lui", rd=1, imm=0x12345)) == \
            "lui x1, 0x12345"
        assert str(Instruction("ecall")) == "ecall"
