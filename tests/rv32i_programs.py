"""Builders for the committed RV32I binary fixtures.

The container has no RISC-V cross-compiler, so the fixtures under
``examples/rv32i/`` are assembled with the repo's own encoder: a tiny
label-resolving assembler on top of :func:`repro.isa.rv32i.encode`,
plus a minimal ELF32 writer so one fixture exercises the ELF segment
loader.  ``python tests/test_golden.py --regen`` rewrites the binaries
and their golden state traces together, so fixture and golden can never
drift apart silently.

These are *real* programs in the sense that matters: genuine RV32I
machine code with data sections, loops, function calls and syscalls,
indistinguishable to the loader/interpreter from compiler output.
"""

import pathlib

from repro.isa.rv32i import Instruction, encode

#: Where the committed binaries live (they double as example inputs for
#: ``examples/rv32i_campaign.toml``).
FIXTURE_DIR = pathlib.Path(__file__).parent.parent / "examples" / "rv32i"

# ABI register numbers used by the fixtures.
RA, SP = 1, 2
T0, T1, T2 = 5, 6, 7
A0, A1, A2, A3 = 10, 11, 12, 13
A7 = 17
T3, T4, T5, T6 = 28, 29, 30, 31

EXIT = 93


class Assembler:
    """Two-pass assembler: instructions, labels and raw data blobs.

    String immediates name labels.  Branch/jump immediates resolve to
    pc-relative offsets; every other format resolves to the label's
    absolute address (for materializing data addresses with ``addi``).
    """

    _RELATIVE = {"beq", "bne", "blt", "bge", "bltu", "bgeu", "jal"}

    def __init__(self, base: int = 0):
        self.base = base
        self._items: list = []

    def op(self, mnemonic: str, **fields) -> None:
        self._items.append(("instr", mnemonic, fields))

    def label(self, name: str) -> None:
        self._items.append(("label", name))

    def data(self, blob: bytes) -> None:
        self._items.append(("bytes", bytes(blob)))

    def words(self, *values: int) -> None:
        for value in values:
            self.data((value & 0xFFFF_FFFF).to_bytes(4, "little"))

    def assemble(self) -> bytes:
        addresses: dict[str, int] = {}
        address = self.base
        for item in self._items:
            if item[0] == "label":
                addresses[item[1]] = address
            elif item[0] == "instr":
                address += 4
            else:
                address += len(item[1])
        out = bytearray()
        address = self.base
        for item in self._items:
            if item[0] == "label":
                continue
            if item[0] == "bytes":
                out += item[1]
                address += len(item[1])
                continue
            _, mnemonic, fields = item
            fields = dict(fields)
            if isinstance(fields.get("imm"), str):
                target = addresses[fields["imm"]]
                fields["imm"] = (target - address
                                 if mnemonic in self._RELATIVE else target)
            out += encode(Instruction(mnemonic, **fields)).to_bytes(4, "little")
            address += 4
        return bytes(out)


def elf32(segments: list[tuple[int, bytes]], entry: int) -> bytes:
    """A minimal little-endian ELF32 RISC-V executable (PT_LOAD only)."""
    def le(value: int, size: int) -> bytes:
        return int(value).to_bytes(size, "little")

    ehsize, phentsize = 52, 32
    offset = ehsize + phentsize * len(segments)
    phdrs, payload = b"", b""
    for vaddr, data in segments:
        phdrs += (le(1, 4) + le(offset, 4) + le(vaddr, 4) + le(vaddr, 4)
                  + le(len(data), 4) + le(len(data), 4) + le(7, 4)
                  + le(4, 4))
        payload += data
        offset += len(data)
    ident = b"\x7fELF" + bytes([1, 1, 1, 0]) + b"\x00" * 8
    ehdr = (ident + le(2, 2) + le(243, 2) + le(1, 4) + le(entry, 4)
            + le(ehsize, 4) + le(0, 4) + le(0, 4) + le(ehsize, 2)
            + le(phentsize, 2) + le(len(segments), 2) + le(0, 2)
            + le(0, 2) + le(0, 2))
    assert len(ehdr) == ehsize
    return ehdr + phdrs + payload


def build_loop() -> bytes:
    """Countdown loop: a0 = 10 + 9 + ... + 1 = 55, then exit(a0)."""
    a = Assembler()
    a.op("addi", rd=A0, rs1=0, imm=0)
    a.op("addi", rd=T0, rs1=0, imm=10)
    a.label("loop")
    a.op("add", rd=A0, rs1=A0, rs2=T0)
    a.op("addi", rd=T0, rs1=T0, imm=-1)
    a.op("bne", rs1=T0, rs2=0, imm="loop")
    a.op("addi", rd=A7, rs1=0, imm=EXIT)
    a.op("ecall")
    return a.assemble()


def build_memcpy() -> bytes:
    """ELF fixture: byte-wise memcpy of 24 bytes, then word checksum.

    Code at 0x1000 (the entry), source data at 0x2000, destination in
    previously-untouched memory at 0x3000 — exercising the ELF segment
    loader, ``lui`` address materialization and mixed-width accesses.
    """
    code = Assembler(base=0x1000)
    code.op("lui", rd=A1, imm=0x2)        # src = 0x2000
    code.op("lui", rd=A2, imm=0x3)        # dst = 0x3000
    code.op("addi", rd=A3, rs1=0, imm=24)
    code.op("addi", rd=T0, rs1=0, imm=0)
    code.label("copy")
    code.op("add", rd=T1, rs1=A1, rs2=T0)
    code.op("lbu", rd=T2, rs1=T1, imm=0)
    code.op("add", rd=T3, rs1=A2, rs2=T0)
    code.op("sb", rs1=T3, rs2=T2, imm=0)
    code.op("addi", rd=T0, rs1=T0, imm=1)
    code.op("blt", rs1=T0, rs2=A3, imm="copy")
    code.op("addi", rd=A0, rs1=0, imm=0)  # checksum the copy word-wise
    code.op("addi", rd=T0, rs1=0, imm=0)
    code.label("sum")
    code.op("add", rd=T1, rs1=A2, rs2=T0)
    code.op("lw", rd=T2, rs1=T1, imm=0)
    code.op("add", rd=A0, rs1=A0, rs2=T2)
    code.op("addi", rd=T0, rs1=T0, imm=4)
    code.op("blt", rs1=T0, rs2=A3, imm="sum")
    code.op("addi", rd=A7, rs1=0, imm=EXIT)
    code.op("ecall")
    source = bytes(range(1, 25))
    return elf32([(0x1000, code.assemble()), (0x2000, source)],
                 entry=0x1000)


def build_sort() -> bytes:
    """Branchy bubble sort of 8 signed words stored after the code."""
    a = Assembler()
    a.op("addi", rd=A1, rs1=0, imm="arr")
    a.op("addi", rd=A2, rs1=0, imm=8)
    a.label("outer")
    a.op("addi", rd=T0, rs1=0, imm=0)     # i = 0
    a.op("addi", rd=T4, rs1=0, imm=0)     # swapped = 0
    a.label("inner")
    a.op("slli", rd=T1, rs1=T0, imm=2)
    a.op("add", rd=T1, rs1=T1, rs2=A1)
    a.op("lw", rd=T2, rs1=T1, imm=0)
    a.op("lw", rd=T3, rs1=T1, imm=4)
    a.op("bge", rs1=T3, rs2=T2, imm="noswap")
    a.op("sw", rs1=T1, rs2=T3, imm=0)
    a.op("sw", rs1=T1, rs2=T2, imm=4)
    a.op("addi", rd=T4, rs1=0, imm=1)
    a.label("noswap")
    a.op("addi", rd=T0, rs1=T0, imm=1)
    a.op("addi", rd=T5, rs1=A2, imm=-1)
    a.op("blt", rs1=T0, rs2=T5, imm="inner")
    a.op("bne", rs1=T4, rs2=0, imm="outer")
    a.op("lw", rd=A0, rs1=A1, imm=0)      # a0 = min + max
    a.op("lw", rd=T0, rs1=A1, imm=28)
    a.op("add", rd=A0, rs1=A0, rs2=T0)
    a.op("addi", rd=A7, rs1=0, imm=EXIT)
    a.op("ecall")
    a.label("arr")
    a.words(42, -7, 19, 3, 88, -100, 55, 0)
    return a.assemble()


def build_mix() -> bytes:
    """Load/store-width and ALU mix, plus a jal/jalr function call."""
    a = Assembler()
    a.op("addi", rd=A1, rs1=0, imm=256)   # scratch, past the image
    a.op("lui", rd=T0, imm=0x12345)
    a.op("addi", rd=T0, rs1=T0, imm=0x678)
    a.op("sw", rs1=A1, rs2=T0, imm=0)
    a.op("lb", rd=T1, rs1=A1, imm=1)      # 0x56
    a.op("lbu", rd=T2, rs1=A1, imm=3)     # 0x12
    a.op("lh", rd=T3, rs1=A1, imm=0)      # 0x5678
    a.op("lhu", rd=T4, rs1=A1, imm=2)     # 0x1234
    a.op("sh", rs1=A1, rs2=T3, imm=4)
    a.op("sb", rs1=A1, rs2=T2, imm=6)
    a.op("lw", rd=A0, rs1=A1, imm=4)
    a.op("xor", rd=A0, rs1=A0, rs2=T0)
    a.op("srai", rd=T5, rs1=T0, imm=8)
    a.op("add", rd=A0, rs1=A0, rs2=T5)
    a.op("sltu", rd=T6, rs1=T1, rs2=T2)
    a.op("add", rd=A0, rs1=A0, rs2=T6)
    a.op("srli", rd=T5, rs1=T0, imm=16)
    a.op("sub", rd=A0, rs1=A0, rs2=T5)
    a.op("and", rd=T1, rs1=T0, rs2=T3)
    a.op("or", rd=A0, rs1=A0, rs2=T1)
    a.op("slti", rd=T6, rs1=T5, imm=-5)
    a.op("xori", rd=A0, rs1=A0, imm=0x55)
    a.op("sll", rd=T1, rs1=T6, rs2=T4)
    a.op("add", rd=A0, rs1=A0, rs2=T1)
    a.op("fence")
    a.op("jal", rd=RA, imm="double")      # call
    a.op("addi", rd=A7, rs1=0, imm=EXIT)
    a.op("ecall")
    a.label("double")
    a.op("add", rd=A0, rs1=A0, rs2=A0)
    a.op("jalr", rd=0, rs1=RA, imm=0)     # ret
    return a.assemble()


#: name -> (builder, committed file name).  The ``.elf``/``.bin`` split
#: keeps both loader paths exercised by the same fixture set.
PROGRAMS = {
    "loop": (build_loop, "loop.bin"),
    "memcpy": (build_memcpy, "memcpy.elf"),
    "sort": (build_sort, "sort.bin"),
    "mix": (build_mix, "mix.bin"),
}


def fixture_path(name: str) -> pathlib.Path:
    return FIXTURE_DIR / PROGRAMS[name][1]


def write_fixtures(directory: pathlib.Path = FIXTURE_DIR) -> list[pathlib.Path]:
    """(Re)write every committed binary; returns the paths written."""
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for name, (builder, filename) in PROGRAMS.items():
        path = directory / filename
        path.write_bytes(builder())
        written.append(path)
    return written
