"""Tests of the experiment engine: jobs, cache, runner, integrations."""

import importlib.util
import json
import pathlib
import pickle

import pytest

import repro.engine.cache as cache_module
from repro.analysis.dvfs import DvfsPhase, ScheduleSpec, evaluate_schedules
from repro.analysis.sweep import SweepSettings, VccSweep
from repro.circuits.frequency import ClockScheme
from repro.engine import (
    EngineError,
    Job,
    ParallelRunner,
    ResultCache,
    TracePopulationSpec,
    TraceSpec,
    job_key,
)
from repro.engine.cache import MISS
from repro.engine.jobs import stable_token
from repro.errors import ConfigError
from repro.workloads.profiles import KERNEL_LIKE, SPECINT_LIKE

pytestmark = pytest.mark.engine

#: Tiny population: every engine test simulates in milliseconds.
TINY = SweepSettings(profiles=(KERNEL_LIKE,), trace_length=400)


def tiny_sweep(runner=None) -> VccSweep:
    return VccSweep(TINY, runner=runner)


class TestJobKeys:
    def test_equal_jobs_share_a_key(self):
        a = tiny_sweep().job_for(500.0, ClockScheme.IRAW)
        b = tiny_sweep().job_for(500.0, ClockScheme.IRAW)
        assert a == b
        assert job_key(a) == job_key(b)

    def test_override_order_is_canonicalized(self):
        sweep = tiny_sweep()
        a = sweep.job_for(500.0, ClockScheme.IRAW,
                          rf_enabled=False, iq_enabled=False)
        b = sweep.job_for(500.0, ClockScheme.IRAW,
                          iq_enabled=False, rf_enabled=False)
        assert job_key(a) == job_key(b)

    def test_every_knob_lands_in_the_key(self):
        sweep = tiny_sweep()
        base = sweep.job_for(500.0, ClockScheme.IRAW)
        assert job_key(base) != job_key(sweep.job_for(525.0, ClockScheme.IRAW))
        assert job_key(base) != job_key(
            sweep.job_for(500.0, ClockScheme.BASELINE))
        assert job_key(base) != job_key(
            sweep.job_for(500.0, ClockScheme.IRAW, rf_enabled=False))
        other_population = VccSweep(
            SweepSettings(profiles=(SPECINT_LIKE,), trace_length=400))
        assert job_key(base) != job_key(
            other_population.job_for(500.0, ClockScheme.IRAW))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Job(kind="unheard-of")

    def test_non_plain_data_rejected(self):
        with pytest.raises(TypeError):
            stable_token(object())

    def test_population_spec_is_deterministic(self):
        spec = TracePopulationSpec(profiles=(KERNEL_LIKE,), trace_length=300)
        first, second = spec.build(), spec.build()
        assert [t.name for t in first] == [t.name for t in second]
        assert [op.pc for op in first[0].ops] \
            == [op.pc for op in second[0].ops]

    def test_population_memo_is_bounded(self):
        from repro.engine import executors

        for length in range(100, 100 + 3 * (executors._POPULATIONS_MAX + 2),
                            3):
            executors.population_for(TracePopulationSpec(
                profiles=(KERNEL_LIKE,), trace_length=length))
        assert len(executors._POPULATIONS) <= executors._POPULATIONS_MAX


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        assert cache.get("k") is MISS
        assert cache.put("k", {"value": 42})
        assert cache.get("k") == {"value": 42}
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.entry_count() == 1

    @pytest.mark.parametrize("garbage", [
        b"not a pickle",   # unknown opcode -> UnpicklingError
        b"garbage\n",      # parses as protocol-0 GET -> ValueError
        b"",               # empty file -> EOFError
        b"\x80\x05only-a-prefix",  # truncated frame
    ])
    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, garbage):
        cache = ResultCache(root=tmp_path)
        cache.put("k", [1, 2, 3])
        path = cache.version_dir / "k.pkl"
        path.write_bytes(garbage)
        assert cache.get("k") is MISS
        assert not path.exists()

    def test_code_fingerprint_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        cache.put("k", "old-code-result")
        monkeypatch.setattr(cache_module, "_FINGERPRINT", "f" * 16)
        fresh = ResultCache(root=tmp_path)
        assert fresh.get("k") is MISS  # other version dir, never served
        fresh.put("k", "new-code-result")
        assert fresh.get("k") == "new-code-result"
        assert fresh.prune_stale() == 1  # the old version dir is reclaimed

    def test_schema_version_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(root=tmp_path)
        cache.put("k", "v1-result")
        monkeypatch.setattr(cache_module, "CACHE_SCHEMA_VERSION", 999)
        assert ResultCache(root=tmp_path).get("k") is MISS

    def test_unwritable_location_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("a plain file, not a directory")
        cache = ResultCache(root=blocker / "nested")
        with pytest.warns(RuntimeWarning, match="not writable"):
            assert not cache.put("k", 1)
        assert not cache.put("k2", 2)  # silent after the first warning
        assert cache.get("k") is MISS

    def test_disabled_cache_is_pass_through(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=False)
        assert not cache.put("k", 1)
        assert cache.get("k") is MISS
        assert cache.entry_count() == 0


class TestLruBound:
    """$REPRO_CACHE_MAX_BYTES: byte-bounded store with LRU eviction."""

    @staticmethod
    def entry_size(cache: ResultCache, payload) -> int:
        probe = ResultCache(root=cache.root / "probe")
        probe.put("probe", payload)
        return probe.total_bytes()

    def test_eviction_respects_byte_bound(self, tmp_path):
        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path, max_bytes=3 * unit)
        for i in range(10):
            assert cache.put(f"k{i}", "x" * 64)
            assert cache.total_bytes() <= 3 * unit
        assert cache.entry_count() == 3

    def test_eviction_follows_recency_not_insertion(self, tmp_path):
        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path, max_bytes=3 * unit)
        for i in range(3):
            cache.put(f"k{i}", "x" * 64)
        assert cache.get("k0") == "x" * 64   # k0 becomes most recent
        cache.put("k3", "x" * 64)            # evicts k1, the true LRU
        assert cache.get("k1") is MISS
        assert cache.get("k0") == "x" * 64
        assert cache.get("k2") == "x" * 64
        assert cache.get("k3") == "x" * 64

    def test_single_oversized_entry_is_not_kept(self, tmp_path):
        cache = ResultCache(root=tmp_path, max_bytes=8)
        cache.put("big", "x" * 4096)
        assert cache.total_bytes() <= 8
        assert cache.get("big") is MISS

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(root=tmp_path)  # max_bytes=None
        for i in range(20):
            cache.put(f"k{i}", "x" * 256)
        assert cache.entry_count() == 20

    def test_survives_corrupted_index(self, tmp_path):
        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path, max_bytes=4 * unit)
        for i in range(3):
            cache.put(f"k{i}", "x" * 64)
        index = cache.version_dir / cache_module.INDEX_NAME
        index.write_text("{not json at all", encoding="utf-8")
        # A fresh instance (new process) reads the garbage, rebuilds,
        # and keeps serving reads and bounded writes.
        fresh = ResultCache(root=tmp_path, max_bytes=4 * unit)
        assert fresh.get("k1") == "x" * 64
        fresh.put("k3", "x" * 64)
        assert fresh.entry_count() <= 4
        assert fresh.total_bytes() <= 4 * unit

    def test_corrupt_index_rebuild_preserves_mtime_recency(self, tmp_path):
        import os as os_module

        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path, max_bytes=2 * unit)
        cache.put("old", "x" * 64)
        cache.put("new", "x" * 64)
        past = 1_000_000_000
        os_module.utime(cache.version_dir / "old.pkl", (past, past))
        (cache.version_dir / cache_module.INDEX_NAME).write_text("garbage")
        fresh = ResultCache(root=tmp_path, max_bytes=2 * unit)
        fresh.put("k2", "x" * 64)   # rebuild, then evict the oldest mtime
        assert fresh.get("old") is MISS
        assert fresh.get("new") == "x" * 64

    def test_hit_recency_is_write_behind_until_flush(self, tmp_path):
        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path, max_bytes=3 * unit)
        for i in range(3):
            cache.put(f"k{i}", "x" * 64)
        assert cache.get("k0") == "x" * 64   # touch: memory only
        cache.flush()                        # ...now persisted
        fresh = ResultCache(root=tmp_path, max_bytes=3 * unit)
        fresh.put("k3", "x" * 64)
        assert fresh.get("k1") is MISS       # true LRU after the flush
        assert fresh.get("k0") == "x" * 64
        fresh.flush()
        assert ResultCache(root=tmp_path).flush() is None  # clean no-op

    def test_runner_flushes_hit_recency_per_batch(self, tmp_path):
        sweep = tiny_sweep(ParallelRunner(cache=ResultCache(root=tmp_path)))
        sweep.run_point(650.0, ClockScheme.BASELINE)
        reader = ResultCache(root=tmp_path)
        runner = ParallelRunner(cache=reader)
        tiny_sweep(runner).run_point(650.0, ClockScheme.BASELINE)
        assert runner.stats.simulated == 0   # pure disk-hit batch
        index = json.loads(
            (reader.version_dir / cache_module.INDEX_NAME).read_text())
        clocks = [meta["used"] for meta in index["entries"].values()]
        assert max(clocks) == index["clock"] > 1  # hit recency persisted

    def test_enforce_limit_reports_what_it_deleted(self, tmp_path):
        unit = self.entry_size(ResultCache(root=tmp_path), "x" * 64)
        cache = ResultCache(root=tmp_path)
        for i in range(5):
            cache.put(f"k{i}", "x" * 64)
        bounded = ResultCache(root=tmp_path, max_bytes=2 * unit)
        evicted = bounded.enforce_limit()
        assert [key for key, _ in evicted] == ["k0", "k1", "k2"]
        assert all(size > 0 for _, size in evicted)
        assert {p.stem for p in bounded.version_dir.glob("*.pkl")} \
            == {"k3", "k4"}
        assert bounded.enforce_limit() == []  # idempotent once under bound

    def test_max_bytes_env_parsing(self, monkeypatch):
        from repro.engine.cache import cache_max_bytes

        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        assert cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "1048576")
        assert cache_max_bytes() == 1048576
        assert ResultCache.default().max_bytes == 1048576
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "0")
        assert cache_max_bytes() is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.warns(RuntimeWarning, match="non-integer"):
            assert cache_max_bytes() is None


class TestCachePruneCli:
    def test_prune_output_matches_what_was_deleted(self, tmp_path,
                                                   monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(root=tmp_path)
        for i in range(4):
            cache.put(f"k{i}", "x" * 64)
        per_entry = cache.total_bytes() // 4
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(2 * per_entry))

        before = {p.stem for p in cache.version_dir.glob("*.pkl")}
        assert main(["cache", "--prune"]) == 0
        after = {p.stem for p in cache.version_dir.glob("*.pkl")}

        out = capsys.readouterr().out
        listed = [line.split()[1] for line in out.splitlines()
                  if line.startswith("evicted ") and "bytes)" in line]
        assert sorted(listed) == sorted(before - after)
        assert listed == ["k0", "k1"]  # oldest first
        assert "2 entries over the" in out
        assert f"bound: {2 * per_entry} bytes" in out

    def test_prune_unbounded_reports_nothing_evicted(self, tmp_path,
                                                     monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        ResultCache(root=tmp_path).put("k", "x" * 64)
        assert main(["cache", "--prune"]) == 0
        out = capsys.readouterr().out
        assert "evicted" not in out
        assert "bound: unbounded" in out
        assert (tmp_path / ResultCache(root=tmp_path).version_dir.name
                / "k.pkl").exists()


class TestRunnerSerial:
    def test_memoizes_identical_jobs(self):
        sweep = tiny_sweep()
        a = sweep.run_point(500.0, ClockScheme.IRAW)
        b = sweep.run_point(500.0, ClockScheme.IRAW)
        assert a is b
        assert sweep.stats.simulated == 1
        assert sweep.stats.memory_hits == 1

    def test_batch_deduplicates(self):
        sweep = tiny_sweep()
        results = sweep.run_points([(500.0, ClockScheme.IRAW)] * 3)
        assert results[0] is results[1] is results[2]
        assert sweep.stats.simulated == 1
        assert sweep.stats.deduplicated == 2

    def test_batch_preserves_submission_order(self):
        sweep = tiny_sweep()
        points = [(650.0, ClockScheme.BASELINE), (500.0, ClockScheme.IRAW),
                  (500.0, ClockScheme.BASELINE)]
        results = sweep.run_points(points)
        assert [(r.vcc_mv, r.scheme) for r in results] \
            == [(v, s.value) for v, s in points]

    def test_serial_errors_propagate_unwrapped(self):
        runner = ParallelRunner(workers=1)
        with pytest.raises(RuntimeError,
                           match="injected engine crash") as excinfo:
            runner.run([Job(kind="engine-selftest-crash")])
        assert runner.stats.errors == 1
        # Legacy traceback hygiene: the user sees the original exception
        # alone, with no internal ShardFailure plumbing chained onto it.
        assert excinfo.value.__context__ is None
        assert excinfo.value.__cause__ is None

    def test_single_job_on_parallel_runner_wraps_errors(self):
        # One pending job runs inline even with workers > 1, but the
        # runner's error contract (EngineError) must still hold.
        runner = ParallelRunner(workers=4)
        with pytest.raises(EngineError, match="failed"):
            runner.run([Job(kind="engine-selftest-crash")])

    def test_results_are_picklable(self):
        point = tiny_sweep().run_point(500.0, ClockScheme.IRAW)
        clone = pickle.loads(pickle.dumps(point))
        assert clone.cycles == point.cycles
        assert clone.point == point.point


class TestOnDiskCache:
    def test_warm_cache_rerun_performs_zero_simulations(self, tmp_path):
        points = [(650.0, ClockScheme.BASELINE), (500.0, ClockScheme.IRAW)]
        cold = tiny_sweep(ParallelRunner(cache=ResultCache(root=tmp_path)))
        first = cold.run_points(points)
        assert cold.stats.simulated == len(points)

        warm = tiny_sweep(ParallelRunner(cache=ResultCache(root=tmp_path)))
        second = warm.run_points(points)
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == len(points)
        for a, b in zip(first, second):
            assert a.cycles == b.cycles and a.ipc == b.ipc

    def test_no_cache_runner_touches_no_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        sweep = tiny_sweep()  # default runner: memory-only
        sweep.run_point(650.0, ClockScheme.BASELINE)
        assert list(tmp_path.iterdir()) == []

    def test_cache_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "here"))
        cache = ResultCache.default()
        assert cache.root == tmp_path / "here"


@pytest.mark.slow
class TestParallelExecution:
    def test_parallel_equals_serial_on_a_small_sweep(self, tmp_path):
        points = [(vcc, scheme)
                  for vcc in (650.0, 575.0, 500.0)
                  for scheme in (ClockScheme.BASELINE, ClockScheme.IRAW)]
        serial = tiny_sweep().run_points(points)
        parallel_runner = ParallelRunner(workers=2,
                                         cache=ResultCache(root=tmp_path))
        parallel = tiny_sweep(parallel_runner).run_points(points)
        for a, b in zip(serial, parallel):
            assert a.cycles == b.cycles
            assert a.instructions == b.instructions
            assert a.point == b.point
            assert a.ipc == b.ipc
        assert parallel_runner.stats.simulated == len(points)

    def test_worker_crash_propagates_as_engine_error(self):
        runner = ParallelRunner(workers=2)
        jobs = [Job(kind="engine-selftest-crash", options=(("note", str(i)),))
                for i in range(2)]
        with pytest.raises(EngineError, match="failed in a worker"):
            runner.run(jobs)
        assert runner.stats.errors >= 1

    def test_worker_crash_chains_original_exception(self):
        runner = ParallelRunner(workers=2)
        jobs = [Job(kind="engine-selftest-crash", options=(("note", str(i)),))
                for i in range(2)]
        with pytest.raises(EngineError) as excinfo:
            runner.run(jobs)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert "injected engine crash" in str(excinfo.value.__cause__)

    def test_dvfs_schedule_batch_matches_direct_scenario(self):
        from repro.analysis.dvfs import DvfsScenario

        spec = TraceSpec.synthetic(KERNEL_LIKE, seed=3, length=600)
        phases = (DvfsPhase(650.0, 300), DvfsPhase(500.0, 300))
        batched, = evaluate_schedules(
            [ScheduleSpec(trace=spec, phases=phases,
                          scheme=ClockScheme.IRAW)],
            runner=ParallelRunner(workers=2))
        direct = DvfsScenario(scheme=ClockScheme.IRAW).run(
            spec.build(), list(phases))
        assert [p.cycles for p in batched.phases] \
            == [p.cycles for p in direct.phases]
        assert batched.total_time_s == direct.total_time_s


class TestRetryCounters:
    """EngineStats.requeued/retried: the queue backend's fault ledger."""

    @staticmethod
    def queue_runner(tmp_path, progress=None, **kwargs):
        from repro.engine import QueueBackend

        kwargs.setdefault("lease_timeout", 30.0)
        kwargs.setdefault("poll_interval", 0.02)
        kwargs.setdefault("local_workers", 1)
        return ParallelRunner(backend=QueueBackend(tmp_path / "spool",
                                                   **kwargs),
                              progress=progress)

    def test_clean_batches_count_no_retries(self, tmp_path):
        runner = self.queue_runner(tmp_path)
        runner.run([Job(kind="engine-selftest-sleep",
                        options=(("note", "clean"),))])
        assert runner.stats.requeued == 0
        assert runner.stats.retried == 0

    def test_every_redispatch_is_counted_once_per_event(self, tmp_path):
        runner = self.queue_runner(tmp_path, max_retries=2)
        with pytest.raises(EngineError):
            runner.run([Job(kind="engine-selftest-crash",
                            options=(("note", "counted"),))])
        # 3 executions: the first dispatch plus max_retries re-dispatches.
        assert runner.stats.requeued == 2
        assert runner.stats.retried == 1   # one distinct shard retried
        assert runner.stats.errors == 1

    def test_serial_and_pool_backends_never_requeue(self, tmp_path):
        serial = ParallelRunner()
        with pytest.raises(RuntimeError):
            serial.run([Job(kind="engine-selftest-crash")])
        assert serial.stats.requeued == 0 and serial.stats.retried == 0

    def test_requeues_surface_in_progress_output(self, tmp_path):
        from repro.engine import QueueBackend, job_key

        class RecordingProgress:
            def __init__(self):
                self.labels = []

            def start(self, total, label=""):
                pass

            def advance(self, done, total, label=""):
                self.labels.append(label)

            def finish(self, total, label=""):
                pass

        progress = RecordingProgress()
        backend = QueueBackend(tmp_path / "spool", local_workers=1,
                               lease_timeout=30.0, poll_interval=0.02)
        # A corrupt pre-existing result forces one quarantine + requeue;
        # the 0.15 s execution keeps it in place until the first poll.
        job = Job(kind="engine-selftest-sleep",
                  options=(("note", "drill"), ("sleep_s", 0.15)))
        (backend.broker.done_dir
         / f"{job_key(job)}.pkl").write_bytes(b"garbage")
        runner = ParallelRunner(backend=backend, progress=progress)
        runner.run([job], label="fault drill")
        assert runner.stats.requeued == 1
        assert progress.labels[-1] == "fault drill [requeued 1]"


class TestEngineKnobs:
    """The shared --workers/--no-cache wiring of every front end."""

    def test_worker_count_validation(self):
        import argparse

        from repro.engine.cli import worker_count

        assert worker_count("4") == 4
        assert worker_count("0") == 0
        with pytest.raises(argparse.ArgumentTypeError, match="integer"):
            worker_count("many")
        with pytest.raises(argparse.ArgumentTypeError, match=">= 0"):
            worker_count("-1")

    def test_build_runner_honors_no_cache(self, monkeypatch, tmp_path):
        from repro.engine import build_runner

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "4096")
        hermetic = build_runner(workers=1, no_cache=True)
        assert hermetic.cache is None
        cached = build_runner(workers=2, no_cache=False)
        assert cached.workers == 2
        assert cached.cache.root == tmp_path
        assert cached.cache.max_bytes == 4096

    def test_add_engine_arguments_roundtrip(self):
        import argparse

        from repro.engine import add_engine_arguments, runner_from_args

        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        args = parser.parse_args(["--workers", "3", "--no-cache"])
        runner = runner_from_args(args)
        assert runner.workers == 3
        assert runner.cache is None
        assert runner.backend.name == "pool"   # legacy auto-selection

    def test_backend_arguments_roundtrip(self, tmp_path):
        import argparse

        from repro.engine import add_engine_arguments, runner_from_args

        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        args = parser.parse_args(["--no-cache", "--backend", "serial",
                                  "--workers", "4"])
        assert runner_from_args(args).backend.name == "serial"
        args = parser.parse_args(["--no-cache", "--backend", "queue",
                                  "--queue", str(tmp_path)])
        runner = runner_from_args(args)
        assert runner.backend.name == "queue"
        assert runner.backend.broker.root == tmp_path

    def test_queue_dir_alone_implies_the_queue_backend(self, tmp_path):
        # `--queue DIR` without `--backend queue` must not silently run
        # locally while the operator's detached workers sit idle.
        import argparse

        from repro.engine import add_engine_arguments, runner_from_args

        parser = argparse.ArgumentParser()
        add_engine_arguments(parser)
        args = parser.parse_args(["--no-cache", "--queue", str(tmp_path)])
        assert runner_from_args(args).backend.name == "queue"
        # ...and an explicit --workers N on the queue backend is called
        # out rather than silently dropped.
        args = parser.parse_args(["--no-cache", "--queue", str(tmp_path),
                                  "--workers", "4"])
        with pytest.warns(RuntimeWarning, match="workers"):
            assert runner_from_args(args).backend.name == "queue"

    def test_build_runner_resolves_backends(self, tmp_path):
        from repro.engine import build_runner

        assert build_runner(no_cache=True).backend.name == "serial"
        assert build_runner(workers=2,
                            no_cache=True).backend.name == "pool"
        runner = build_runner(no_cache=True, backend="queue",
                              queue_dir=tmp_path)
        assert runner.backend.name == "queue"

    def test_stats_hits_totals_both_tiers(self):
        from repro.engine import EngineStats

        stats = EngineStats(memory_hits=2, disk_hits=3)
        assert stats.hits == 5
        assert stats.requeued == 0 and stats.retried == 0


class TestTextProgress:
    class Stream:
        def __init__(self):
            self.chunks = []

        def write(self, text):
            self.chunks.append(text)

        def flush(self):
            pass

    def test_reports_batch_progress(self):
        from repro.engine import TextProgress

        stream = self.Stream()
        progress = TextProgress(stream=stream)
        progress.start(3, "sweep")
        progress.advance(1, 3, "sweep")
        progress.advance(3, 3, "sweep")
        progress.finish(3, "sweep")
        text = "".join(stream.chunks)
        assert "0/3 sweep" in text
        assert "1/3 sweep" in text
        assert "3/3 sweep" in text

    def test_small_batches_stay_silent(self):
        from repro.engine import TextProgress

        stream = self.Stream()
        progress = TextProgress(stream=stream, min_total=2)
        progress.start(1, "one")
        progress.advance(1, 1, "one")
        progress.finish(1, "one")
        assert stream.chunks == []

    def test_broken_stream_goes_silent(self):
        from repro.engine import TextProgress

        class Broken:
            def write(self, text):
                raise OSError("gone")

            def flush(self):  # pragma: no cover - never reached
                pass

        progress = TextProgress(stream=Broken())
        progress.start(5, "x")  # must not raise
        progress.advance(1, 5, "x")
        progress.finish(5, "x")


class TestStableTokenContainers:
    def test_dicts_and_sets_tokenize_deterministically(self):
        a = stable_token({"b": 2, "a": frozenset({3, 1})})
        b = stable_token({"a": frozenset({1, 3}), "b": 2})
        assert a == b


class TestBenchConftest:
    def test_record_table_tolerates_readonly_results_dir(self, monkeypatch,
                                                         tmp_path):
        conftest_path = (pathlib.Path(__file__).resolve().parent.parent
                         / "benchmarks" / "conftest.py")
        spec = importlib.util.spec_from_file_location("bench_conftest",
                                                      conftest_path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        blocker = tmp_path / "occupied"
        blocker.write_text("results dir path is taken by a file")
        monkeypatch.setattr(module, "RESULTS_DIR", blocker / "results")
        with pytest.warns(RuntimeWarning, match="not writable"):
            module.record_table("t1", "table body")
        module.record_table("t2", "table body")  # silent skip, no crash
        assert [name for name, _ in module._TABLES] == ["t1", "t2"]
