"""Tests for the vectorized ``mc-block`` Monte-Carlo tier.

Locks the tentpole contracts of the blocked path: the NumPy block
kernel is **bit-equal** per die to the scalar ``mc-die`` path, block
partitioning is invariant (any block size reduces to the same rows —
the hypothesis property), blocks ride the engine as ordinary cacheable
jobs through every backend, and the dispatch tier underneath (pool
chunks, broker batch claims with hardlinked heartbeats, the worker
supervisor) preserves results while amortizing per-job overhead.
"""

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.frequency import ClockScheme
from repro.engine import (
    Job,
    ParallelRunner,
    PoolBackend,
    QueueBackend,
    ResultCache,
    job_key,
    shard_jobs,
)
from repro.engine.broker import SpoolBroker, WorkerSupervisor, \
    run_worker_loop
from repro.engine.executors import execute_chunk, execute_job
from repro.errors import ConfigError
from repro.montecarlo import (
    MonteCarloConfig,
    MonteCarloSpec,
    StreamingStats,
    evaluate_die_point,
    montecarlo_jobs,
    sample_die,
    vccmin_rows,
    yield_curve_rows,
)
from repro.montecarlo.sampling import DieBlock, evaluate_block

pytestmark = pytest.mark.engine

GRID = (550.0, 450.0)
SCHEMES = ("baseline", "iraw")


def campaign_rows(dies, block, grid=GRID, schemes=SCHEMES, seed=2,
                  runner=None):
    """Reduced (yield_curve, vccmin) rows of one campaign shape."""
    mc = MonteCarloSpec(dies=dies, seed=seed, block=block)
    jobs = montecarlo_jobs(mc, grid, schemes)
    if runner is None:
        results = [execute_job(job) for job in jobs]
    else:
        results = runner.run(jobs, label="mc-block-test")
    return (yield_curve_rows(results, grid, schemes, dies, mc.confidence),
            vccmin_rows(results, grid, schemes, dies))


# ----------------------------------------------------------------------
# The vectorized kernel vs the scalar path
# ----------------------------------------------------------------------

class TestBlockKernel:
    def test_block_build_matches_scalar_sampling_bit_for_bit(self):
        config = MonteCarloConfig(seed=3)
        block = DieBlock(config, die_start=5, dies=32).build()
        scalar = [sample_die(config, die).effective_sigma(config.sigma_mv)
                  for die in range(5, 37)]
        assert block.effective.tolist() == scalar  # exact, not approx
        assert block.log_weight.tolist() == [0.0] * 32

    def test_block_build_honours_array_subset_and_zero_offset(self):
        config = MonteCarloConfig(seed=1, arrays=("RF", "DL0"),
                                  die_sigma_mv=0.0)
        block = DieBlock(config, die_start=0, dies=16).build()
        scalar = [sample_die(config, die).effective_sigma(config.sigma_mv)
                  for die in range(16)]
        assert block.effective.tolist() == scalar

    @pytest.mark.parametrize("scheme", list(ClockScheme))
    def test_block_evaluation_is_bit_equal_per_die(self, scheme):
        """The hard contract: every DiePointResult field identical
        between the NumPy kernel and the scalar path — including at
        600 mV, the IRAW deactivation boundary."""
        config = MonteCarloConfig(seed=0)
        for vcc in (600.0, 500.0, 420.0):
            result = evaluate_block(config, 0, 12, vcc, scheme)
            scalar = [evaluate_die_point(config, die, vcc, scheme)
                      for die in range(12)]
            assert list(result.die_results()) == scalar

    def test_block_arrays_are_read_only(self):
        config = MonteCarloConfig(seed=0)
        sampled = DieBlock(config, 0, 4).build()
        with pytest.raises(ValueError):
            sampled.effective[0] = 0.0
        with pytest.raises(ValueError):
            sampled.log_weight[0] = 0.0
        result = evaluate_block(config, 0, 4, 500.0, ClockScheme.IRAW)
        with pytest.raises(ValueError):
            result.slowdown[0] = 0.0

    def test_block_validation(self):
        config = MonteCarloConfig(seed=0)
        with pytest.raises(ConfigError, match="die index"):
            DieBlock(config, die_start=-1, dies=4)
        with pytest.raises(ConfigError, match="at least one die"):
            DieBlock(config, die_start=0, dies=0)
        bad_shape = DieBlock(config, 0, 4).build()
        with pytest.raises(ConfigError, match="shape"):
            evaluate_block(config, 0, 8, 500.0, ClockScheme.BASELINE,
                           sample=bad_shape)


# ----------------------------------------------------------------------
# Planning: mc-block jobs are ordinary engine units
# ----------------------------------------------------------------------

class TestBlockPlanning:
    def test_spans_tile_the_die_range_in_order(self):
        mc = MonteCarloSpec(dies=10, seed=2, block=4)
        jobs = montecarlo_jobs(mc, (500.0,), ("iraw",))
        spans = [(job.option("die_start"), job.option("dies"))
                 for job in jobs]
        assert spans == [(0, 4), (4, 4), (8, 2)]
        assert all(job.kind == "mc-block" for job in jobs)

    def test_block_size_is_part_of_the_job_key(self):
        grid, schemes = (500.0,), ("iraw",)
        four = montecarlo_jobs(MonteCarloSpec(dies=8, seed=2, block=4),
                               grid, schemes)
        eight = montecarlo_jobs(MonteCarloSpec(dies=8, seed=2, block=8),
                                grid, schemes)
        per_die = montecarlo_jobs(MonteCarloSpec(dies=8, seed=2),
                                  grid, schemes)
        keys = {job_key(job) for job in four + eight + per_die}
        assert len(keys) == len(four) + len(eight) + len(per_die)

    def test_mc_block_jobs_are_atomic_units(self):
        mc = MonteCarloSpec(dies=8, seed=2, block=4)
        jobs = montecarlo_jobs(mc, GRID, SCHEMES)
        assert all(shard_jobs(job) is None for job in jobs)

    def test_executor_validates_options(self):
        job = Job(kind="mc-block", vcc_mv=500.0, scheme="iraw")
        with pytest.raises(ConfigError, match="mc-block job needs"):
            execute_job(job)


# ----------------------------------------------------------------------
# Satellite: block partitioning invariance (hypothesis)
# ----------------------------------------------------------------------

class TestBlockPartitionInvariance:
    @given(dies=st.integers(1, 16), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_any_block_size_reduces_to_the_per_die_rows(self, dies, data):
        """Property: for arbitrary campaign sizes and block sizes, the
        blocked plan yields the same per-die samples and the same
        reduced yield_curve / vccmin_dist rows as the per-die plan —
        the block is an evaluation batch, never a sampling contract."""
        block = data.draw(st.integers(1, dies), label="block")
        reference = campaign_rows(dies, None, seed=5)
        assert campaign_rows(dies, block, seed=5) == reference

    def test_named_block_sizes_match_per_die(self):
        """The spec-level anchors: 1, 7, 64 (= dies) on a 64-die
        campaign, plus per-die sample equality block by block."""
        reference = campaign_rows(64, None)
        for block in (1, 7, 64):
            assert campaign_rows(64, block) == reference
        mc = MonteCarloSpec(dies=64, seed=2, block=7)
        blocked = [execute_job(job)
                   for job in montecarlo_jobs(mc, (500.0,), ("iraw",))]
        unpacked = [die for result in blocked
                    for die in result.die_results()]
        scalar = [execute_job(job)
                  for job in montecarlo_jobs(MonteCarloSpec(dies=64, seed=2),
                                             (500.0,), ("iraw",))]
        assert unpacked == scalar


# ----------------------------------------------------------------------
# Backends: blocked campaigns through serial / pool / queue + cache
# ----------------------------------------------------------------------

class TestBlockBackends:
    DIES = 64
    BLOCK = 16

    def test_serial_pool_and_queue_are_bit_identical(self, tmp_path):
        serial = campaign_rows(self.DIES, self.BLOCK,
                               runner=ParallelRunner(workers=1))
        pool = campaign_rows(self.DIES, self.BLOCK, runner=ParallelRunner(
            backend=PoolBackend(workers=2, batch=3)))
        queue = campaign_rows(self.DIES, self.BLOCK, runner=ParallelRunner(
            backend=QueueBackend(tmp_path / "spool", local_workers=2,
                                 claim_batch=4, lease_timeout=60.0,
                                 poll_interval=0.01)))
        assert serial == pool == queue
        assert serial == campaign_rows(self.DIES, None)  # per-die path

    def test_warm_cache_rerun_simulates_nothing(self, tmp_path):
        cold = ParallelRunner(workers=1,
                              cache=ResultCache(root=tmp_path / "cache"))
        reference = campaign_rows(self.DIES, self.BLOCK, runner=cold)
        # 4 blocks x 2 Vcc x 2 schemes, each counted as one unit.
        assert cold.stats.simulated == 16
        warm = ParallelRunner(workers=1,
                              cache=ResultCache(root=tmp_path / "cache"))
        assert campaign_rows(self.DIES, self.BLOCK, runner=warm) \
            == reference
        assert warm.stats.simulated == 0

    def test_streaming_extend_matches_repeated_add(self):
        values = [0.5, -1.25, 3.0, 3.0, 0.0, 7.5, -2.0]
        one_by_one = StreamingStats()
        for value in values:
            one_by_one.add(value)
        batched = StreamingStats()
        batched.extend(values[:3])
        batched.extend([])
        batched.extend(values[3:])
        assert batched.as_dict() == one_by_one.as_dict()
        assert batched.count == one_by_one.count


# ----------------------------------------------------------------------
# Dispatch tier: pool chunks, broker batch claims, the supervisor
# ----------------------------------------------------------------------

class TestPoolChunking:
    def test_auto_chunk_size_scales_with_the_batch(self):
        backend = PoolBackend(workers=2)
        assert backend._chunk_size(4) == 1       # tiny batch: legacy path
        assert backend._chunk_size(160) == 10    # ~8 chunks per worker
        assert backend._chunk_size(100_000) == 32  # capped
        assert PoolBackend(workers=2, batch=5)._chunk_size(100_000) == 5

    def test_batch_validation(self):
        with pytest.raises(ConfigError, match="batch"):
            PoolBackend(workers=2, batch=0)

    def test_execute_chunk_isolates_member_failures(self):
        good = Job(kind="engine-selftest-sleep", vcc_mv=500.0,
                   scheme="iraw", options=(("note", "ok"),))
        bad = Job(kind="engine-selftest-crash", vcc_mv=500.0,
                  scheme="iraw", options=(("note", "boom"),))
        outcomes = execute_chunk([good, bad, good])
        assert [tag for tag, _ in outcomes] == ["ok", "err", "ok"]
        assert outcomes[0][1] == {"note": "ok"}
        assert isinstance(outcomes[1][1], RuntimeError)


def spool_jobs(broker, count):
    """Spool ``count`` trivial self-test jobs; returns their keys."""
    keys = []
    for index in range(count):
        job = Job(kind="engine-selftest-sleep", vcc_mv=500.0,
                  scheme="iraw", options=(("note", f"n{index}"),))
        key = job_key(job)
        assert broker.submit(key, job)
        keys.append(key)
    return keys


class TestClaimBatch:
    def test_claims_share_one_hardlinked_lease_inode(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=60.0)
        keys = spool_jobs(broker, 5)
        claims = broker.claim_batch("w1", limit=3)
        assert len(claims) == 3
        assert {claim.key for claim in claims} <= set(keys)
        inodes = {os.stat(claim.heartbeat_path).st_ino
                  for claim in claims}
        assert len(inodes) == 1  # one utime refreshes the whole batch
        assert all(claim.owns() for claim in claims)
        # The rest stayed pending; a second batch picks them up.
        rest = broker.claim_batch("w2", limit=10)
        assert len(rest) == 2

    def test_limit_one_degrades_to_claim_next(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=60.0)
        spool_jobs(broker, 2)
        assert len(broker.claim_batch("w", limit=1)) == 1
        assert len(broker.claim_batch("w", limit=0)) == 1  # <= 1: next
        assert broker.claim_batch("w", limit=5) == []  # spool empty

    def test_worker_loop_drains_in_batches(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=60.0)
        keys = spool_jobs(broker, 7)
        completed, failed = run_worker_loop(
            broker, poll_interval=0.01, idle_exit=0.05, claim_batch=3)
        assert (completed, failed) == (7, 0)
        done = {path.stem for path in broker.done_dir.glob("*.pkl")}
        assert done == set(keys)

    def test_worker_loop_rejects_bad_claim_batch(self, tmp_path):
        broker = SpoolBroker(tmp_path / "spool", lease_timeout=60.0)
        with pytest.raises(ConfigError, match="claim_batch"):
            run_worker_loop(broker, claim_batch=0, idle_exit=0.01)


class _ThreadWorker:
    """Supervisor test double: a worker 'process' backed by a thread."""

    def __init__(self, broker):
        self._done = threading.Event()
        self._thread = threading.Thread(target=self._serve,
                                        args=(broker,), daemon=True)
        self._thread.start()

    def _serve(self, broker):
        try:
            run_worker_loop(broker, poll_interval=0.01, idle_exit=0.05,
                            claim_batch=2)
        finally:
            self._done.set()

    def is_alive(self):
        return self._thread.is_alive()

    @property
    def exitcode(self):
        return 0 if self._done.is_set() else None

    def join(self, timeout=None):
        self._thread.join(timeout)


class _CrashedWorker:
    """Supervisor test double that is already dead with a bad exit."""

    exitcode = 1

    def is_alive(self):
        return False

    def join(self, timeout=None):
        pass


class TestWorkerSupervisor:
    def test_fleet_sizes_to_queue_depth(self, tmp_path):
        supervisor = WorkerSupervisor(tmp_path / "spool", max_workers=3,
                                      shards_per_worker=4,
                                      spawn=lambda: _ThreadWorker(None))
        assert supervisor.desired(0) == 0
        assert supervisor.desired(1) == 1
        assert supervisor.desired(4) == 1
        assert supervisor.desired(5) == 2
        assert supervisor.desired(1000) == 3  # clamped to max_workers
        floor = WorkerSupervisor(tmp_path / "spool2", max_workers=3,
                                 min_workers=2, shards_per_worker=4,
                                 spawn=lambda: _ThreadWorker(None))
        assert floor.desired(0) == 2

    def test_supervises_the_spool_to_drained(self, tmp_path):
        supervisor = WorkerSupervisor(
            tmp_path / "spool", max_workers=2, shards_per_worker=4,
            poll_interval=0.02,
            spawn=lambda: _ThreadWorker(supervisor.broker))
        keys = spool_jobs(supervisor.broker, 7)
        status = supervisor.run()
        assert status["backlog"] == 0
        assert supervisor.spawned == 2  # ceil(7 / 4), clamped to max
        assert supervisor.crashed == 0
        done = {p.stem for p in supervisor.broker.done_dir.glob("*.pkl")}
        assert done == set(keys)

    def test_crash_loop_exhausts_the_respawn_budget(self, tmp_path):
        supervisor = WorkerSupervisor(tmp_path / "spool", max_workers=1,
                                      max_respawns=2,
                                      spawn=lambda: _CrashedWorker())
        spool_jobs(supervisor.broker, 4)
        supervisor.poll_once()  # spawns the first (already dead) worker
        supervisor.poll_once()  # crash 1 charged, respawn
        supervisor.poll_once()  # crash 2 charged, respawn
        with pytest.raises(RuntimeError, match="respawn budget"):
            supervisor.poll_once()
        assert supervisor.crashed == 3

    def test_validation(self, tmp_path):
        root = tmp_path / "spool"
        with pytest.raises(ConfigError, match="max_workers"):
            WorkerSupervisor(root, max_workers=0)
        with pytest.raises(ConfigError, match="min_workers"):
            WorkerSupervisor(root, max_workers=2, min_workers=3)
        with pytest.raises(ConfigError, match="shards_per_worker"):
            WorkerSupervisor(root, max_workers=1, shards_per_worker=0)
        with pytest.raises(ConfigError, match="claim_batch"):
            WorkerSupervisor(root, max_workers=1, claim_batch=0)


# ----------------------------------------------------------------------
# CLI: the supervisor and batch flags end to end (empty spool)
# ----------------------------------------------------------------------

class TestWorkerCli:
    def test_supervise_exits_cleanly_on_an_empty_spool(self, tmp_path,
                                                       capsys):
        from repro.cli import main

        assert main(["worker", "--queue", str(tmp_path / "spool"),
                     "--supervise", "--concurrency", "2"]) == 0
        captured = capsys.readouterr()
        assert "supervising" in captured.err
        assert "spawned 0 worker(s)" in captured.out

    def test_claim_batch_flag_is_validated(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["worker", "--queue", str(tmp_path / "spool"),
                     "--claim-batch", "0", "--max-shards", "0"])
        assert code == 2
        assert "--claim-batch" in capsys.readouterr().err
