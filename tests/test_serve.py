"""Lifecycle tests of the experiment service (``repro serve``).

Every test runs a real :class:`CampaignServer` on an ephemeral port and
talks to it through :class:`ServeClient` — the same HTTP surface and
client the CLI front ends use — so the contract under test is the wire
contract: golden results round-trip bit-identically, overlapping
campaigns share simulations, the backlog declines with 429 +
Retry-After, malformed specs answer 400 with their ConfigError text,
and a restarted server resumes interrupted campaigns from its durable
registry.

Admission-control tests build the :class:`Collector` by hand and never
start its worker thread, so the backlog is frozen at whatever was
admitted — no sleeps, no races.
"""

import pathlib
import sys
import threading

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from test_golden import GOLDEN_SPEC, assert_matches_golden, \
    load_golden  # noqa: E402  (sibling golden helpers)

from repro.engine import ParallelRunner, ResultCache
from repro.errors import ConfigError
from repro.experiments import Experiment, ExperimentSpec
from repro.serve import (
    CampaignRegistry,
    CampaignServer,
    Collector,
    ServeClient,
    ServeError,
    create_server,
)
from repro.workloads.profiles import KERNEL_LIKE

pytestmark = pytest.mark.engine


def small_spec(name: str, vcc=(500.0,), table1_vcc: float = 500.0,
               artifacts=("table1",)) -> ExperimentSpec:
    """A one-profile campaign small enough for every test to afford."""
    return ExperimentSpec(name=name, profiles=(KERNEL_LIKE.name,),
                          trace_length=200, vcc_mv=tuple(vcc),
                          table1_vcc_mv=table1_vcc, artifacts=artifacts)


class ServerHarness:
    """One in-process server + client on an ephemeral port."""

    def __init__(self, tmp_path, *, runner=None, state_dir=None,
                 resume=True):
        self.server = create_server(
            "127.0.0.1", 0, runner=runner or ParallelRunner(),
            state_dir=state_dir or tmp_path / "serve-state",
            resume=resume)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        host, port = self.server.server_address[:2]
        self.client = ServeClient(f"http://{host}:{port}")
        self.stopped = False

    def stop(self):
        if not self.stopped:
            self.stopped = True
            self.server.stop()
            self.thread.join(timeout=10.0)


@pytest.fixture
def harness(tmp_path):
    """Factory fixture: start servers, stop every survivor at teardown."""
    started = []

    def start(**kwargs) -> ServerHarness:
        instance = ServerHarness(tmp_path, **kwargs)
        started.append(instance)
        return instance

    yield start
    for instance in started:
        instance.stop()


class TestGoldenRoundTrip:
    """The acceptance path: the served campaign reproduces the golden
    Table 1 bit-identically through the HTTP API."""

    def test_served_campaign_reproduces_goldens(self, harness):
        service = harness()
        client = service.client
        submitted = client.submit(GOLDEN_SPEC)
        status = client.wait(submitted["id"], timeout_s=300.0)
        assert status["state"] == "done"
        assert status["done_jobs"] == status["total_jobs"] > 0
        assert status["stats"].get("simulated", 0) > 0

        assert_matches_golden(client.artifact(submitted["id"], "table1"),
                              load_golden("table1"), "table1")
        assert_matches_golden(
            client.artifact(submitted["id"], "fig11b")[0],
            load_golden("fig11b_500mv"), "fig11b_500mv")

    def test_served_resultset_is_bit_identical_to_local_run(self, harness):
        spec = small_spec("serve-bitident", vcc=(500.0, 480.0),
                          artifacts=("table1", "fig11b"))
        service = harness()
        submitted = service.client.submit(spec)
        served = service.client.result_set(submitted["id"],
                                           timeout_s=120.0)
        direct = Experiment(spec).run()
        assert served.to_csv() == direct.to_csv()
        assert served.to_json() == direct.to_json()

    def test_row_stream_cursor_only_appends(self, harness):
        spec = small_spec("serve-cursor", vcc=(500.0, 480.0))
        service = harness()
        campaign_id = service.client.submit(spec)["id"]
        service.client.wait(campaign_id, timeout_s=120.0)
        rows, info = service.client.results(campaign_id, after=0)
        assert info["next_after"] == len(rows) > 0
        tail, tail_info = service.client.results(campaign_id, after=2)
        assert tail == rows[2:]
        assert tail_info["next_after"] == len(rows)
        beyond, _ = service.client.results(campaign_id,
                                           after=info["next_after"])
        assert beyond == []


class TestCrossCampaignDedup:
    """Concurrent campaigns sharing grid points simulate each shared
    job exactly once — the engine's identity rules are the scheduler."""

    def test_overlapping_campaigns_share_simulations(self, harness):
        spec_a = small_spec("dedup-a", vcc=(500.0, 480.0),
                            table1_vcc=480.0)
        spec_b = small_spec("dedup-b", vcc=(480.0, 460.0),
                            table1_vcc=480.0)

        # What the union costs when one engine resolves both plans.
        union = ParallelRunner()
        Experiment(spec_a, runner=union).run()
        Experiment(spec_b, runner=union).run()
        expected = union.stats.simulated

        # And what one campaign costs alone (to prove sharing happened).
        alone = ParallelRunner()
        Experiment(spec_a, runner=alone).run()
        assert expected < 2 * alone.stats.simulated

        runner = ParallelRunner()
        service = harness(runner=runner)
        id_a = service.client.submit(spec_a)["id"]
        id_b = service.client.submit(spec_b)["id"]
        assert service.client.wait(id_a, timeout_s=120.0)["state"] == "done"
        assert service.client.wait(id_b, timeout_s=120.0)["state"] == "done"
        assert runner.stats.simulated == expected

        metrics = service.client.metrics()
        assert metrics["engine"]["simulated"] == expected
        assert metrics["backlog_jobs"] == 0


class TestAdmissionControl:
    """Back-pressure and quota declines, tested against a frozen
    collector (worker thread never started)."""

    @pytest.fixture
    def frozen(self, tmp_path):
        servers = []

        def start(**collector_kwargs):
            registry = CampaignRegistry(tmp_path / "frozen-state")
            collector = Collector(ParallelRunner(), registry,
                                  **collector_kwargs)
            server = CampaignServer(("127.0.0.1", 0), collector)
            threading.Thread(target=server.serve_forever,
                             daemon=True).start()
            servers.append(server)
            host, port = server.server_address[:2]
            return server, ServeClient(f"http://{host}:{port}")

        yield start
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_backlog_full_returns_429_with_retry_after(self, frozen):
        _, client = frozen(backlog_jobs=1, retry_after_s=7.0)
        first = client.submit(small_spec("bp-first"))
        assert first["state"] == "planned"
        with pytest.raises(ServeError) as declined:
            client.submit(small_spec("bp-second"))
        assert declined.value.status == 429
        assert declined.value.retry_after_s == 7.0
        assert "backlog is full" in str(declined.value)

    def test_tenant_quota_declines_only_that_tenant(self, frozen):
        _, client = frozen(tenant_jobs=4, backlog_jobs=10_000,
                           retry_after_s=3.0)
        client.submit(small_spec("quota-first"))
        with pytest.raises(ServeError) as declined:
            client.submit(small_spec("quota-second"))
        assert declined.value.status == 429
        assert declined.value.retry_after_s == 3.0
        other = ServeClient(client.url, tenant="other")
        admitted = other.submit(small_spec("quota-other"))
        assert admitted["tenant"] == "other"

    def test_oversized_spec_returns_413(self, frozen):
        _, client = frozen(max_spec_jobs=2)
        with pytest.raises(ServeError) as declined:
            client.submit(small_spec("too-big"))
        assert declined.value.status == 413
        assert "per-campaign cap" in str(declined.value)

    def test_artifact_before_done_returns_409(self, frozen):
        _, client = frozen()
        pending = client.submit(small_spec("pending"))
        with pytest.raises(ServeError) as refused:
            client.artifact(pending["id"], "table1")
        assert refused.value.status == 409
        assert "artifacts render once it is done" in str(refused.value)

    def test_cancel_removes_campaign_from_backlog(self, frozen):
        server, client = frozen(backlog_jobs=1)
        doomed = client.submit(small_spec("doomed"))
        with pytest.raises(ServeError):
            client.submit(small_spec("blocked"))
        cancelled = client.cancel(doomed["id"])
        assert cancelled["state"] == "cancelled"
        assert server.collector.backlog() == 0
        admitted = client.submit(small_spec("now-admitted"))
        assert admitted["state"] == "planned"


class TestErrorContract:
    def test_malformed_toml_returns_400_with_config_error(self, harness):
        service = harness()
        with pytest.raises(ServeError) as rejected:
            service.client.submit(b"this is ] not toml at all")
        assert rejected.value.status == 400
        assert str(rejected.value)  # carries the ConfigError text

    def test_unknown_artifact_name_in_spec_returns_400(self, harness):
        service = harness()
        with pytest.raises(ServeError) as rejected:
            service.client.submit(b'{"artifacts": ["table9000"]}')
        assert rejected.value.status == 400
        assert "table9000" in str(rejected.value)

    def test_unknown_campaign_returns_404(self, harness):
        service = harness()
        with pytest.raises(ServeError) as missing:
            service.client.status("no-such-campaign")
        assert missing.value.status == 404
        assert "no-such-campaign" in str(missing.value)

    def test_unknown_endpoint_returns_404(self, harness):
        service = harness()
        with pytest.raises(ServeError) as missing:
            service.client._json("GET", "/v2/nope")
        assert missing.value.status == 404

    def test_bad_cursor_returns_400(self, harness):
        service = harness()
        campaign_id = service.client.submit(small_spec("cursor"))["id"]
        service.client.wait(campaign_id, timeout_s=120.0)
        with pytest.raises(ServeError) as rejected:
            service.client._request(
                "GET", f"/v1/campaigns/{campaign_id}/results?after=soon")
        assert rejected.value.status == 400


class TestDryRun:
    def test_dry_run_previews_without_admitting(self, harness):
        service = harness()
        preview = service.client.submit(small_spec("preview"),
                                        dry_run=True)
        assert preview["dry_run"] is True
        assert preview["planned_jobs"] > 0
        assert preview["unique_jobs"] <= preview["planned_jobs"]
        assert {"kind", "key", "label", "origin"} <= \
            set(preview["jobs"][0])
        assert service.client.campaigns() == []
        assert service.client.metrics()["engine"]["simulated"] == 0


class TestRestartResume:
    def test_interrupted_campaign_resumes_after_restart(self, harness,
                                                        tmp_path):
        state_dir = tmp_path / "resume-state"
        cache = ResultCache(root=tmp_path / "resume-cache")
        spec = small_spec("resumed")

        # A campaign the dying server never got to finish: persisted as
        # ``running``, with a warm result cache standing in for the
        # work it had already done.
        Experiment(spec, runner=ParallelRunner(cache=cache)).run()
        registry = CampaignRegistry(state_dir)
        interrupted = registry.new_record(
            name=spec.name, tenant="default", spec=spec.to_dict(),
            total_jobs=0)
        interrupted.state = "running"
        registry.save(interrupted)

        runner = ParallelRunner(cache=ResultCache(
            root=tmp_path / "resume-cache"))
        service = harness(runner=runner, state_dir=state_dir)
        status = service.client.wait(interrupted.id, timeout_s=120.0)
        assert status["state"] == "done"
        assert status["total_jobs"] > 0
        # The replay was answered by the shared result cache.
        assert runner.stats.simulated == 0
        assert_matches_golden(
            service.client.artifact(interrupted.id, "table1"),
            Experiment(spec).artifact("table1"), "table1")

    def test_finished_campaigns_survive_restart(self, harness, tmp_path):
        state_dir = tmp_path / "durable-state"
        first = harness(state_dir=state_dir)
        campaign_id = first.client.submit(small_spec("durable"))["id"]
        rows_before = first.client.result_set(
            campaign_id, timeout_s=120.0)
        first.stop()

        second = harness(state_dir=state_dir)
        status = second.client.status(campaign_id)
        assert status["state"] == "done"
        served = second.client.result_set(campaign_id, wait=False)
        assert served.to_csv() == rows_before.to_csv()
        assert "table1" in status["artifacts"]


class TestCollectorValidation:
    def test_bad_bounds_are_config_errors(self, tmp_path):
        registry = CampaignRegistry(tmp_path / "cfg")
        with pytest.raises(ConfigError):
            Collector(ParallelRunner(), registry, chunk_jobs=0)
        with pytest.raises(ConfigError):
            Collector(ParallelRunner(), registry, backlog_jobs=0)


class TestPrometheusExposition:
    """``GET /v1/metrics`` content negotiation: JSON stays the default,
    an explicit ``Accept: text/plain`` gets the Prometheus text format."""

    def _scrape(self, client, accept):
        import urllib.request
        request = urllib.request.Request(f"{client.url}/v1/metrics",
                                         headers={"Accept": accept})
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return (response.headers.get("Content-Type"),
                    response.read().decode("utf-8"))

    def test_text_plain_negotiates_prometheus(self, harness):
        service = harness()
        content_type, body = self._scrape(service.client, "text/plain")
        assert content_type.startswith("text/plain")
        assert "# TYPE repro_engine_simulated_total counter" in body
        assert "repro_serve_backlog_jobs 0" in body
        # Well-formedness: every non-comment line is NAME[{LABELS}] VALUE.
        import re
        sample = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
                            r"(\{[^}]*\})? -?[0-9.e+E-]+$")
        lines = body.strip().splitlines()
        assert lines, "empty exposition"
        for line in lines:
            if not line.startswith("#"):
                assert sample.match(line), f"malformed sample: {line!r}"

    def test_json_remains_the_default(self, harness):
        service = harness()
        content_type, body = self._scrape(service.client, "*/*")
        assert "json" in content_type
        import json as json_module
        payload = json_module.loads(body)
        assert payload["engine"]["simulated"] == 0
        assert payload["backlog_jobs"] == 0

    def test_scrape_reflects_engine_counters(self, harness):
        service = harness()
        campaign_id = service.client.submit(
            small_spec("prom-counters"))["id"]
        service.client.wait(campaign_id, timeout_s=120.0)
        _, body = self._scrape(service.client, "text/plain")
        for line in body.splitlines():
            if line.startswith("repro_engine_simulated_total "):
                assert int(line.rsplit(" ", 1)[1]) > 0
                break
        else:  # pragma: no cover - assertion carrier
            raise AssertionError("repro_engine_simulated_total not exposed")
        assert 'repro_serve_campaigns{state="done"} 1' in body
