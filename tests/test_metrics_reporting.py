"""Tests for aggregation metrics and ASCII reporting."""

import pytest

from repro.analysis.metrics import PointResult, geometric_mean, speedup
from repro.analysis.reporting import format_table, format_value, percent
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.pipeline.stats import SimulationResult, StallStats


def make_result(cycles, instructions=1000, name="t"):
    return SimulationResult(
        trace_name=name, config_name="c", instructions=instructions,
        cycles=cycles, stalls=StallStats(), iraw_violations=0,
        value_mismatches=0, branch_mispredicts=0, branches=1)


def make_point(vcc, scheme, cycles_list):
    solver = FrequencySolver()
    point = solver.operating_point(vcc, scheme)
    results = tuple(make_result(c, name=f"t{i}")
                    for i, c in enumerate(cycles_list))
    return PointResult(vcc_mv=vcc, scheme=scheme.value, point=point,
                       results=results)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_empty_is_one(self):
        assert geometric_mean([]) == 1.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestPointResult:
    def test_aggregate_ipc(self):
        point = make_point(500.0, ClockScheme.BASELINE, [1000, 3000])
        assert point.ipc == pytest.approx(2000 / 4000)

    def test_execution_time_uses_frequency(self):
        point = make_point(500.0, ClockScheme.BASELINE, [1000])
        expected = 1000 / (point.point.frequency_mhz * 1e6)
        assert point.execution_time_s == pytest.approx(expected)


class TestSpeedup:
    def test_frequency_only_speedup(self):
        base = make_point(500.0, ClockScheme.BASELINE, [1000, 1000])
        iraw = make_point(500.0, ClockScheme.IRAW, [1000, 1000])
        gain = speedup(base, iraw)
        expected = (iraw.point.frequency_mhz / base.point.frequency_mhz)
        assert gain == pytest.approx(expected)

    def test_ipc_loss_reduces_speedup(self):
        base = make_point(500.0, ClockScheme.BASELINE, [1000])
        slow_iraw = make_point(500.0, ClockScheme.IRAW, [1200])
        gain = speedup(base, slow_iraw)
        ratio = slow_iraw.point.frequency_mhz / base.point.frequency_mhz
        assert gain == pytest.approx(ratio * 1000 / 1200)

    def test_total_time_mode(self):
        base = make_point(500.0, ClockScheme.BASELINE, [1000, 3000])
        iraw = make_point(500.0, ClockScheme.IRAW, [1000, 3000])
        assert speedup(base, iraw, per_trace_geomean=False) > 1.0


class TestReporting:
    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.1234) == "0.1234"
        assert format_value(12.3) == "12.30"
        assert format_value(1234.0) == "1234"
        assert format_value("x") == "x"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "long-value"}, {"a": 22, "b": "x"}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_percent(self):
        assert percent(0.4812) == "48.1%"
        assert percent(0.4812, digits=2) == "48.12%"


class TestFormatValueEdgeCases:
    def test_nan_and_inf_render_legibly(self):
        assert format_value(float("nan")) == "nan"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("-inf")) == "-inf"

    def test_negative_magnitude_bands(self):
        assert format_value(-1234.5) == "-1234"
        assert format_value(-12.345) == "-12.35"
        assert format_value(-0.5) == "-0.5000"

    def test_zero(self):
        assert format_value(0.0) == "0.0000"

    def test_bool_beats_float_branch(self):
        # bool is an int subclass; it must never hit a numeric format.
        assert format_value(True) == "yes"
        assert format_value(False) == "no"


class TestFormatTableEdgeCases:
    def test_empty_with_known_columns_emits_header(self):
        text = format_table([], columns=["a", "bb"], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[1] == "a | bb"
        assert lines[-1] == "(no rows)"

    def test_empty_without_columns_or_title(self):
        assert format_table([]) == "table: (no rows)"

    def test_missing_cells_render_empty(self):
        text = format_table([{"a": 1, "b": 2}, {"a": 3}])
        last = text.splitlines()[-1]
        assert last.split("|")[1].strip() == ""

    def test_nonfinite_cells_do_not_crash_alignment(self):
        text = format_table([{"x": float("nan"), "y": float("inf")}])
        assert "nan" in text and "inf" in text


class TestSpeedupEdgeCases:
    def test_zero_cycle_candidate_raises(self):
        base = make_point(500.0, ClockScheme.BASELINE, [1000])
        broken = make_point(500.0, ClockScheme.IRAW, [0])
        with pytest.raises(ValueError, match="zero-cycle"):
            speedup(base, broken)
        with pytest.raises(ValueError, match="zero-cycle"):
            speedup(base, broken, per_trace_geomean=False)

    def test_zero_cycle_baseline_raises(self):
        broken = make_point(500.0, ClockScheme.BASELINE, [0])
        candidate = make_point(500.0, ClockScheme.IRAW, [1000])
        with pytest.raises(ValueError, match="zero-cycle"):
            speedup(broken, candidate)
        with pytest.raises(ValueError, match="undefined"):
            speedup(broken, candidate, per_trace_geomean=False)

    def test_mismatched_populations_raise(self):
        base = make_point(500.0, ClockScheme.BASELINE, [1000, 1000])
        candidate = make_point(500.0, ClockScheme.IRAW, [1000])
        with pytest.raises(ValueError, match="matching populations"):
            speedup(base, candidate)

    def test_empty_population_is_neutral(self):
        """Zero traces: no ratios, geometric mean defaults to 1.0."""
        base = make_point(500.0, ClockScheme.BASELINE, [])
        candidate = make_point(500.0, ClockScheme.IRAW, [])
        assert speedup(base, candidate) == 1.0

    def test_zero_ipc_point_reports_zero(self):
        point = make_point(500.0, ClockScheme.BASELINE, [])
        assert point.ipc == 0.0
        assert point.mean_iraw_delay_fraction == 0.0
        assert point.stall_fraction(["rf"]) == 0.0


class TestResultSerialization:
    def test_to_dict_round_trips_through_json(self):
        import json

        from repro.core.config import IrawConfig
        from repro.pipeline.core import simulate
        from repro.workloads.kernels import kernel_trace

        trace, _ = kernel_trace("fib", 12)
        result = simulate(trace, IrawConfig(stabilization_cycles=1))
        payload = result.to_dict()
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["instructions"] == len(trace)
        assert restored["iraw_violations"] == 0
        assert restored["ipc"] == pytest.approx(result.ipc)
        assert "stall_breakdown" in restored
