"""Tests for stall accounting structures."""

from repro.pipeline.stats import (
    IRAW_STALL_REASONS,
    StallReason,
    StallStats,
)


class TestStallStats:
    def test_all_reasons_start_at_zero(self):
        stats = StallStats()
        assert set(stats.cycles) == set(StallReason)
        assert stats.total_stall_cycles == 0

    def test_charge_accumulates(self):
        stats = StallStats()
        stats.charge(StallReason.RF_IRAW_BUBBLE)
        stats.charge(StallReason.RF_IRAW_BUBBLE, 3)
        assert stats.cycles[StallReason.RF_IRAW_BUBBLE] == 4
        assert stats.total_stall_cycles == 4

    def test_iraw_subset(self):
        """Only mechanism-induced reasons count as IRAW stalls."""
        stats = StallStats()
        stats.charge(StallReason.RF_DEPENDENCY, 10)
        stats.charge(StallReason.IQ_GATE, 2)
        stats.charge(StallReason.STABLE_REPAIR, 1)
        assert stats.iraw_stall_cycles == 3
        assert stats.total_stall_cycles == 13

    def test_iraw_reason_membership(self):
        assert StallReason.RF_IRAW_BUBBLE in IRAW_STALL_REASONS
        assert StallReason.DL0_FILL_GUARD in IRAW_STALL_REASONS
        assert StallReason.RF_DEPENDENCY not in IRAW_STALL_REASONS
        assert StallReason.FU_BUSY not in IRAW_STALL_REASONS
        assert StallReason.WRITE_PORT not in IRAW_STALL_REASONS

    def test_reason_values_are_stable(self):
        """Report keys are part of the public API."""
        assert StallReason.RF_IRAW_BUBBLE.value == "rf_iraw_bubble"
        assert StallReason.IQ_GATE.value == "iq_gate"
        assert StallReason.STABLE_REPAIR.value == "stable_repair"
