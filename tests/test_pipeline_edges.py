"""Edge-case behaviour of the pipeline model."""

import pytest

from repro.core.config import IrawConfig
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode
from repro.memory.hierarchy import MemoryConfig
from repro.pipeline.core import CoreSetup, InOrderCore, simulate
from repro.pipeline.resources import PipelineParams
from repro.workloads.trace import Trace


def alu(index, dest=1, srcs=(), pc=None):
    return MicroOp(index, Opcode.ADD, dest=dest, srcs=srcs, imm=1,
                   pc=0x1000 + 4 * index if pc is None else pc)


class TestDegenerateTraces:
    def test_single_instruction(self):
        result = simulate(Trace("one", [alu(0)]), IrawConfig.disabled(),
                          check_values=False)
        assert result.instructions == 1
        assert result.cycles > 0

    def test_all_nops(self):
        ops = [MicroOp(i, Opcode.NOP, pc=0x1000 + 4 * i) for i in range(50)]
        result = simulate(Trace("nops", ops),
                          IrawConfig(stabilization_cycles=1),
                          check_values=False)
        assert result.instructions == 50
        assert result.iraw_violations == 0

    def test_serial_dependency_chain(self):
        """Every op depends on the previous one: IPC <= 1 by construction."""
        ops = [alu(0, dest=1)]
        for i in range(1, 60):
            ops.append(alu(i, dest=1, srcs=(1,)))
        result = simulate(Trace("chain", ops), IrawConfig.disabled(),
                          check_values=False)
        assert result.ipc <= 1.0

    def test_store_only_stream(self):
        ops = [MicroOp(i, Opcode.ST, srcs=(1, 2), mem_addr=0x4000 + 8 * i,
                       pc=0x1000 + 4 * i) for i in range(40)]
        result = simulate(Trace("stores", ops),
                          IrawConfig(stabilization_cycles=1),
                          check_values=False)
        assert result.instructions == 40
        assert result.iraw_violations == 0

    def test_load_only_stream_same_line(self):
        ops = [MicroOp(i, Opcode.LD, dest=1 + (i % 8), srcs=(9,),
                       mem_addr=0x4000, pc=0x1000 + 4 * i)
               for i in range(40)]
        result = simulate(Trace("loads", ops),
                          IrawConfig(stabilization_cycles=1),
                          check_values=False)
        assert result.instructions == 40


class TestConfigurationVariants:
    def test_narrow_machine(self):
        params = PipelineParams(fetch_width=1, alloc_width=1,
                                issue_window=1, iq_size=8,
                                fetch_buffer_size=2)
        ops = [alu(i, dest=1 + (i % 8)) for i in range(60)]
        result = simulate(Trace("narrow", ops), IrawConfig.disabled(),
                          params=params, check_values=False)
        assert result.ipc <= 1.0

    def test_tiny_caches_still_correct(self):
        memory = MemoryConfig(dl0_size=1024, dl0_assoc=2,
                              il0_size=1024, il0_assoc=2,
                              ul1_size=4096, ul1_assoc=2,
                              dram_latency_cycles=50)
        from repro.workloads.kernels import kernel_trace
        trace, _ = kernel_trace("memcpy", 64)
        result = simulate(trace, IrawConfig(stabilization_cycles=1),
                          memory=memory)
        assert result.value_mismatches == 0
        assert result.iraw_violations == 0
        assert result.memory_stats["DL0"]["miss_rate"] > 0.05

    def test_max_stabilization_respected(self):
        with pytest.raises(Exception):
            IrawConfig(stabilization_cycles=3, max_stabilization_cycles=2)

    def test_core_is_single_use_but_reconstructable(self):
        trace = Trace("t", [alu(i, dest=1 + (i % 4)) for i in range(30)])
        setup = CoreSetup(iraw=IrawConfig(stabilization_cycles=1),
                          check_values=False)
        first = InOrderCore(setup).run(trace)
        second = InOrderCore(setup).run(trace)
        assert first.cycles == second.cycles


class TestStallAccountingInvariants:
    def test_stall_plus_issue_covers_all_cycles(self):
        """Sanity: charged stalls never exceed total cycles."""
        from repro.workloads.profiles import OFFICE_LIKE
        from repro.workloads.synthetic import SyntheticTraceGenerator
        trace = SyntheticTraceGenerator(OFFICE_LIKE, seed=3).generate(3000)
        result = simulate(trace, IrawConfig(stabilization_cycles=1),
                          check_values=False)
        assert result.stalls.total_stall_cycles <= result.cycles

    def test_violation_free_across_all_n(self):
        from repro.workloads.profiles import SERVER_LIKE
        from repro.workloads.synthetic import SyntheticTraceGenerator
        trace = SyntheticTraceGenerator(SERVER_LIKE, seed=1).generate(2500)
        for n in (0, 1, 2):
            iraw = (IrawConfig(stabilization_cycles=n) if n
                    else IrawConfig.disabled())
            result = simulate(trace, iraw, check_values=False)
            assert result.iraw_violations == 0, n
