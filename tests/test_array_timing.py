"""Tests for the geometry-aware array timing model."""

import pytest

from repro.circuits.array_timing import ArrayTimingModel
from repro.circuits.constants import default_delay_model
from repro.circuits.sram import (
    FIGURE1_ARRAY,
    SramArray,
    StructureClass,
    silverthorne_arrays,
)


@pytest.fixture(scope="module")
def model():
    return ArrayTimingModel(default_delay_model())


class TestScaling:
    def test_reference_array_is_identity(self, model):
        assert model.wordline_scale(FIGURE1_ARRAY) == pytest.approx(1.0)
        assert model.decoder_scale(FIGURE1_ARRAY) == pytest.approx(1.0)

    def test_wider_wordline_groups_are_slower(self, model):
        wide = SramArray("W", 1024, 32, StructureClass.INFREQUENT_WRITE,
                         wordline_group_bits=32)
        assert model.wordline_scale(wide) > 1.0

    def test_sublinear_load_scaling(self, model):
        wide = SramArray("W", 1024, 32, StructureClass.INFREQUENT_WRITE,
                         wordline_group_bits=16)
        assert 1.0 < model.wordline_scale(wide) < 2.0

    def test_deeper_arrays_have_slower_decoders(self, model):
        deep = SramArray("D", 8192, 32, StructureClass.INFREQUENT_WRITE)
        shallow = SramArray("S", 16, 32, StructureClass.INFREQUENT_WRITE)
        assert model.decoder_scale(deep) > model.decoder_scale(shallow)


class TestTiming:
    def test_components_positive(self, model):
        timing = model.timing(FIGURE1_ARRAY, 500.0)
        for value in (timing.wordline, timing.decoder, timing.write,
                      timing.flip, timing.read):
            assert value > 0

    def test_iraw_phase_shorter_than_baseline(self, model):
        for array in silverthorne_arrays():
            timing = model.timing(array, 450.0)
            assert timing.iraw_write_phase < timing.baseline_write_phase

    def test_reference_matches_calibrated_model(self, model):
        """For the Figure 1 array the composition equals the raw model."""
        delays = default_delay_model()
        timing = model.timing(FIGURE1_ARRAY, 500.0)
        assert timing.baseline_write_phase == pytest.approx(
            delays.write_with_wordline(500.0))


class TestCriticalBlock:
    def test_critical_block_found(self, model):
        critical = model.critical_block(450.0)
        assert critical.array.name in {a.name for a in silverthorne_arrays()}

    def test_report_covers_all_blocks(self, model):
        rows = model.block_report(500.0)
        assert len(rows) == len(silverthorne_arrays())
        for row in rows:
            assert row["iraw_phase_vs_logic"] <= row[
                "baseline_phase_vs_logic"]
