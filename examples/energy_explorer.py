#!/usr/bin/env python3
"""Energy explorer: find the best operating point for an energy budget.

Mobile parts pick Vcc/frequency pairs at run time (DVFS).  This example
sweeps the modeled range and reports, for the baseline and IRAW clockings:
execution time, energy and EDP — then answers two planning questions:

* Which Vcc minimizes EDP under each clocking scheme?
* At a fixed performance target, how much energy does IRAW save?

The (Vcc x scheme) grid is one declarative :class:`ExperimentSpec` run
through the ``Experiment`` driver as a single engine batch sharded per
trace: ``--workers N`` runs the shards across N processes (or
``--backend queue --queue DIR`` dispatches them to detached
``repro worker`` processes) and the on-disk result cache makes
re-exploration free (``--no-cache`` opts out).  The exploration itself
is ordinary post-processing on the experiment's structured
:class:`ResultSet` — filter/pivot on flat records, export with
``--export-csv``.

Run:  python examples/energy_explorer.py [--workers 4] [--no-cache]
                                         [--backend serial|pool|queue]
                                         [--export-csv points.csv]
"""

import argparse

from repro.analysis.reporting import format_table
from repro.engine import add_engine_arguments, runner_from_args
from repro.experiments import Experiment, ExperimentSpec
from repro.experiments.artifacts import calibrated_energy_model


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--export-csv", metavar="PATH", default=None,
                        help="write the per-point records as CSV")
    add_engine_arguments(parser)
    args = parser.parse_args()

    # 25 mV steps: iso-performance Vcc reductions are finer than 50 mV.
    # No named artifacts: this exploration consumes the raw ResultSet.
    spec = ExperimentSpec(name="energy-explorer",
                          trace_length=5000,
                          step_mv=25.0,
                          artifacts=())
    experiment = Experiment(spec, runner=runner_from_args(args))
    print("Simulating the population across the Vcc grid...\n")
    # One batch for the whole grid (parallelizes); the 600 mV baseline
    # calibration point is part of the grid, so the energy model finds
    # it memoized.
    results = experiment.run()
    energy_model = calibrated_energy_model(experiment.sweep)

    rows = []
    for record in results:
        overhead = 0.01 if record.scheme == "iraw" else 0.0
        breakdown = energy_model.task_energy(
            record.vcc_mv, record["execution_time_s"],
            dynamic_overhead=overhead)
        rows.append({
            "vcc_mv": record.vcc_mv,
            "scheme": record.scheme,
            "frequency_mhz": record["frequency_mhz"],
            "time_ms": record["execution_time_s"] * 1e3,
            "energy_j": breakdown.total_j,
            "leakage_share": breakdown.leakage_share,
            "edp": breakdown.edp,
        })
    print(format_table(rows, title="Operating points "
                                   "(reference task energy units)"))

    if args.export_csv:
        results.to_csv(args.export_csv)
        print(f"\nwrote {len(results)} records to {args.export_csv}")

    for scheme in ("baseline", "iraw"):
        candidates = [r for r in rows if r["scheme"] == scheme]
        best = min(candidates, key=lambda r: r["edp"])
        print(f"\nEDP-optimal point for {scheme}: {best['vcc_mv']:.0f} mV "
              f"({best['frequency_mhz']:.0f} MHz, {best['energy_j']:.3f} J, "
              f"EDP {best['edp']:.4g})")

    # Fixed performance target: a device throttled to the 550 mV baseline
    # clock.  IRAW meets the same deadline from a *lower* Vcc, which is
    # where the energy savings come from (Figure 12's story).
    reference = next(r for r in rows
                     if r["scheme"] == "baseline" and r["vcc_mv"] == 550.0)
    eligible = [r for r in rows if r["scheme"] == "iraw"
                and r["time_ms"] <= reference["time_ms"]
                and r["vcc_mv"] < 550.0]
    if eligible:
        frugal = min(eligible, key=lambda r: r["energy_j"])
        saved = 1.0 - frugal["energy_j"] / reference["energy_j"]
        print(f"\nIso-performance planning: the 550 mV baseline finishes in "
              f"{reference['time_ms']:.3f} ms using "
              f"{reference['energy_j']:.3f} J.")
        print(f"IRAW meets that deadline from {frugal['vcc_mv']:.0f} mV "
              f"({frugal['time_ms']:.3f} ms) using "
              f"{frugal['energy_j']:.3f} J — {100 * saved:.1f}% less "
              f"energy at equal-or-better performance.")
    else:
        print("\nNo lower-Vcc IRAW point meets the 550 mV baseline "
              "deadline on this population.")

    stats = experiment.stats
    print(f"\nengine: {stats.simulated} trace shards simulated, "
          f"{stats.memory_hits} memo hits, {stats.disk_hits} cache hits")


if __name__ == "__main__":
    main()
