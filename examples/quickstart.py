#!/usr/bin/env python3
"""Quickstart: reproduce the paper's headline claim in one page.

Builds the calibrated circuit model, asks it for the baseline and IRAW
operating points at 500 mV, runs one workload on the cycle-level core
under both clockings, and prints the frequency/performance gains — the
miniature of "57% higher frequency, 48% speedup at 500 mV".

Run:  python examples/quickstart.py
"""

from repro.analysis.sweep import warm_caches
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.memory.hierarchy import MemoryConfig
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.workloads.profiles import SPECINT_LIKE
from repro.workloads.synthetic import SyntheticTraceGenerator

VCC_MV = 500.0
DRAM_NS = 80.0


def main() -> None:
    # 1. Circuit model: what does 500 mV do to the clock?
    solver = FrequencySolver()
    baseline_point = solver.operating_point(VCC_MV, ClockScheme.BASELINE)
    iraw_point = solver.operating_point(VCC_MV, ClockScheme.IRAW)
    print(f"At {VCC_MV:.0f} mV:")
    print(f"  baseline clock (full SRAM writes): "
          f"{baseline_point.frequency_mhz:7.1f} MHz")
    print(f"  IRAW clock (interrupted writes):   "
          f"{iraw_point.frequency_mhz:7.1f} MHz  "
          f"(+{100 * (iraw_point.frequency_mhz / baseline_point.frequency_mhz - 1):.1f}%, "
          f"N={iraw_point.stabilization_cycles} stabilization cycle)")

    # 2. Pipeline model: what do the avoidance stalls cost?
    trace = SyntheticTraceGenerator(SPECINT_LIKE, seed=0).generate(10_000)
    results = {}
    for name, point, iraw in (
            ("baseline", baseline_point, IrawConfig.disabled()),
            ("iraw", iraw_point,
             IrawConfig.for_operating_point(iraw_point))):
        memory = MemoryConfig(
            dram_latency_cycles=point.memory_latency_cycles(DRAM_NS))
        core = InOrderCore(CoreSetup(iraw=iraw, memory=memory, name=name,
                                     check_values=False))
        warm_caches(core.memory, trace)  # amortize cold misses
        results[name] = core.run(trace)

    base, iraw = results["baseline"], results["iraw"]
    print(f"\nRunning {len(trace)} instructions of {trace.name!r}:")
    print(f"  baseline IPC: {base.ipc:.3f}")
    print(f"  IRAW IPC:     {iraw.ipc:.3f}  "
          f"({100 * (1 - iraw.ipc / base.ipc):.1f}% lower — avoidance stalls "
          f"+ memory cycles at the higher clock)")
    print(f"  instructions delayed by the RF stabilization bubble: "
          f"{100 * iraw.iraw_delay_fraction:.1f}%  (paper: 13.2%)")
    print(f"  IRAW violations observed: {iraw.iraw_violations} (must be 0)")

    # 3. The bottom line: wall-clock speedup.
    time_base = base.cycles / baseline_point.frequency_mhz
    time_iraw = iraw.cycles / iraw_point.frequency_mhz
    print(f"\nWall-clock speedup of IRAW at {VCC_MV:.0f} mV: "
          f"{time_base / time_iraw:.2f}x  (paper: 1.48x)")


if __name__ == "__main__":
    main()
