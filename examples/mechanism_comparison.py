#!/usr/bin/env python3
"""Table 1, live: IRAW vs Faulty Bits vs Extra Bypass on equal terms.

Evaluates all techniques at one Vcc on the same workload population and
prints the quantified Table 1 plus the IRAW + Faulty Bits combination the
paper sketches in Section 4.4.

Run:  python examples/mechanism_comparison.py [--vcc 500]
"""

import argparse

from repro.analysis.reporting import format_table, percent
from repro.analysis.sweep import SweepSettings, VccSweep
from repro.analysis.table1 import build_table1
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.circuits.frequency import ClockScheme


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vcc", type=float, default=500.0)
    args = parser.parse_args()

    sweep = VccSweep(SweepSettings(trace_length=5000))
    print(f"Evaluating all techniques at {args.vcc:.0f} mV "
          f"(simulating, ~1 minute)...\n")
    rows = build_table1(sweep, vcc_mv=args.vcc)
    print(format_table(
        rows,
        columns=["technique", "works_all_blocks", "adapts_multiple_vcc",
                 "honest_freq_gain", "hypothetical_freq_gain",
                 "ipc_impact", "area_overhead", "hard_to_test"],
        title=f"Table 1 quantified at {args.vcc:.0f} mV"))

    faulty = next(r for r in rows if "Faulty" in r["technique"])
    print(f"\nFaulty Bits detail: {percent(faulty['disabled_lines'])} of "
          f"DL0 lines disabled at the 4-sigma margin; honest frequency "
          f"gain is zero because the register file cannot tolerate "
          f"disabled entries.")

    combo = FaultyBitsBaseline(sweep.solver, design_sigma=4.0)
    base = sweep.solver.operating_point(args.vcc, ClockScheme.BASELINE)
    iraw = sweep.solver.operating_point(args.vcc, ClockScheme.IRAW)
    combined = combo.combined_with_iraw_point(args.vcc)
    print(f"\nSection 4.4 combination (IRAW + faulty bits on the caches):")
    print(f"  IRAW alone:      +{percent(iraw.frequency_mhz / base.frequency_mhz - 1)}")
    print(f"  IRAW + 4-sigma:  +{percent(combined.frequency_mhz / base.frequency_mhz - 1)}")


if __name__ == "__main__":
    main()
