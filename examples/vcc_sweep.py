#!/usr/bin/env python3
"""Full Vcc sweep: regenerate Figures 11(a), 11(b) and 12 as ASCII tables.

This is the paper's whole evaluation story in one run: cycle times,
frequency/performance gains and energy-delay product from 700 mV down to
400 mV on the standard six-profile workload population.

Since the ``repro.experiments`` redesign the simulated figures are one
declarative :class:`ExperimentSpec` — the same thing a
``python -m repro run sweep.toml`` spec file expresses — compiled by the
``Experiment`` driver into a single engine batch: every (Vcc, scheme)
point shards into one job per trace, ``--workers N`` spreads the shards
across N processes, and completed shards persist in the on-disk result
cache (bounded by ``$REPRO_CACHE_MAX_BYTES`` when set), so a re-run (or
the energy-explorer example on the same population) replays instantly.
``--backend queue --queue DIR`` spools the shards for detached
``python -m repro worker --queue DIR`` processes instead — on this
machine or any other sharing the directory.

Run:  python examples/vcc_sweep.py [--step 50] [--length 6000]
                                   [--workers 4] [--no-cache]
                                   [--backend serial|pool|queue]
                                   [--save-spec sweep.toml]
"""

import argparse

from repro.analysis.figures import figure1_series, figure11a_series
from repro.analysis.reporting import format_table
from repro.engine import add_engine_arguments, runner_from_args
from repro.experiments import Experiment, ExperimentSpec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--step", type=float, default=50.0,
                        help="Vcc step in mV (default 50)")
    parser.add_argument("--length", type=int, default=6000,
                        help="instructions per trace (default 6000)")
    parser.add_argument("--save-spec", metavar="PATH", default=None,
                        help="also write this sweep as a reusable "
                             "experiment spec file (.toml or .json)")
    add_engine_arguments(parser)
    args = parser.parse_args()

    print(format_table(
        figure1_series(step_mv=args.step),
        title="Figure 1: clock-phase delays (normalized to 12 FO4 @700mV)"))
    print()
    print(format_table(
        figure11a_series(step_mv=args.step),
        title="Figure 11(a): cycle time (normalized to 24 FO4 @700mV)"))
    print()

    spec = ExperimentSpec(name="vcc-sweep",
                          trace_length=args.length,
                          step_mv=args.step,
                          artifacts=("fig11b", "fig12"))
    if args.save_spec:
        spec.save(args.save_spec)
        print(f"spec written to {args.save_spec} "
              f"(rerun with: python -m repro run {args.save_spec})\n")
    experiment = Experiment(spec, runner=runner_from_args(args))
    print("Simulating the workload population at each Vcc "
          "(this is the slow part)...")
    print()
    experiment.run()
    print(format_table(
        experiment.artifact("fig11b"),
        columns=["vcc_mv", "frequency_gain", "performance_gain",
                 "ipc_ratio", "stabilization_cycles", "iraw_delay_fraction"],
        title="Figure 11(b): IRAW gains over the baseline "
              "(paper: +57%/+48% @500mV, +99%/+90% @400mV)"))
    print()
    print(format_table(
        experiment.artifact("fig12"),
        title="Figure 12: relative energy / delay / EDP "
              "(paper: EDP 0.61 @500mV, 0.33 @400mV)"))

    stats = experiment.stats
    runner = experiment.runner
    print(f"\nengine: {stats.simulated} trace shards simulated, "
          f"{stats.memory_hits} memo hits, {stats.disk_hits} cache hits "
          f"({runner.workers} worker{'s' if runner.workers != 1 else ''})")


if __name__ == "__main__":
    main()
