#!/usr/bin/env python3
"""STable anatomy: watch the DL0 store-tracking mechanism work (Fig. 10).

Runs the ``store_forward`` kernel — whose inner loop stores a value and
immediately loads it back — under IRAW clocking, with full golden-value
checking.  Every immediate load-after-store would read a not-yet-stabilized
DL0 word; the STable forwards the data instead and the end-to-end values
stay correct.  Then the same kernel runs with the STable *disabled* to show
exactly what it prevents: corrupted loads and golden-value mismatches.

Run:  python examples/store_table_demo.py
"""

from repro.core.config import IrawConfig
from repro.pipeline.core import simulate
from repro.workloads.kernels import kernel_trace


def describe(label, result):
    hazards = result.prediction_hazards
    print(f"{label}:")
    print(f"  cycles: {result.cycles}, IPC {result.ipc:.3f}")
    print(f"  STable full matches (data forwarded): "
          f"{hazards['stable_full_matches']}")
    print(f"  STable set-only matches (replay repairs): "
          f"{hazards['stable_set_matches']}")
    print(f"  IRAW violations: {result.iraw_violations}")
    print(f"  golden-value mismatches: {result.value_mismatches}")
    print()


def main() -> None:
    trace, final_state = kernel_trace("store_forward", 64)
    print(f"Kernel: store then immediately load back, 64 iterations "
          f"({len(trace)} dynamic instructions)\n")

    baseline = simulate(trace, IrawConfig.disabled(), name="baseline")
    describe("Baseline clock (writes complete in-cycle, STable idle)",
             baseline)

    protected = simulate(trace, IrawConfig(stabilization_cycles=1),
                         name="iraw")
    describe("IRAW clock, STable ON (the paper's design)", protected)

    broken = simulate(trace, IrawConfig(stabilization_cycles=1,
                                        stable_enabled=False),
                      name="broken")
    describe("IRAW clock, STable OFF (what the mechanism prevents)", broken)

    assert protected.value_mismatches == 0
    assert broken.value_mismatches > 0
    print("=> with the STable every forwarded value is correct; without "
          "it, loads read half-written SRAM cells and the kernel's "
          "results are garbage.")


if __name__ == "__main__":
    main()
