#!/usr/bin/env python3
"""DVFS scenario: Vcc changes mid-workload, IRAW reconfigures on the fly.

A phone-like schedule: a burst phase at 650 mV (IRAW idle — writes fit the
cycle), then a long battery-saver phase at 450 mV (IRAW active, N=1), then
a medium phase at 550 mV.  At every transition the pipeline drains, the
Vcc controller rewrites the scoreboard patterns / IQ threshold / guard
counters / STable sizing, and execution resumes.

Run:  python examples/dvfs_scenario.py
"""

from repro.analysis.dvfs import DvfsPhase, DvfsScenario
from repro.analysis.reporting import format_table
from repro.circuits.frequency import ClockScheme
from repro.workloads.profiles import OFFICE_LIKE
from repro.workloads.synthetic import SyntheticTraceGenerator

SCHEDULE = [
    DvfsPhase(vcc_mv=650.0, instructions=4000),   # interactive burst
    DvfsPhase(vcc_mv=450.0, instructions=8000),   # battery saver
    DvfsPhase(vcc_mv=550.0, instructions=4000),   # background sync
]


def main() -> None:
    trace = SyntheticTraceGenerator(OFFICE_LIKE, seed=5).generate(16_000)
    print("Schedule:", ", ".join(
        f"{p.instructions} instr @ {p.vcc_mv:.0f} mV" for p in SCHEDULE))
    print()

    outcomes = {}
    for scheme in (ClockScheme.BASELINE, ClockScheme.IRAW):
        scenario = DvfsScenario(scheme=scheme)
        outcome = scenario.run(trace, SCHEDULE)
        outcomes[scheme] = (scenario, outcome)
        rows = [{
            "vcc_mv": p.phase.vcc_mv,
            "instructions": p.phase.instructions,
            "frequency_mhz": p.frequency_mhz,
            "stabilization_N": p.stabilization_cycles,
            "cycles": p.cycles,
            "time_ms": p.time_s * 1e3,
        } for p in outcome.phases]
        print(format_table(rows, title=f"{scheme.value} clocking"))
        print(f"  total: {outcome.total_time_s * 1e3:.3f} ms "
              f"(incl. {outcome.transitions} Vcc transitions)")
        print()

    base = outcomes[ClockScheme.BASELINE][1]
    iraw = outcomes[ClockScheme.IRAW][1]
    speedup = base.total_time_s / iraw.total_time_s
    print(f"IRAW finishes the whole schedule {speedup:.2f}x faster.")
    print("Note the 650 mV phase: identical frequency under both schemes "
          "(IRAW deactivates above 600 mV) — the wins come entirely from "
          "the low-Vcc phases, exactly the paper's Section 4.1.3 story.")


if __name__ == "__main__":
    main()
