"""Content-addressed on-disk result cache with versioned invalidation.

Completed job results are pickled under one file per canonical job key
(:func:`repro.engine.jobs.job_key`), inside a version directory named
after (a) the cache schema version and (b) a fingerprint of the whole
``repro`` package source.  Any code change — a constant recalibration, a
pipeline fix — moves the fingerprint, so stale results can never be
served; they are simply orphaned in the old version directory (reclaim
with :meth:`ResultCache.prune_stale` or ``python -m repro cache --clear``).

The cache root is ``$REPRO_CACHE_DIR`` if set, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  All filesystem
failures degrade gracefully: an unwritable or read-only location turns
the cache into a pass-through (one warning, no crash), a corrupt entry is
treated as a miss and removed.

Size bound (LRU)
----------------
Per-trace sharding multiplies the entry count, so the store is bounded:
``$REPRO_CACHE_MAX_BYTES`` (or the ``max_bytes`` constructor argument)
caps the total payload bytes of the current version directory.  An
``index.json`` beside the entries records each entry's size and a logical
recency clock — bumped on every hit and write, persisted with the same
atomic-rename discipline as the entries themselves — and when a write
pushes the total over the bound, least-recently-used entries are evicted
until it fits.  Hit recency is write-behind (memory only) and lands on
disk with the next write, :meth:`ResultCache.enforce_limit`, or an
explicit :meth:`ResultCache.flush` — the runner flushes after every
batch, so pure-hit regenerations never rewrite the index per read.  A
corrupted or missing index is rebuilt from a directory scan (recency
approximated by file mtime), never trusted blindly.
``python -m repro cache --prune`` applies the same policy offline via
:meth:`ResultCache.enforce_limit` and reports exactly what it deleted.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import re
import tempfile
import time
import warnings
from dataclasses import dataclass, field

#: Bump to invalidate every existing cache entry (layout/pickle changes).
CACHE_SCHEMA_VERSION = 1

#: Name of the per-version LRU bookkeeping file (not a result entry).
INDEX_NAME = "index.json"

#: Name of the root-level persistent hit/miss tally (survives version
#: rotation; reset by ``repro cache --prune``).
STATS_NAME = "stats.json"

#: Sentinel distinguishing "no entry" from a cached falsy value.
MISS = object()

_FINGERPRINT: str | None = None


def cache_max_bytes() -> int | None:
    """The ``$REPRO_CACHE_MAX_BYTES`` bound, or ``None`` for unbounded."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if not env:
        return None
    try:
        value = int(env)
    except ValueError:
        warnings.warn(
            f"ignoring non-integer REPRO_CACHE_MAX_BYTES={env!r}",
            RuntimeWarning, stacklevel=2)
        return None
    return value if value > 0 else None


def code_fingerprint() -> str:
    """Hex fingerprint of the installed ``repro`` package source.

    Hashing every ``.py`` file is deliberately conservative: a one-line
    change anywhere in the simulator invalidates the cache, which is the
    only safe default for a research artifact whose numbers must always
    reflect the checked-out code.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256(
            f"schema={CACHE_SCHEMA_VERSION}".encode("utf-8"))
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def version_tag() -> str:
    """Directory name binding on-disk artifacts to this exact code.

    Shared by the result cache and the queue broker's spool: both must
    rotate together, or a worker built from different code could serve
    results the runner's cache would consider current.
    """
    return f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()}"


def is_version_dir_name(name: str) -> bool:
    """Whether ``name`` has the exact shape :func:`version_tag` emits.

    Garbage collectors (``cache --prune``, ``queue --gc``) must only
    ever touch directories *we* created: a loose ``startswith("v")``
    test would happily delete an operator's ``venv``/``vendor`` sitting
    next to the spool or cache.
    """
    return re.fullmatch(r"v\d+-[0-9a-f]{16}", name) is not None


def default_cache_root() -> pathlib.Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg \
        else pathlib.Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0


@dataclass
class ResultCache:
    """Pickle-per-key result store under a versioned directory.

    ``max_bytes`` bounds the total payload of the current version
    directory; ``None`` means unbounded (the recency index is still
    maintained, so a bound can be applied later with
    :meth:`enforce_limit` or ``python -m repro cache --prune``).
    """

    root: pathlib.Path
    enabled: bool = True
    max_bytes: int | None = None
    stats: CacheStats = field(default_factory=CacheStats)
    _writable: bool | None = field(default=None, repr=False)
    #: In-memory working copy of the LRU index (lazy-loaded) and its
    #: deferred-write flag: hits only touch memory, writes persist.
    _index: dict | None = field(default=None, repr=False)
    _dirty: bool = field(default=False, repr=False)
    #: How much of ``stats`` has already been merged into the persistent
    #: root-level tally (see :meth:`persist_stats`).
    _flushed_hits: int = field(default=0, repr=False)
    _flushed_misses: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root).expanduser()

    @classmethod
    def default(cls, enabled: bool = True) -> "ResultCache":
        """Cache at ``$REPRO_CACHE_DIR`` / XDG / ``~/.cache/repro``,
        bounded by ``$REPRO_CACHE_MAX_BYTES`` when set."""
        return cls(root=default_cache_root(), enabled=enabled,
                   max_bytes=cache_max_bytes())

    @property
    def version_dir(self) -> pathlib.Path:
        return self.root / version_tag()

    def _path(self, key: str) -> pathlib.Path:
        return self.version_dir / f"{key}.pkl"

    # -- read ----------------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key``, or the :data:`MISS` sentinel."""
        if not self.enabled:
            return MISS
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            # Corrupt or unreadable entry: drop it and treat as a miss.
            # Arbitrary bytes can make the unpickler raise nearly anything
            # (UnpicklingError, EOFError, ValueError, ImportError, ...).
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            self._forget(key)
            return MISS
        self.stats.hits += 1
        self._touch(key, path)
        return value

    # -- write ---------------------------------------------------------

    def put(self, key: str, value) -> bool:
        """Persist ``value`` under ``key`` (atomic rename); True on success."""
        if not self.enabled or self._writable is False:
            return False
        directory = self.version_dir
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            if self._writable is not False:
                self._writable = False
                warnings.warn(
                    f"result cache at {directory} is not writable "
                    f"({exc}); continuing without persistence",
                    RuntimeWarning, stacklevel=2)
            self.stats.errors += 1
            return False
        self._writable = True
        self.stats.writes += 1
        self._account(key)
        return True

    # -- LRU index -----------------------------------------------------
    #
    # ``index.json`` maps entry key -> {"size": bytes, "used": clock}
    # plus a monotonically increasing logical "clock".  All updates are
    # written to a temp file and atomically renamed into place, so a
    # reader never sees a half-written index; any parse or shape problem
    # falls back to a rebuild from the directory itself.
    #
    # Hit bookkeeping is write-behind: the instance mutates an in-memory
    # working copy and persists it on the next write, on
    # :meth:`enforce_limit`, or on an explicit :meth:`flush` (the runner
    # flushes at the end of every batch) — a pure-read path never pays a
    # per-hit index rewrite.

    def _index_path(self) -> pathlib.Path:
        return self.version_dir / INDEX_NAME

    def _index_data(self, persist_rebuild: bool = True) -> dict:
        """The in-memory working index (loaded from disk on first use).

        ``persist_rebuild=False`` keeps a corrupted-index rebuild in
        memory only — the read-only inspection paths (dry-run planning)
        must never write, even to replace garbage.
        """
        if self._index is None:
            self._index = self._load_index(persist_rebuild)
        return self._index

    def _load_index(self, persist_rebuild: bool = True) -> dict:
        try:
            data = json.loads(self._index_path().read_text("utf-8"))
            clock = int(data["clock"])
            entries = data["entries"]
            if not isinstance(entries, dict):
                raise ValueError("index entries must be a mapping")
            for meta in entries.values():
                int(meta["size"]), int(meta["used"])
        except FileNotFoundError:
            return self._rebuild_index(persist=False)
        except Exception:
            # Corrupted/garbled index: never trust it, rebuild from disk.
            return self._rebuild_index(persist=persist_rebuild)
        return {"clock": clock, "entries": entries}

    def _rebuild_index(self, persist: bool = True) -> dict:
        """Reconstruct bookkeeping from the entries themselves.

        Recency is approximated by file mtime — good enough to resume a
        sane LRU order after an index loss or corruption.  ``persist``
        replaces a corrupt on-disk index immediately; a merely missing
        one is recreated lazily by the next write.
        """
        records = []
        try:
            for path in self.version_dir.glob("*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                records.append((stat.st_mtime, path.stem, stat.st_size))
        except OSError:
            records = []
        records.sort()
        entries = {key: {"size": size, "used": order}
                   for order, (_, key, size) in enumerate(records, start=1)}
        index = {"clock": len(records), "entries": entries}
        if persist and records:
            self._save_index(index)
        return index

    def _save_index(self, index: dict) -> None:
        directory = self.version_dir
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(index, handle, separators=(",", ":"))
                os.replace(tmp_name, self._index_path())
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            pass  # bookkeeping is best-effort; entries stay valid

    def _touch(self, key: str, path: pathlib.Path) -> None:
        """Mark ``key`` most-recently-used (in memory; persisted later)."""
        index = self._index_data()
        index["clock"] += 1
        entry = index["entries"].get(key)
        if entry is None:
            try:
                size = path.stat().st_size
            except OSError:
                return
            entry = index["entries"][key] = {"size": size}
        entry["used"] = index["clock"]
        self._dirty = True

    def _account(self, key: str) -> None:
        """Record a fresh write, then evict down to ``max_bytes``."""
        index = self._index_data()
        index["clock"] += 1
        try:
            size = self._path(key).stat().st_size
        except OSError:
            return
        index["entries"][key] = {"size": size, "used": index["clock"]}
        self._evict_over_limit(index)
        self._save_index(index)
        self._dirty = False

    def _forget(self, key: str) -> None:
        """Drop ``key`` from the index (its entry file is already gone)."""
        index = self._index_data()
        if index["entries"].pop(key, None) is not None:
            self._dirty = True

    def flush(self) -> None:
        """Persist deferred hit-recency updates (no-op when clean)."""
        if self._dirty and self._index is not None:
            self._save_index(self._index)
            self._dirty = False
        self.persist_stats()

    # -- persistent hit/miss tally -------------------------------------
    #
    # ``<root>/stats.json`` accumulates hits and misses across runs —
    # the data behind ``repro cache --stats``'s hit-rate — with a
    # ``since`` wall-clock stamp marking the window start.  It lives at
    # the root (not in the version directory) so a code change does not
    # silently reset the window; ``cache --prune`` resets it
    # explicitly.  All writes are best-effort and atomic; a read-only
    # cache location simply never persists the tally.

    def _stats_path(self) -> pathlib.Path:
        return self.root / STATS_NAME

    def _load_persisted_stats(self) -> dict:
        try:
            data = json.loads(self._stats_path().read_text("utf-8"))
            since = data.get("since")
            return {"hits": int(data.get("hits", 0)),
                    "misses": int(data.get("misses", 0)),
                    "since": float(since) if since is not None else None}
        except Exception:
            return {"hits": 0, "misses": 0, "since": None}

    def _save_stats(self, data: dict) -> bool:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(data, handle, separators=(",", ":"))
                os.replace(tmp_name, self._stats_path())
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False  # best-effort, like the LRU index
        return True

    def persist_stats(self) -> None:
        """Merge this instance's unflushed hits/misses into the tally."""
        delta_hits = self.stats.hits - self._flushed_hits
        delta_misses = self.stats.misses - self._flushed_misses
        if not delta_hits and not delta_misses:
            return
        data = self._load_persisted_stats()
        data["hits"] += delta_hits
        data["misses"] += delta_misses
        if data["since"] is None:
            data["since"] = time.time()
        if self._save_stats(data):
            self._flushed_hits = self.stats.hits
            self._flushed_misses = self.stats.misses

    def reset_persisted_stats(self) -> None:
        """Restart the hit-rate window (``cache --prune`` calls this)."""
        self._save_stats({"hits": 0, "misses": 0, "since": time.time()})
        self._flushed_hits = self.stats.hits
        self._flushed_misses = self.stats.misses

    def usage_report(self) -> dict:
        """Read-only snapshot behind ``repro cache --stats``.

        Entry counts and byte totals per version directory under the
        root, plus the persistent hit/miss tally (combined with this
        instance's unflushed lookups).  Touches nothing on disk.
        """
        current = self.version_dir.name
        versions = []
        try:
            children = sorted(self.root.iterdir())
        except OSError:
            children = []
        for child in children:
            if not child.is_dir() or not is_version_dir_name(child.name):
                continue
            entries = 0
            total = 0
            try:
                for path in child.glob("*.pkl"):
                    entries += 1
                    try:
                        total += path.stat().st_size
                    except OSError:
                        pass
            except OSError:
                pass
            versions.append({"version": child.name,
                             "current": child.name == current,
                             "entries": entries, "bytes": total})
        tally = self._load_persisted_stats()
        hits = tally["hits"] + (self.stats.hits - self._flushed_hits)
        misses = tally["misses"] + (self.stats.misses
                                    - self._flushed_misses)
        lookups = hits + misses
        return {"root": str(self.root), "version": current,
                "enabled": self.enabled, "max_bytes": self.max_bytes,
                "entries": self.entry_count(),
                "bytes": self.total_bytes(),
                "versions": versions,
                "hits": hits, "misses": misses,
                "hit_rate": (hits / lookups) if lookups else None,
                "since": tally["since"]}

    def attach_metrics(self, registry) -> None:
        """Register cache instruments on a :class:`MetricsRegistry`.

        Callback-backed gauges read the live ``stats`` and the version
        directory, so a metrics scrape always reflects the current
        store without any per-operation update plumbing.
        """
        registry.gauge("cache_entries", "Entries in the current version",
                       fn=self.entry_count)
        registry.gauge("cache_bytes",
                       "Payload bytes in the current version",
                       fn=self.total_bytes)
        registry.gauge("cache_hits", "Cache hits this process",
                       fn=lambda: self.stats.hits)
        registry.gauge("cache_misses", "Cache misses this process",
                       fn=lambda: self.stats.misses)
        registry.gauge("cache_writes", "Cache writes this process",
                       fn=lambda: self.stats.writes)
        registry.gauge("cache_errors",
                       "Cache read/write errors this process",
                       fn=lambda: self.stats.errors)

    def _evict_over_limit(self, index: dict,
                          delete: bool = True) -> list[tuple[str, int]]:
        """Evict least-recently-used entries until the bound is met.

        Mutates ``index`` in place (caller persists it) and returns the
        evicted ``(key, size)`` pairs, oldest first.  The newest entry is
        evicted last — only when it alone exceeds the bound.  With
        ``delete=False`` the walk is identical but no file is unlinked
        (dry-run planning over an index copy).
        """
        evicted: list[tuple[str, int]] = []
        if self.max_bytes is None:
            return evicted
        entries = index["entries"]
        total = sum(int(meta["size"]) for meta in entries.values())
        while total > self.max_bytes and entries:
            key = min(entries, key=lambda k: int(entries[k]["used"]))
            size = int(entries.pop(key)["size"])
            total -= size
            if delete:
                try:
                    self._path(key).unlink()
                except OSError:
                    pass  # already gone: the byte accounting still shrinks
            evicted.append((key, size))
        return evicted

    # -- maintenance ---------------------------------------------------

    def entry_count(self) -> int:
        try:
            return sum(1 for _ in self.version_dir.glob("*.pkl"))
        except OSError:
            return 0

    def total_bytes(self) -> int:
        """Total payload bytes of the current version (excludes index)."""
        total = 0
        try:
            for path in self.version_dir.glob("*.pkl"):
                try:
                    total += path.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return total

    def enforce_limit(self) -> list[tuple[str, int]]:
        """Apply the LRU byte bound now; returns evicted ``(key, size)``.

        This is the offline arm of the same policy :meth:`put` applies
        inline — ``python -m repro cache --prune`` calls it so a freshly
        lowered ``$REPRO_CACHE_MAX_BYTES`` takes effect immediately.
        """
        index = self._index_data()
        evicted = self._evict_over_limit(index)
        if evicted or self._dirty:
            self._save_index(index)
            self._dirty = False
        return evicted

    def plan_evictions(self) -> list[tuple[str, int]]:
        """What :meth:`enforce_limit` *would* evict, without deleting.

        Runs the identical LRU walk over a copy of the index: nothing
        is unlinked, no bookkeeping is persisted (a corrupted index is
        rebuilt in memory only), and the deferred-hit state of the live
        index is untouched — ``cache --prune --dry-run`` reports from
        here.
        """
        index = self._index_data(persist_rebuild=False)
        copy = {"clock": index["clock"],
                "entries": {key: dict(meta)
                            for key, meta in index["entries"].items()}}
        return self._evict_over_limit(copy, delete=False)

    def stale_versions(self) -> list[tuple[str, int]]:
        """Version directories :meth:`prune_stale` would delete.

        Read-only: returns ``(name, entry_count)`` per stale version,
        sorted by name, touching nothing.
        """
        current = self.version_dir.name
        report = []
        try:
            children = sorted(self.root.iterdir())
        except OSError:
            return []
        for child in children:
            if child.is_dir() and is_version_dir_name(child.name) \
                    and child.name != current:
                try:
                    entries = sum(1 for _ in child.glob("*.pkl"))
                except OSError:
                    entries = 0
                report.append((child.name, entries))
        return report

    def prune_stale(self) -> int:
        """Delete version directories other than the current one."""
        removed = 0
        current = self.version_dir.name
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for child in children:
            if child.is_dir() and is_version_dir_name(child.name) \
                    and child.name != current:
                removed += _rmtree(child)
        return removed

    def clear(self) -> int:
        """Delete every entry of the current version (returns count)."""
        removed = 0
        for path in self.version_dir.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            self._index_path().unlink()
        except OSError:
            pass
        self._index = {"clock": 0, "entries": {}}
        self._dirty = False
        return removed


def _rmtree(directory: pathlib.Path) -> int:
    """Best-effort recursive delete; returns number of *entries* removed
    (``.pkl`` payloads — bookkeeping files are deleted but not counted)."""
    removed = 0
    for path in sorted(directory.rglob("*"), reverse=True):
        try:
            if path.is_dir():
                path.rmdir()
            else:
                path.unlink()
                if path.suffix == ".pkl":
                    removed += 1
        except OSError:
            pass
    try:
        directory.rmdir()
    except OSError:
        pass
    return removed
