"""Content-addressed on-disk result cache with versioned invalidation.

Completed job results are pickled under one file per canonical job key
(:func:`repro.engine.jobs.job_key`), inside a version directory named
after (a) the cache schema version and (b) a fingerprint of the whole
``repro`` package source.  Any code change — a constant recalibration, a
pipeline fix — moves the fingerprint, so stale results can never be
served; they are simply orphaned in the old version directory (reclaim
with :meth:`ResultCache.prune_stale` or ``python -m repro cache --clear``).

The cache root is ``$REPRO_CACHE_DIR`` if set, else
``$XDG_CACHE_HOME/repro``, else ``~/.cache/repro``.  All filesystem
failures degrade gracefully: an unwritable or read-only location turns
the cache into a pass-through (one warning, no crash), a corrupt entry is
treated as a miss and removed.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
import warnings
from dataclasses import dataclass, field

#: Bump to invalidate every existing cache entry (layout/pickle changes).
CACHE_SCHEMA_VERSION = 1

#: Sentinel distinguishing "no entry" from a cached falsy value.
MISS = object()

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Hex fingerprint of the installed ``repro`` package source.

    Hashing every ``.py`` file is deliberately conservative: a one-line
    change anywhere in the simulator invalidates the cache, which is the
    only safe default for a research artifact whose numbers must always
    reflect the checked-out code.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256(
            f"schema={CACHE_SCHEMA_VERSION}".encode("utf-8"))
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


def default_cache_root() -> pathlib.Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg \
        else pathlib.Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0


@dataclass
class ResultCache:
    """Pickle-per-key result store under a versioned directory."""

    root: pathlib.Path
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)
    _writable: bool | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root).expanduser()

    @classmethod
    def default(cls, enabled: bool = True) -> "ResultCache":
        """Cache at ``$REPRO_CACHE_DIR`` / XDG / ``~/.cache/repro``."""
        return cls(root=default_cache_root(), enabled=enabled)

    @property
    def version_dir(self) -> pathlib.Path:
        return self.root / f"v{CACHE_SCHEMA_VERSION}-{code_fingerprint()}"

    def _path(self, key: str) -> pathlib.Path:
        return self.version_dir / f"{key}.pkl"

    # -- read ----------------------------------------------------------

    def get(self, key: str):
        """Cached value for ``key``, or the :data:`MISS` sentinel."""
        if not self.enabled:
            return MISS
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return MISS
        except Exception:
            # Corrupt or unreadable entry: drop it and treat as a miss.
            # Arbitrary bytes can make the unpickler raise nearly anything
            # (UnpicklingError, EOFError, ValueError, ImportError, ...).
            self.stats.errors += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return MISS
        self.stats.hits += 1
        return value

    # -- write ---------------------------------------------------------

    def put(self, key: str, value) -> bool:
        """Persist ``value`` under ``key`` (atomic rename); True on success."""
        if not self.enabled or self._writable is False:
            return False
        directory = self.version_dir
        try:
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_name, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as exc:
            if self._writable is not False:
                self._writable = False
                warnings.warn(
                    f"result cache at {directory} is not writable "
                    f"({exc}); continuing without persistence",
                    RuntimeWarning, stacklevel=2)
            self.stats.errors += 1
            return False
        self._writable = True
        self.stats.writes += 1
        return True

    # -- maintenance ---------------------------------------------------

    def entry_count(self) -> int:
        try:
            return sum(1 for _ in self.version_dir.glob("*.pkl"))
        except OSError:
            return 0

    def prune_stale(self) -> int:
        """Delete version directories other than the current one."""
        removed = 0
        current = self.version_dir.name
        try:
            children = list(self.root.iterdir())
        except OSError:
            return 0
        for child in children:
            if child.is_dir() and child.name.startswith("v") \
                    and child.name != current:
                removed += _rmtree(child)
        return removed

    def clear(self) -> int:
        """Delete every entry of the current version (returns count)."""
        removed = 0
        for path in self.version_dir.glob("*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def _rmtree(directory: pathlib.Path) -> int:
    """Best-effort recursive delete; returns number of files removed."""
    removed = 0
    for path in sorted(directory.rglob("*"), reverse=True):
        try:
            if path.is_dir():
                path.rmdir()
            else:
                path.unlink()
                removed += 1
        except OSError:
            pass
    try:
        directory.rmdir()
    except OSError:
        pass
    return removed
