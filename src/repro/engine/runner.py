"""Order-preserving, deduplicating, cache-aware job batch execution.

``ParallelRunner.run`` resolves each job in three tiers:

1. **in-memory memo** — results already produced by this runner;
2. **on-disk cache** — results persisted by any earlier run of the same
   code (see :mod:`repro.engine.cache`);
3. **execution** — everything still pending, handed to the runner's
   :mod:`execution backend <repro.engine.backends>`: inline
   (:class:`~repro.engine.backends.SerialBackend`, the deterministic
   fallback whose results are bit-identical to the legacy inline
   loops), a ``ProcessPoolExecutor``
   (:class:`~repro.engine.backends.PoolBackend`), or the distributed
   work-queue broker (:class:`~repro.engine.backends.QueueBackend`,
   shards executed by detached ``python -m repro worker`` processes).

Population jobs are split into **per-trace shards** before execution
(:func:`~repro.engine.jobs.shard_jobs`): the unit of work and of on-disk
caching is a single (trace, Vcc, scheme, config) point, so a grid with
few points and many traces still saturates every worker, and growing a
population re-simulates only the traces that are actually new.  Shard
results are reduced back into the population result in population order
(:func:`~repro.engine.jobs.aggregate_shard_results`) — deterministic no
matter which worker finished first — and the aggregate lives in the
runner's memo only; the disk cache stores shards, never aggregates, so
per-trace granularity cannot double the cache footprint.

Duplicate jobs inside one batch are simulated once.  Results come back
in submission order regardless of which worker finished first, so
figure generators can ``zip`` them against their grid.

Error model: on the serial backend exceptions propagate unchanged
(exactly like the legacy inline code); from every other backend they are
re-raised as :class:`EngineError` chained to the original exception, and
the rest of the batch is cancelled.  A crashed shard names its trace
(via the job label) and its canonical job key, so the offending
evaluation point can be rerun or purged from the cache directly.  The
queue backend retries transient failures first (bounded, counted in
``stats.requeued``/``stats.retried``) and only surfaces permanent ones.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass

from repro.engine.backends import ShardFailure, resolve_backend
from repro.engine.cache import MISS, ResultCache
from repro.engine.jobs import Job, aggregate_shard_results, job_key, \
    shard_jobs
from repro.engine.progress import NullProgress


class EngineError(RuntimeError):
    """A job failed while executing inside a worker process."""


@dataclass
class EngineStats:
    """Counters accumulated across every batch a runner executes.

    ``submitted``/``memory_hits``/``deduplicated`` count the jobs handed
    to :meth:`ParallelRunner.run`; ``disk_hits`` and ``simulated`` count
    executable units — per-trace shards for population jobs — since those
    are what the disk cache stores and the workers run.  ``requeued`` and
    ``retried`` count the queue backend's fault recovery: every
    re-dispatch of a shard (expired lease, quarantined result, failed
    attempt with retry budget left) bumps ``requeued``, and each
    *distinct* shard that needed more than one dispatch bumps ``retried``
    once.
    """

    submitted: int = 0
    #: Jobs answered from this runner's own memo.
    memory_hits: int = 0
    #: Jobs answered from the on-disk cache (shard granularity).
    disk_hits: int = 0
    #: Duplicate jobs inside one batch, collapsed to a single execution.
    deduplicated: int = 0
    #: Population jobs split into per-trace shards.
    sharded: int = 0
    #: Core simulations actually performed (the expensive part).
    simulated: int = 0
    #: Shard re-dispatch events (queue backend fault recovery).
    requeued: int = 0
    #: Distinct shards that needed more than one dispatch.
    retried: int = 0
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        """The counters as a plain mapping (metrics/JSON surface)."""
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}

    def delta(self, before: "EngineStats") -> dict:
        """Counter increments since the ``before`` snapshot.

        Long-lived multi-campaign consumers (the ``repro serve``
        collector) attribute one shared runner's work to individual
        campaigns by snapshotting around each batch.
        """
        return {f.name: getattr(self, f.name) - getattr(before, f.name)
                for f in dataclasses.fields(self)}


class ParallelRunner:
    """Execute job batches with memoization and pluggable backends.

    Parameters
    ----------
    workers:
        Process count for the pool backend.  ``1`` (default) selects the
        serial backend — deterministic, no subprocesses, identical to
        the legacy serial loops.  ``0`` means "one per CPU".
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to keep
        results only in memory (hermetic: nothing read from or written
        to disk).
    progress:
        Listener with the :class:`~repro.engine.progress.NullProgress`
        protocol.
    backend:
        Execution backend: ``None`` derives it from ``workers`` (serial
        for 1, pool otherwise), a name from
        :data:`~repro.engine.backends.BACKEND_NAMES`, or an
        ``ExecutionBackend`` instance (e.g. a configured
        :class:`~repro.engine.backends.QueueBackend`).
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 progress=None,
                 backend=None):
        if workers == 0 or workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.backend = resolve_backend(backend, workers=self.workers)
        self.stats = EngineStats()
        self._memo: dict[str, object] = {}

    # -- public API ----------------------------------------------------

    def run(self, jobs, label: str = "") -> list:
        """Resolve ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        keys = [job_key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        #: Executable units still unknown: atomic jobs and shards.
        pending: dict[str, Job] = {}
        #: Sharded population jobs awaiting reduction, in plan order.
        plans: dict[str, tuple[Job, tuple[str, ...]]] = {}
        for job, key in zip(jobs, keys):
            if key in self._memo:
                self.stats.memory_hits += 1
                continue
            if key in pending or key in plans:
                self.stats.deduplicated += 1
                continue
            shards = shard_jobs(job)
            if shards is None:
                if not self._from_disk(key):
                    pending[key] = job
                continue
            self.stats.sharded += 1
            shard_keys = []
            for shard in shards:
                shard_key = job_key(shard)
                shard_keys.append(shard_key)
                if shard_key in self._memo or shard_key in pending:
                    continue
                if not self._from_disk(shard_key):
                    pending[shard_key] = shard
            plans[key] = (job, tuple(shard_keys))
        try:
            if pending:
                self._execute(pending, label)
            for key, (job, shard_keys) in plans.items():
                # Reduction order is the plan's population order, fixed
                # at submission — shard completion order cannot
                # influence it.
                self._memo[key] = aggregate_shard_results(
                    job, [self._memo[shard_key] for shard_key in shard_keys])
            return [self._memo[key] for key in keys]
        finally:
            if self.cache is not None:
                # Hit recency is write-behind; one index write per batch.
                self.cache.flush()

    def run_one(self, job: Job):
        """Resolve a single job (memo/cache-aware)."""
        return self.run([job])[0]

    def cached_result(self, job: Job):
        """This runner's memoized result for ``job`` (or ``None``)."""
        return self._memo.get(job_key(job))

    @property
    def memo_size(self) -> int:
        """Results currently held in this runner's in-memory memo."""
        return len(self._memo)

    def reset_memo(self) -> int:
        """Drop the in-memory memo; returns the number of entries freed.

        The on-disk cache (if any) is untouched, so re-resolving a
        dropped key later is a disk hit, not a re-simulation.  Long-lived
        processes (the ``repro serve`` collector) call this between
        campaigns to bound memory — the disk cache's LRU bound handles
        the persistent tier.
        """
        freed = len(self._memo)
        self._memo.clear()
        return freed

    # -- resolution helpers --------------------------------------------

    def _from_disk(self, key: str) -> bool:
        """Memoize ``key`` from the on-disk cache; False on a miss."""
        if self.cache is None:
            return False
        value = self.cache.get(key)
        if value is MISS:
            return False
        self._memo[key] = value
        self.stats.disk_hits += 1
        return True

    # -- execution -----------------------------------------------------

    def _execute(self, pending: dict[str, Job], label: str) -> None:
        total = len(pending)
        backend = self.backend
        requeued_before = self.stats.requeued
        self.progress.start(total, label)
        failure = None
        try:
            done = 0
            for key, result in backend.execute(pending, self.stats):
                self._record(key, result)
                done += 1
                self.progress.advance(done, total,
                                      self._progress_label(label,
                                                           requeued_before))
        except ShardFailure as exc:
            self.stats.errors += 1
            failure = exc
        finally:
            self.progress.finish(total, label)
        if failure is None:
            return
        if backend.wrap_errors:
            raise EngineError(
                _failure_message(failure.job, failure.key, failure.cause,
                                 where=failure.where)) from failure.cause
        # Serial contract: the original exception propagates unchanged —
        # re-raised outside the except block so no ShardFailure plumbing
        # pollutes the traceback chain.
        raise failure.cause

    def _progress_label(self, label: str, requeued_before: int) -> str:
        """Surface this batch's fault recovery in the progress line."""
        requeued = self.stats.requeued - requeued_before
        if not requeued:
            return label
        return f"{label} [requeued {requeued}]".strip()

    def _record(self, key: str, result) -> None:
        self.stats.simulated += 1
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result)


def _failure_message(job: Job, key: str, exc: BaseException,
                     where: str = "") -> str:
    """Failure text naming the evaluation unit precisely.

    The label already identifies the trace for shard jobs; the canonical
    key lets the operator purge or re-run exactly the failed unit.
    """
    suffix = f" {where}" if where else ""
    return f"job '{job.label}' (key {key}) failed{suffix}: {exc}"
