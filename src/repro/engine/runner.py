"""Order-preserving, deduplicating, cache-aware job batch execution.

``ParallelRunner.run`` resolves each job in three tiers:

1. **in-memory memo** — results already produced by this runner;
2. **on-disk cache** — results persisted by any earlier run of the same
   code (see :mod:`repro.engine.cache`);
3. **execution** — everything still pending, either inline
   (``workers=1``, the deterministic serial fallback whose results are
   bit-identical to the legacy inline loops) or across a
   ``ProcessPoolExecutor``.

Duplicate jobs inside one batch are simulated once.  Results come back
in submission order regardless of which worker finished first, so
figure generators can ``zip`` them against their grid.

Error model: with ``workers=1`` exceptions propagate unchanged (exactly
like the legacy inline code); from worker processes they are re-raised
as :class:`EngineError` chained to the original exception, and the rest
of the batch is cancelled.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass

from repro.engine.cache import MISS, ResultCache
from repro.engine.executors import execute_job
from repro.engine.jobs import Job, job_key
from repro.engine.progress import NullProgress


class EngineError(RuntimeError):
    """A job failed while executing inside a worker process."""


@dataclass
class EngineStats:
    """Counters accumulated across every batch a runner executes."""

    submitted: int = 0
    #: Jobs answered from this runner's own memo.
    memory_hits: int = 0
    #: Jobs answered from the on-disk cache.
    disk_hits: int = 0
    #: Duplicate jobs inside one batch, collapsed to a single execution.
    deduplicated: int = 0
    #: Core simulations actually performed (the expensive part).
    simulated: int = 0
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ParallelRunner:
    """Execute job batches with memoization and optional parallelism.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs jobs inline — deterministic,
        no subprocesses, identical to the legacy serial loops.  ``0``
        means "one per CPU".
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to keep
        results only in memory (hermetic: nothing read from or written
        to disk).
    progress:
        Listener with the :class:`~repro.engine.progress.NullProgress`
        protocol.
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 progress=None):
        if workers == 0 or workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.stats = EngineStats()
        self._memo: dict[str, object] = {}

    # -- public API ----------------------------------------------------

    def run(self, jobs, label: str = "") -> list:
        """Resolve ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        keys = [job_key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        pending: dict[str, Job] = {}
        for job, key in zip(jobs, keys):
            if key in self._memo:
                self.stats.memory_hits += 1
                continue
            if key in pending:
                self.stats.deduplicated += 1
                continue
            if self.cache is not None:
                value = self.cache.get(key)
                if value is not MISS:
                    self._memo[key] = value
                    self.stats.disk_hits += 1
                    continue
            pending[key] = job
        if pending:
            self._execute(pending, label)
        return [self._memo[key] for key in keys]

    def run_one(self, job: Job):
        """Resolve a single job (memo/cache-aware)."""
        return self.run([job])[0]

    def cached_result(self, job: Job):
        """This runner's memoized result for ``job`` (or ``None``)."""
        return self._memo.get(job_key(job))

    # -- execution -----------------------------------------------------

    def _execute(self, pending: dict[str, Job], label: str) -> None:
        total = len(pending)
        self.progress.start(total, label)
        try:
            if self.workers == 1 or total == 1:
                # A single pending job skips pool setup even on a
                # multi-worker runner; errors still follow the runner's
                # declared contract (wrapped unless workers == 1).
                self._execute_serial(pending, label, total,
                                     wrap_errors=self.workers > 1)
            else:
                self._execute_parallel(pending, label, total)
        finally:
            self.progress.finish(total, label)

    def _execute_serial(self, pending: dict[str, Job], label: str,
                        total: int, wrap_errors: bool = False) -> None:
        for done, (key, job) in enumerate(pending.items(), start=1):
            try:
                result = execute_job(job)
            except Exception as exc:
                self.stats.errors += 1
                if wrap_errors:
                    raise EngineError(
                        f"job '{job.label}' failed: {exc}") from exc
                raise  # serial fallback: legacy exception semantics
            self._record(key, result)
            self.progress.advance(done, total, label)

    def _execute_parallel(self, pending: dict[str, Job], label: str,
                          total: int) -> None:
        max_workers = min(self.workers, total)
        done = 0
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers)
        try:
            futures = {pool.submit(execute_job, job): (key, job)
                       for key, job in pending.items()}
            for future in concurrent.futures.as_completed(futures):
                key, job = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    self.stats.errors += 1
                    raise EngineError(
                        f"job '{job.label}' failed in a worker "
                        f"process: {exc}") from exc
                self._record(key, result)
                done += 1
                self.progress.advance(done, total, label)
        except BaseException:
            # Surface the failure immediately: drop queued work and do
            # not block on simulations already in flight (they finish in
            # the background and are reaped at interpreter exit).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def _record(self, key: str, result) -> None:
        self.stats.simulated += 1
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result)
