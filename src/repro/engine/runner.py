"""Order-preserving, deduplicating, cache-aware job batch execution.

``ParallelRunner.run`` resolves each job in three tiers:

1. **in-memory memo** — results already produced by this runner;
2. **on-disk cache** — results persisted by any earlier run of the same
   code (see :mod:`repro.engine.cache`);
3. **execution** — everything still pending, either inline
   (``workers=1``, the deterministic serial fallback whose results are
   bit-identical to the legacy inline loops) or across a
   ``ProcessPoolExecutor``.

Population jobs are split into **per-trace shards** before execution
(:func:`~repro.engine.jobs.shard_jobs`): the unit of work and of on-disk
caching is a single (trace, Vcc, scheme, config) point, so a grid with
few points and many traces still saturates every worker, and growing a
population re-simulates only the traces that are actually new.  Shard
results are reduced back into the population result in population order
(:func:`~repro.engine.jobs.aggregate_shard_results`) — deterministic no
matter which worker finished first — and the aggregate lives in the
runner's memo only; the disk cache stores shards, never aggregates, so
per-trace granularity cannot double the cache footprint.

Duplicate jobs inside one batch are simulated once.  Results come back
in submission order regardless of which worker finished first, so
figure generators can ``zip`` them against their grid.

Error model: with ``workers=1`` exceptions propagate unchanged (exactly
like the legacy inline code); from worker processes they are re-raised
as :class:`EngineError` chained to the original exception, and the rest
of the batch is cancelled.  A crashed shard names its trace (via the
job label) and its canonical job key, so the offending evaluation point
can be rerun or purged from the cache directly.
"""

from __future__ import annotations

import concurrent.futures
import os
from dataclasses import dataclass

from repro.engine.cache import MISS, ResultCache
from repro.engine.executors import execute_job
from repro.engine.jobs import Job, aggregate_shard_results, job_key, \
    shard_jobs
from repro.engine.progress import NullProgress


class EngineError(RuntimeError):
    """A job failed while executing inside a worker process."""


@dataclass
class EngineStats:
    """Counters accumulated across every batch a runner executes.

    ``submitted``/``memory_hits``/``deduplicated`` count the jobs handed
    to :meth:`ParallelRunner.run`; ``disk_hits`` and ``simulated`` count
    executable units — per-trace shards for population jobs — since those
    are what the disk cache stores and the workers run.
    """

    submitted: int = 0
    #: Jobs answered from this runner's own memo.
    memory_hits: int = 0
    #: Jobs answered from the on-disk cache (shard granularity).
    disk_hits: int = 0
    #: Duplicate jobs inside one batch, collapsed to a single execution.
    deduplicated: int = 0
    #: Population jobs split into per-trace shards.
    sharded: int = 0
    #: Core simulations actually performed (the expensive part).
    simulated: int = 0
    errors: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


class ParallelRunner:
    """Execute job batches with memoization and optional parallelism.

    Parameters
    ----------
    workers:
        Process count.  ``1`` (default) runs jobs inline — deterministic,
        no subprocesses, identical to the legacy serial loops.  ``0``
        means "one per CPU".
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to keep
        results only in memory (hermetic: nothing read from or written
        to disk).
    progress:
        Listener with the :class:`~repro.engine.progress.NullProgress`
        protocol.
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 progress=None):
        if workers == 0 or workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.stats = EngineStats()
        self._memo: dict[str, object] = {}

    # -- public API ----------------------------------------------------

    def run(self, jobs, label: str = "") -> list:
        """Resolve ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        keys = [job_key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        #: Executable units still unknown: atomic jobs and shards.
        pending: dict[str, Job] = {}
        #: Sharded population jobs awaiting reduction, in plan order.
        plans: dict[str, tuple[Job, tuple[str, ...]]] = {}
        for job, key in zip(jobs, keys):
            if key in self._memo:
                self.stats.memory_hits += 1
                continue
            if key in pending or key in plans:
                self.stats.deduplicated += 1
                continue
            shards = shard_jobs(job)
            if shards is None:
                if not self._from_disk(key):
                    pending[key] = job
                continue
            self.stats.sharded += 1
            shard_keys = []
            for shard in shards:
                shard_key = job_key(shard)
                shard_keys.append(shard_key)
                if shard_key in self._memo or shard_key in pending:
                    continue
                if not self._from_disk(shard_key):
                    pending[shard_key] = shard
            plans[key] = (job, tuple(shard_keys))
        try:
            if pending:
                self._execute(pending, label)
            for key, (job, shard_keys) in plans.items():
                # Reduction order is the plan's population order, fixed
                # at submission — shard completion order cannot
                # influence it.
                self._memo[key] = aggregate_shard_results(
                    job, [self._memo[shard_key] for shard_key in shard_keys])
            return [self._memo[key] for key in keys]
        finally:
            if self.cache is not None:
                # Hit recency is write-behind; one index write per batch.
                self.cache.flush()

    def run_one(self, job: Job):
        """Resolve a single job (memo/cache-aware)."""
        return self.run([job])[0]

    def cached_result(self, job: Job):
        """This runner's memoized result for ``job`` (or ``None``)."""
        return self._memo.get(job_key(job))

    # -- resolution helpers --------------------------------------------

    def _from_disk(self, key: str) -> bool:
        """Memoize ``key`` from the on-disk cache; False on a miss."""
        if self.cache is None:
            return False
        value = self.cache.get(key)
        if value is MISS:
            return False
        self._memo[key] = value
        self.stats.disk_hits += 1
        return True

    # -- execution -----------------------------------------------------

    def _execute(self, pending: dict[str, Job], label: str) -> None:
        total = len(pending)
        self.progress.start(total, label)
        try:
            if self.workers == 1 or total == 1:
                # A single pending job skips pool setup even on a
                # multi-worker runner; errors still follow the runner's
                # declared contract (wrapped unless workers == 1).
                self._execute_serial(pending, label, total,
                                     wrap_errors=self.workers > 1)
            else:
                self._execute_parallel(pending, label, total)
        finally:
            self.progress.finish(total, label)

    def _execute_serial(self, pending: dict[str, Job], label: str,
                        total: int, wrap_errors: bool = False) -> None:
        for done, (key, job) in enumerate(pending.items(), start=1):
            try:
                result = execute_job(job)
            except Exception as exc:
                self.stats.errors += 1
                if wrap_errors:
                    raise EngineError(
                        _failure_message(job, key, exc)) from exc
                raise  # serial fallback: legacy exception semantics
            self._record(key, result)
            self.progress.advance(done, total, label)

    def _execute_parallel(self, pending: dict[str, Job], label: str,
                          total: int) -> None:
        max_workers = min(self.workers, total)
        done = 0
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers)
        try:
            futures = {pool.submit(execute_job, job): (key, job)
                       for key, job in pending.items()}
            for future in concurrent.futures.as_completed(futures):
                key, job = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    self.stats.errors += 1
                    raise EngineError(
                        _failure_message(job, key, exc,
                                         where="in a worker process")
                    ) from exc
                self._record(key, result)
                done += 1
                self.progress.advance(done, total, label)
        except BaseException:
            # Surface the failure immediately: drop queued work and do
            # not block on simulations already in flight (they finish in
            # the background and are reaped at interpreter exit).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def _record(self, key: str, result) -> None:
        self.stats.simulated += 1
        self._memo[key] = result
        if self.cache is not None:
            self.cache.put(key, result)


def _failure_message(job: Job, key: str, exc: BaseException,
                     where: str = "") -> str:
    """Failure text naming the evaluation unit precisely.

    The label already identifies the trace for shard jobs; the canonical
    key lets the operator purge or re-run exactly the failed unit.
    """
    suffix = f" {where}" if where else ""
    return f"job '{job.label}' (key {key}) failed{suffix}: {exc}"
