"""Order-preserving, deduplicating, cache-aware job batch execution.

``ParallelRunner.run`` resolves each job in three tiers:

1. **in-memory memo** — results already produced by this runner;
2. **on-disk cache** — results persisted by any earlier run of the same
   code (see :mod:`repro.engine.cache`);
3. **execution** — everything still pending, handed to the runner's
   :mod:`execution backend <repro.engine.backends>`: inline
   (:class:`~repro.engine.backends.SerialBackend`, the deterministic
   fallback whose results are bit-identical to the legacy inline
   loops), a ``ProcessPoolExecutor``
   (:class:`~repro.engine.backends.PoolBackend`), or the distributed
   work-queue broker (:class:`~repro.engine.backends.QueueBackend`,
   shards executed by detached ``python -m repro worker`` processes).

Population jobs are split into **per-trace shards** before execution
(:func:`~repro.engine.jobs.shard_jobs`): the unit of work and of on-disk
caching is a single (trace, Vcc, scheme, config) point, so a grid with
few points and many traces still saturates every worker, and growing a
population re-simulates only the traces that are actually new.  Shard
results are reduced back into the population result in population order
(:func:`~repro.engine.jobs.aggregate_shard_results`) — deterministic no
matter which worker finished first — and the aggregate lives in the
runner's memo only; the disk cache stores shards, never aggregates, so
per-trace granularity cannot double the cache footprint.

Duplicate jobs inside one batch are simulated once.  Results come back
in submission order regardless of which worker finished first, so
figure generators can ``zip`` them against their grid.

Error model: on the serial backend exceptions propagate unchanged
(exactly like the legacy inline code); from every other backend they are
re-raised as :class:`EngineError` chained to the original exception, and
the rest of the batch is cancelled.  A crashed shard names its trace
(via the job label) and its canonical job key, so the offending
evaluation point can be rerun or purged from the cache directly.  The
queue backend retries transient failures first (bounded, counted in
``stats.requeued``/``stats.retried``) and only surfaces permanent ones.
"""

from __future__ import annotations

import os
import time

from repro.engine.backends import ShardFailure, resolve_backend
from repro.engine.cache import MISS, ResultCache
from repro.engine.jobs import Job, aggregate_shard_results, job_key, \
    shard_jobs
from repro.engine.progress import NullProgress
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import BatchTrace


class EngineError(RuntimeError):
    """A job failed while executing inside a worker process."""


class EngineStats:
    """Counters accumulated across every batch a runner executes.

    ``submitted``/``memory_hits``/``deduplicated`` count the jobs handed
    to :meth:`ParallelRunner.run`; ``disk_hits`` and ``simulated`` count
    executable units — per-trace shards for population jobs — since those
    are what the disk cache stores and the workers run.  ``requeued`` and
    ``retried`` count the queue backend's fault recovery: every
    re-dispatch of a shard (expired lease, quarantined result, failed
    attempt with retry budget left) bumps ``requeued``, and each
    *distinct* shard that needed more than one dispatch bumps ``retried``
    once.

    Since the telemetry layer landed this is a *view* over typed
    :class:`~repro.obs.metrics.Counter` instruments in a
    :class:`~repro.obs.metrics.MetricsRegistry` (``engine_<name>`` each)
    — the same instruments a Prometheus scrape renders — while keeping
    the legacy surface intact: plain attribute reads and writes
    (``stats.simulated += 1``), keyword construction, ``as_dict`` and
    ``delta``.
    """

    #: Counter name -> help text, in the legacy field order.
    COUNTERS = {
        "submitted": "Jobs handed to the runner",
        "memory_hits": "Jobs answered from the runner's own memo",
        "disk_hits": "Jobs answered from the on-disk cache (shards)",
        "deduplicated": "Duplicate jobs collapsed within one batch",
        "sharded": "Population jobs split into per-trace shards",
        "simulated": "Core simulations actually performed",
        "requeued": "Shard re-dispatch events (queue fault recovery)",
        "retried": "Distinct shards that needed more than one dispatch",
        "errors": "Batches that surfaced a shard failure",
    }

    def __init__(self, registry: MetricsRegistry | None = None,
                 **initial):
        if registry is None:
            registry = MetricsRegistry()
        counters = {name: registry.counter(f"engine_{name}", help)
                    for name, help in self.COUNTERS.items()}
        # object.__setattr__: our __setattr__ routes counter names.
        object.__setattr__(self, "registry", registry)
        object.__setattr__(self, "_counters", counters)
        for name, value in initial.items():
            if name not in counters:
                raise TypeError(
                    f"EngineStats got an unexpected counter {name!r}")
            counters[name].set(int(value))

    def __getattr__(self, name: str):
        # Only reached when normal lookup fails — i.e. for counter
        # names, which live in the registry rather than the instance.
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].set(int(value))
        else:
            object.__setattr__(self, name, value)

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def as_dict(self) -> dict:
        """The counters as a plain mapping (metrics/JSON surface)."""
        return {name: counter.value
                for name, counter in self._counters.items()}

    def delta(self, before) -> dict:
        """Counter increments since the ``before`` snapshot.

        Long-lived multi-campaign consumers (the ``repro serve``
        collector) attribute one shared runner's work to individual
        campaigns by snapshotting around each batch.  ``before`` may be
        another ``EngineStats`` or a plain mapping (e.g. a registry
        record persisted by an older code version); counters it does
        not know about count from zero instead of raising.
        """
        if hasattr(before, "as_dict"):
            before = before.as_dict()
        return {name: counter.value - int(before.get(name, 0) or 0)
                for name, counter in self._counters.items()}

    def __eq__(self, other) -> bool:
        if isinstance(other, EngineStats):
            return self.as_dict() == other.as_dict()
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={value}"
                          for name, value in self.as_dict().items())
        return f"EngineStats({inner})"

    # Counter instruments hold locks; pickle the values, not the
    # machinery (a restored snapshot gets its own private registry).

    def __getstate__(self) -> dict:
        return self.as_dict()

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


class ParallelRunner:
    """Execute job batches with memoization and pluggable backends.

    Parameters
    ----------
    workers:
        Process count for the pool backend.  ``1`` (default) selects the
        serial backend — deterministic, no subprocesses, identical to
        the legacy serial loops.  ``0`` means "one per CPU".
    cache:
        A :class:`~repro.engine.cache.ResultCache`, or ``None`` to keep
        results only in memory (hermetic: nothing read from or written
        to disk).
    progress:
        Listener with the :class:`~repro.engine.progress.NullProgress`
        protocol.
    backend:
        Execution backend: ``None`` derives it from ``workers`` (serial
        for 1, pool otherwise), a name from
        :data:`~repro.engine.backends.BACKEND_NAMES`, or an
        ``ExecutionBackend`` instance (e.g. a configured
        :class:`~repro.engine.backends.QueueBackend`).
    trace_sink:
        A span sink (:class:`~repro.obs.trace.JsonlTraceSink`) to which
        every batch emits one span per resolved shard plus a batch
        span.  ``None`` (default) or a disabled sink keeps the untraced
        fast path: no span machinery is built at all.
    metrics:
        A shared :class:`~repro.obs.metrics.MetricsRegistry` for this
        runner's instruments (``stats`` counters, cache gauges, queue
        fault counters).  ``None`` creates a private registry.
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 progress=None,
                 backend=None,
                 trace_sink=None,
                 metrics: MetricsRegistry | None = None):
        if workers == 0 or workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = int(workers)
        self.cache = cache
        self.progress = progress if progress is not None else NullProgress()
        self.backend = resolve_backend(backend, workers=self.workers)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.stats = EngineStats(registry=self.metrics)
        if trace_sink is not None \
                and getattr(trace_sink, "enabled", True) is False:
            trace_sink = None
        self.trace_sink = trace_sink
        for layer in (self.backend, self.cache):
            attach = getattr(layer, "attach_metrics", None)
            if attach is not None:
                attach(self.metrics)
        self._memo: dict[str, object] = {}

    # -- public API ----------------------------------------------------

    def run(self, jobs, label: str = "") -> list:
        """Resolve ``jobs`` and return their results in submission order."""
        jobs = list(jobs)
        keys = [job_key(job) for job in jobs]
        self.stats.submitted += len(jobs)
        trace = None
        if self.trace_sink is not None:
            trace = BatchTrace(self.trace_sink, backend=self.backend.name,
                               batch_label=label)
        #: Executable units still unknown: atomic jobs and shards.
        pending: dict[str, Job] = {}
        #: Sharded population jobs awaiting reduction, in plan order.
        plans: dict[str, tuple[Job, tuple[str, ...]]] = {}
        status = "error"
        try:
            for job, key in zip(jobs, keys):
                if key in self._memo:
                    self.stats.memory_hits += 1
                    continue
                if key in pending or key in plans:
                    self.stats.deduplicated += 1
                    continue
                shards = shard_jobs(job)
                if shards is None:
                    if not self._from_disk(key, job, trace):
                        pending[key] = job
                    continue
                self.stats.sharded += 1
                shard_keys = []
                for shard in shards:
                    shard_key = job_key(shard)
                    shard_keys.append(shard_key)
                    if shard_key in self._memo or shard_key in pending:
                        continue
                    if not self._from_disk(shard_key, shard, trace):
                        pending[shard_key] = shard
                plans[key] = (job, tuple(shard_keys))
            if trace is not None:
                trace.plan_done()
            if pending:
                self._execute(pending, label, trace)
            for key, (job, shard_keys) in plans.items():
                # Reduction order is the plan's population order, fixed
                # at submission — shard completion order cannot
                # influence it.
                if trace is not None:
                    reduce_start = time.perf_counter()
                self._memo[key] = aggregate_shard_results(
                    job, [self._memo[shard_key] for shard_key in shard_keys])
                if trace is not None:
                    trace.aggregated(time.perf_counter() - reduce_start)
            results = [self._memo[key] for key in keys]
            status = "ok"
            return results
        finally:
            if trace is not None:
                trace.finish(status)
            if self.cache is not None:
                # Hit recency is write-behind; one index write per batch.
                self.cache.flush()

    def run_one(self, job: Job):
        """Resolve a single job (memo/cache-aware)."""
        return self.run([job])[0]

    def cached_result(self, job: Job):
        """This runner's memoized result for ``job`` (or ``None``)."""
        return self._memo.get(job_key(job))

    @property
    def memo_size(self) -> int:
        """Results currently held in this runner's in-memory memo."""
        return len(self._memo)

    def reset_memo(self) -> int:
        """Drop the in-memory memo; returns the number of entries freed.

        The on-disk cache (if any) is untouched, so re-resolving a
        dropped key later is a disk hit, not a re-simulation.  Long-lived
        processes (the ``repro serve`` collector) call this between
        campaigns to bound memory — the disk cache's LRU bound handles
        the persistent tier.
        """
        freed = len(self._memo)
        self._memo.clear()
        return freed

    # -- resolution helpers --------------------------------------------

    def _from_disk(self, key: str, job: Job | None = None,
                   trace=None) -> bool:
        """Memoize ``key`` from the on-disk cache; False on a miss."""
        if self.cache is None:
            return False
        if trace is None:
            value = self.cache.get(key)
            if value is MISS:
                return False
        else:
            read_start = time.perf_counter()
            value = self.cache.get(key)
            read_s = time.perf_counter() - read_start
            if value is MISS:
                return False  # miss read time stays in the plan stage
            trace.record_hit(key, job, read_s)
        self._memo[key] = value
        self.stats.disk_hits += 1
        return True

    # -- execution -----------------------------------------------------

    def _execute(self, pending: dict[str, Job], label: str,
                 trace=None) -> None:
        total = len(pending)
        backend = self.backend
        requeued_before = self.stats.requeued
        self.progress.start(total, label)
        if trace is not None:
            trace.submitted(pending.items())
        # Capability check, not a hard protocol change: test doubles
        # and third-party backends with the legacy two-argument
        # signature keep working (their spans just lack the
        # worker-measured execute envelope).
        if trace is not None and getattr(backend, "supports_tracing",
                                         False):
            completions = backend.execute(pending, self.stats, trace=trace)
        else:
            completions = backend.execute(pending, self.stats)
        failure = None
        try:
            done = 0
            for key, result in completions:
                self._record(key, result, trace)
                done += 1
                self.progress.advance(done, total,
                                      self._progress_label(label,
                                                           requeued_before))
        except ShardFailure as exc:
            self.stats.errors += 1
            if trace is not None:
                trace.failed(exc.key)
            failure = exc
        finally:
            self.progress.finish(total, label)
        if failure is None:
            return
        if backend.wrap_errors:
            raise EngineError(
                _failure_message(failure.job, failure.key, failure.cause,
                                 where=failure.where)) from failure.cause
        # Serial contract: the original exception propagates unchanged —
        # re-raised outside the except block so no ShardFailure plumbing
        # pollutes the traceback chain.
        raise failure.cause

    def _progress_label(self, label: str, requeued_before: int) -> str:
        """Surface this batch's fault recovery in the progress line."""
        requeued = self.stats.requeued - requeued_before
        if not requeued:
            return label
        return f"{label} [requeued {requeued}]".strip()

    def _record(self, key: str, result, trace=None) -> None:
        self.stats.simulated += 1
        self._memo[key] = result
        if trace is None:
            if self.cache is not None:
                self.cache.put(key, result)
            return
        write_s = 0.0
        if self.cache is not None:
            write_start = time.perf_counter()
            self.cache.put(key, result)
            write_s = time.perf_counter() - write_start
        trace.collected(key, write_s)


def _failure_message(job: Job, key: str, exc: BaseException,
                     where: str = "") -> str:
    """Failure text naming the evaluation unit precisely.

    The label already identifies the trace for shard jobs; the canonical
    key lets the operator purge or re-run exactly the failed unit.
    """
    suffix = f" {where}" if where else ""
    return f"job '{job.label}' (key {key}) failed{suffix}: {exc}"
