"""Pluggable execution backends behind the runner's shard contract.

The :class:`~repro.engine.runner.ParallelRunner` resolves memo and disk
hits itself, then hands everything still pending — atomic jobs and
per-trace shards, as a ``key -> Job`` mapping — to an **execution
backend**.  A backend is anything with::

    name: str              # "serial" | "pool" | "queue" | ...
    wrap_errors: bool      # False only for the bit-identical serial path
    def execute(self, pending, stats):
        # yield (key, result) pairs as units complete, in any order;
        # raise ShardFailure when a unit permanently fails

Backends that additionally accept ``execute(pending, stats, trace=...)``
advertise it with a ``supports_tracing = True`` attribute; the runner
falls back to the two-argument call otherwise, so third-party or test
backends keep working unchanged.  The ``trace`` is a
:class:`repro.obs.trace.BatchTrace`: backends report worker-measured
execute time per key through ``trace.executed`` and the runner emits
the span when it collects the result.

Three implementations ship here:

* :class:`SerialBackend` — inline, deterministic, no subprocesses;
  exceptions propagate unwrapped, exactly like the legacy inline loops.
* :class:`PoolBackend` — a ``ProcessPoolExecutor`` fan-out on one
  machine (the former ``ParallelRunner._execute_parallel``); a single
  pending unit skips pool setup and runs inline, and large batches of
  cheap jobs ship as multi-job chunks per worker round trip (the
  batch-submission surface — see the class docstring).
* :class:`QueueBackend` — a fault-tolerant distributed backend on the
  filesystem spool broker (:mod:`repro.engine.broker`): shards are
  pickled into ``pending/``, detached ``python -m repro worker``
  processes claim them via rename-based leases with heartbeats, and the
  backend collects ``done/`` results, re-dispatching shards whose lease
  expires (crashed or wedged worker) or whose result is corrupt
  (quarantined), bounded by ``max_retries``; permanent failures surface
  as :class:`~repro.engine.runner.EngineError` naming the shard's trace
  and canonical key.

All three produce bit-identical results for the same batch — the
backend-equivalence suite (``tests/test_golden.py``) locks that down
against the checked-in goldens.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
import time
import warnings
from dataclasses import dataclass, field

from repro.engine.broker import SpoolBroker, CompletedEvent, CorruptEvent, \
    ExpiredEvent, FailedEvent, LostEvent, WireResult, default_queue_root, \
    run_worker_loop
from repro.engine.executors import execute_chunk, execute_chunk_timed, \
    execute_job, execute_job_timed
from repro.engine.jobs import Job
from repro.errors import ConfigError

#: Backend names accepted by ``--backend`` / :func:`resolve_backend`.
BACKEND_NAMES = ("serial", "pool", "queue")

#: Spool directories that already produced the workerless-spool warning
#: in this process.  The warning is an operator hint ("you forgot to
#: start a worker"), so it fires once per spool directory — not once per
#: runner batch, which would repeat it for every campaign a long-lived
#: multi-campaign process (``repro serve``) runs over one shared spool.
_WORKERLESS_WARNED_SPOOLS: set = set()
_WORKERLESS_WARNED_LOCK = threading.Lock()


class ShardFailure(RuntimeError):
    """Internal: one executable unit failed inside a backend.

    Backends raise this instead of :class:`EngineError` so the runner
    owns the error contract: the serial backend's failures are re-raised
    unwrapped (legacy inline semantics), every other backend's are
    wrapped into an ``EngineError`` naming the unit's label (which
    carries the trace for shard jobs) and canonical key.
    """

    def __init__(self, key: str, job: Job, cause: BaseException,
                 where: str = ""):
        super().__init__(f"shard {key} failed")
        self.key = key
        self.job = job
        self.cause = cause
        self.where = where


class RemoteShardError(RuntimeError):
    """A shard raised on a queue worker; carries the remote traceback."""


class SerialBackend:
    """Inline execution in submission order — the deterministic default."""

    name = "serial"
    #: Legacy contract: serial failures propagate as the original
    #: exception, not wrapped in EngineError.
    wrap_errors = False
    supports_tracing = True

    def execute(self, pending, stats, trace=None):
        for key, job in pending.items():
            try:
                if trace is None:
                    result = execute_job(job)
                else:
                    started = time.perf_counter()
                    result = execute_job(job)
                    trace.executed(key, time.perf_counter() - started,
                                   worker="inline")
            except Exception as exc:
                raise ShardFailure(key, job, exc) from exc
            yield key, result


class PoolBackend:
    """``ProcessPoolExecutor`` fan-out across one machine's cores.

    ``batch`` is the backend's batch-submission surface: chunks of that
    many jobs ship per worker round trip (``None`` picks a size from
    the batch shape — 1 for small batches, growing for job-dominated
    ones), amortizing pickle/submit overhead for cheap vectorized jobs
    like ``mc-block`` without changing results: chunk members execute
    independently (:func:`~repro.engine.executors.execute_chunk`) and
    stream back as individual ``(key, result)`` completions.
    """

    name = "pool"
    wrap_errors = True
    supports_tracing = True

    def __init__(self, workers: int = 0, batch: int | None = None):
        if workers == 0 or workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ConfigError(f"pool backend needs workers >= 1 "
                              f"(got {workers})")
        if batch is not None and batch < 1:
            raise ConfigError(f"pool backend needs batch >= 1 "
                              f"(got {batch})")
        self.workers = int(workers)
        self.batch = batch

    def _chunk_size(self, pending_count: int) -> int:
        """Jobs per worker round trip for a batch of ``pending_count``.

        Auto mode keeps ~8 chunks in flight per worker for load balance
        and caps the chunk at 32 so one slow member cannot starve the
        completion stream; batches too small to matter stay chunk-free
        (the legacy one-submit-per-job path).
        """
        if self.batch is not None:
            return self.batch
        return min(32, max(1, pending_count // (self.workers * 8)))

    def execute(self, pending, stats, trace=None):
        if len(pending) == 1:
            # One pending unit skips pool setup entirely and runs the
            # serial path; the failure is still wrapped (EngineError)
            # per the multi-worker contract, because ShardFailure is
            # raised either way and the runner checks *this* backend's
            # wrap_errors.
            yield from SerialBackend().execute(pending, stats, trace)
            return
        chunk = self._chunk_size(len(pending))
        if chunk > 1:
            yield from self._execute_chunked(pending, chunk, trace)
            return
        # Traced batches ship the timed wrapper so the worker's own
        # monotonic clock measures execute time (durations only — no
        # cross-process timestamp agreement needed).
        submit = execute_job if trace is None else execute_job_timed
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending)))
        try:
            futures = {pool.submit(submit, job): (key, job)
                       for key, job in pending.items()}
            for future in concurrent.futures.as_completed(futures):
                key, job = futures[future]
                try:
                    result = future.result()
                except Exception as exc:
                    raise ShardFailure(key, job, exc,
                                       where="in a worker process") from exc
                if trace is not None:
                    result, meta = result
                    trace.executed(key, meta.get("execute_s", 0.0),
                                   meta.get("worker", ""))
                yield key, result
        except BaseException:
            # Surface the failure immediately: drop queued work and do
            # not block on simulations already in flight (they finish in
            # the background and are reaped at interpreter exit).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def _execute_chunked(self, pending, chunk: int, trace=None):
        """Submit ``chunk``-sized job lists per future.

        A chunk's completed members are always delivered before any
        member failure is raised — per-job isolation inside
        :func:`execute_chunk` means one bad job never discards its
        siblings' finished simulations.
        """
        items = list(pending.items())
        chunks = [items[index:index + chunk]
                  for index in range(0, len(items), chunk)]
        run_chunk = execute_chunk if trace is None else execute_chunk_timed
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)))
        try:
            futures = {
                pool.submit(run_chunk, [job for _, job in part]): part
                for part in chunks}
            for future in concurrent.futures.as_completed(futures):
                part = futures[future]
                try:
                    outcomes = future.result()
                except Exception as exc:
                    # The whole chunk died (worker crash / unpicklable
                    # payload): attribute it to the first member.
                    key, job = part[0]
                    raise ShardFailure(key, job, exc,
                                       where="in a worker process") from exc
                failure = None
                for (key, job), (tag, value) in zip(part, outcomes):
                    if tag == "ok":
                        if trace is not None:
                            value, meta = value
                            trace.executed(key,
                                           meta.get("execute_s", 0.0),
                                           meta.get("worker", ""))
                        yield key, value
                    elif failure is None:
                        failure = ShardFailure(key, job, value,
                                               where="in a worker process")
                if failure is not None:
                    raise failure from failure.cause
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)


@dataclass
class _BatchState:
    """One queue batch's collection bookkeeping."""

    outstanding: set = field(default_factory=set)
    #: Dispatch count per key (1 = first execution).
    attempts: dict = field(default_factory=dict)
    #: Keys that have been re-dispatched at least once.
    retried: set = field(default_factory=set)
    #: Consecutive polls each key has looked lost (no spool file at
    #: all); acted on only after two passes, since a single pass can
    #: race a shard mid-transition (the probes are not one snapshot).
    lost_polls: dict = field(default_factory=dict)


class QueueBackend:
    """Distributed execution through the filesystem spool broker.

    Parameters
    ----------
    queue_dir:
        Spool root shared with the workers (default ``$REPRO_QUEUE_DIR``).
        Validated eagerly: a missing/non-directory/unwritable root raises
        :class:`~repro.errors.ConfigError` with a clean message.
    lease_timeout:
        Seconds without a heartbeat before a claim is considered dead and
        its shard re-dispatched (default ``$REPRO_QUEUE_LEASE_S`` or 60).
    max_retries:
        Re-dispatches allowed per shard (lease expiries, quarantined
        results and failed attempts all count) before the batch fails
        with an :class:`~repro.engine.runner.EngineError`.
    local_workers:
        Worker threads the backend itself runs for the duration of each
        batch.  ``0`` (the default) relies entirely on detached
        ``python -m repro worker`` processes; ``N > 0`` makes the backend
        self-sufficient — used by the equivalence tests and handy for
        single-machine smoke runs of the full wire path.
    poll_interval:
        Collector sleep between polls that made no progress.
    claim_batch:
        Shards each local worker thread claims per broker round trip
        (see :meth:`SpoolBroker.claim_batch`); detached workers choose
        their own batch size via ``repro worker --claim-batch``.
    """

    name = "queue"
    wrap_errors = True
    supports_tracing = True

    def __init__(self, queue_dir=None, *, lease_timeout: float | None = None,
                 max_retries: int = 3, local_workers: int = 0,
                 poll_interval: float = 0.05, claim_batch: int = 1):
        if queue_dir is None:
            queue_dir = default_queue_root()
        if max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if claim_batch < 1:
            raise ConfigError(f"claim_batch must be >= 1 "
                              f"(got {claim_batch})")
        self.broker = SpoolBroker(queue_dir, lease_timeout=lease_timeout)
        self.max_retries = int(max_retries)
        self.local_workers = int(local_workers)
        self.poll_interval = float(poll_interval)
        self.claim_batch = int(claim_batch)
        #: Optional instruments, wired by :meth:`attach_metrics`.
        self._requeued_counter = None
        self._fault_counters: dict = {}

    def attach_metrics(self, registry) -> None:
        """Register queue fault-recovery instruments on ``registry``.

        The broker's lease-watch hooks feed a heartbeat-lag histogram
        (how stale each live lease's beat looks at poll time) and an
        expiry counter; requeue traffic is counted overall and broken
        down by fault class.
        """
        self._requeued_counter = registry.counter(
            "queue_requeued", "Shard re-dispatch events (fault recovery)")
        self._fault_counters = {
            name: registry.counter(
                "queue_faults",
                "Queue fault events by class",
                labels={"outcome": name})
            for name in ("lost", "expired", "corrupt", "failed")}
        lag = registry.histogram(
            "queue_heartbeat_lag_s",
            "Seconds since each live lease's last heartbeat, per poll")
        self.broker.on_lease_lag = lag.observe
        self.broker.on_lease_expired = registry.counter(
            "queue_lease_expired",
            "Leases expired after a full heartbeat-free timeout").inc

    # -- collection ----------------------------------------------------

    def _new_state(self, pending) -> _BatchState:
        return _BatchState(outstanding=set(pending),
                           attempts={key: 1 for key in pending})

    def _requeue(self, key: str, job: Job, state: _BatchState, stats,
                 cause: BaseException, resubmit: bool) -> None:
        """Charge one failed dispatch and re-dispatch or give up."""
        if state.attempts[key] > self.max_retries:
            raise ShardFailure(
                key, job, cause,
                where=f"on the queue backend after {state.attempts[key]} "
                      f"attempts") from cause
        state.attempts[key] += 1
        stats.requeued += 1
        if self._requeued_counter is not None:
            self._requeued_counter.inc()
        if key not in state.retried:
            state.retried.add(key)
            stats.retried += 1
        if resubmit:
            self.broker.submit(key, job)

    def _step(self, pending, state: _BatchState, stats):
        """One poll pass: handle every event.

        Returns ``(completions, failure)``: the results collected this
        pass, plus the first fatal :class:`ShardFailure` (or ``None``).
        A fatal failure never swallows sibling completions — the poll
        already consumed their ``done/`` files, so dropping them here
        would force the caller to re-simulate work that succeeded.
        Completed events are handled first for the same reason.
        """
        completions = []
        failure = None
        lost_this_pass = set()
        events = self.broker.poll(state.outstanding)
        events.sort(key=lambda event: not isinstance(event, CompletedEvent))
        for event in events:
            if failure is not None:
                break  # the batch is dead; stop charging retry budgets
            key = event.key
            job = pending[key]
            if isinstance(event, CompletedEvent):
                state.outstanding.discard(key)
                completions.append((key, event.result))
                continue
            try:
                self._handle_fault(event, key, job, state, stats,
                                   lost_this_pass)
            except ShardFailure as exc:
                failure = exc
        # A lost-candidate that produced any other outcome (or simply
        # reappeared) this pass was a mid-transition race, not a loss.
        for key in list(state.lost_polls):
            if key not in lost_this_pass:
                del state.lost_polls[key]
        return completions, failure

    def _handle_fault(self, event, key, job, state: _BatchState, stats,
                      lost_this_pass: set) -> None:
        """Recovery for one non-completion event (may raise ShardFailure)."""
        if isinstance(event, LostEvent):
            count = state.lost_polls.get(key, 0) + 1
            if count < 2:
                state.lost_polls[key] = count
                lost_this_pass.add(key)
                return
            state.lost_polls.pop(key, None)
            self._count_fault("lost")
            self._requeue(key, job, state, stats,
                          RemoteShardError(
                              "shard vanished from the spool (corrupt "
                              "pending payload quarantined by a worker, "
                              "or collected by another runner)"),
                          resubmit=True)
        elif isinstance(event, ExpiredEvent):
            # The broker already renamed the shard back to pending/.
            self._count_fault("expired")
            self._requeue(key, job, state, stats,
                          RemoteShardError(
                              f"worker lease expired after "
                              f"{self.broker.lease_timeout:g}s without "
                              f"a heartbeat (crashed or wedged worker)"),
                          resubmit=False)
        elif isinstance(event, CorruptEvent):
            self._count_fault("corrupt")
            self._requeue(key, job, state, stats,
                          RemoteShardError(
                              f"corrupt result quarantined at "
                              f"{event.quarantined}"),
                          resubmit=True)
        elif isinstance(event, FailedEvent):
            self._count_fault("failed")
            self._requeue(key, job, state, stats,
                          RemoteShardError(
                              f"shard raised on a queue worker:\n"
                              f"{event.error}"),
                          resubmit=True)

    def _count_fault(self, name: str) -> None:
        counter = self._fault_counters.get(name)
        if counter is not None:
            counter.inc()

    def execute(self, pending, stats, trace=None):
        state = self._new_state(pending)
        for key, job in pending.items():
            self.broker.submit(key, job)
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=run_worker_loop,
                kwargs=dict(broker=self.broker, stop=stop,
                            poll_interval=min(self.poll_interval, 0.05),
                            claim_batch=self.claim_batch),
                daemon=True, name=f"queue-worker-{i}")
            for i in range(self.local_workers)]
        for thread in workers:
            thread.start()
        start = time.monotonic()
        warned = False
        collected_any = False
        try:
            while state.outstanding:
                completions, failure = self._step(pending, state, stats)
                collected_any = collected_any or bool(completions)
                # Deliver sibling completions before surfacing a fatal
                # failure: their done/ files are already consumed, so
                # they must reach the runner's memo/cache now or the
                # successful simulations would be lost with the batch.
                for key, result in completions:
                    if isinstance(result, WireResult):
                        # Unwrap the worker's timing envelope before the
                        # result reaches the memo/cache: stored results
                        # stay byte-identical to untraced runs.  Raw
                        # (pre-envelope) results pass through unchanged.
                        if trace is not None:
                            trace.executed(key, result.execute_s,
                                           result.worker)
                        result = result.result
                    yield key, result
                if failure is not None:
                    raise failure
                if not completions and state.outstanding:
                    if not warned and self._looks_stalled(start,
                                                          collected_any):
                        warned = True
                    time.sleep(self.poll_interval)
        finally:
            stop.set()
            for thread in workers:
                # Bounded join: a local worker mid-simulation must not
                # delay (or, if the shard wedges, permanently block) a
                # fatal error from reaching the user.  The threads are
                # daemons, and a straggler's late done/ write is just a
                # valid answer for a future batch.
                thread.join(timeout=1.0)
            # Leave no orphans behind: un-collected shards of a failed
            # batch would otherwise keep detached workers busy forever.
            for key in state.outstanding:
                self.broker.forget(key)


    def _looks_stalled(self, start: float, collected_any: bool) -> bool:
        """Warn (once) when nothing has touched the spool for a while.

        A queue run with no live workers would otherwise hang silently —
        the single most likely operator mistake (no worker started, or a
        worker serving a different spool/code version).  Heuristic: no
        completion yet, no in-process workers, nothing currently
        claimed, and a full lease window has elapsed.
        """
        if collected_any or self.local_workers > 0:
            return False
        elapsed = time.monotonic() - start
        if elapsed <= self.broker.lease_timeout:
            return False
        if any(self.broker.claimed_dir.glob("*.job")):
            return False  # a worker is on it, just slow
        with _WORKERLESS_WARNED_LOCK:
            if str(self.broker.spool) in _WORKERLESS_WARNED_SPOOLS:
                # Another batch over this spool already warned: stay
                # quiet but stop re-checking for this batch too.
                return True
            _WORKERLESS_WARNED_SPOOLS.add(str(self.broker.spool))
        warnings.warn(
            f"queue backend: no worker has claimed any shard from "
            f"{self.broker.spool} after {elapsed:.1f}s; start "
            f"'python -m repro worker --queue {self.broker.root}' from the "
            f"same code version (the spool directory is fingerprinted)",
            RuntimeWarning, stacklevel=2)
        return True


def resolve_backend(spec, workers: int = 1, queue_dir=None):
    """Resolve a backend request into a backend instance.

    ``None`` keeps the legacy behavior: serial for ``workers=1``, the
    process pool otherwise.  A string picks a backend by name
    (:data:`BACKEND_NAMES`); anything with an ``execute`` attribute is
    used as-is.
    """
    if spec is None:
        return SerialBackend() if workers == 1 else PoolBackend(workers)
    if isinstance(spec, str):
        if spec == "serial":
            return SerialBackend()
        if spec == "pool":
            return PoolBackend(workers)
        if spec == "queue":
            if workers > 1:
                # An explicit flag must never be a silent no-op: the
                # queue backend's executors are the detached `repro
                # worker` processes, not runner-side subprocesses (and
                # in-process threads would serialize on the GIL).
                warnings.warn(
                    f"the queue backend executes shards on detached "
                    f"'repro worker' processes; --workers {workers} is "
                    f"ignored — start {workers} workers (or use "
                    f"--concurrency) instead", RuntimeWarning,
                    stacklevel=2)
            return QueueBackend(queue_dir)
        raise ConfigError(f"unknown backend {spec!r} "
                          f"(expected one of {', '.join(BACKEND_NAMES)})")
    if hasattr(spec, "execute"):
        return spec
    raise ConfigError(f"backend must be a name or an ExecutionBackend "
                      f"instance, got {type(spec).__name__!r}")
