"""Experiment-orchestration engine.

The paper's headline artifacts (Table 1, Figures 11a/11b/12) are grids of
independent (Vcc, scheme, trace-population) evaluation points.  This
package turns each point into a declarative :class:`~repro.engine.jobs.Job`
and executes batches of them through a
:class:`~repro.engine.runner.ParallelRunner`:

* **Jobs** (:mod:`repro.engine.jobs`) are frozen, picklable descriptions of
  one evaluation — config, trace-population key and evaluation point.
  Identical jobs have identical canonical keys, which drive both the
  in-memory memo and the on-disk cache.
* **Sharding** (:func:`~repro.engine.jobs.shard_jobs`): population jobs
  split into one shard per trace before execution, so the unit of work
  and of caching is a single (trace, Vcc, scheme, config) point;
  :func:`~repro.engine.jobs.aggregate_shard_results` reduces shards back
  to the population result bit-identically to the legacy serial loop.
* **Execution** (:mod:`repro.engine.executors`) maps a job kind to the
  function that simulates it.  The same function runs in-process
  (``workers=1``, the bit-identical serial fallback) or inside a
  ``ProcessPoolExecutor`` worker.
* **Backends** (:mod:`repro.engine.backends`) make the execution tier
  pluggable: ``SerialBackend`` (inline), ``PoolBackend`` (process pool)
  and ``QueueBackend`` — a fault-tolerant distributed backend on a
  filesystem spool broker (:mod:`repro.engine.broker`) whose shards are
  executed by detached ``python -m repro worker`` processes, with
  rename-based leases, heartbeats and bounded re-dispatch of shards
  lost to crashed workers.  All three are bit-identical on the same
  batch.
* **Caching** (:mod:`repro.engine.cache`) memoizes completed results in a
  content-addressed on-disk store (``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) keyed by the job's canonical key under a fingerprint
  of the package source, so any code change invalidates stale results.
  ``$REPRO_CACHE_MAX_BYTES`` bounds the store: an index file tracks entry
  sizes and recency, and least-recently-used shards are evicted first.
* **Progress** (:mod:`repro.engine.progress`) reports batch progress
  without coupling the runner to a UI.
* **Telemetry** (:mod:`repro.obs`) threads through all of the above:
  the runner's ``stats`` counters live in a shared
  :class:`~repro.obs.metrics.MetricsRegistry` (``runner.metrics``), the
  cache/broker/queue layers register their own instruments there, and a
  ``--trace-out`` JSONL sink records one span per resolved shard with a
  plan / cache-read / queue-wait / execute / cache-write / aggregate
  timing breakdown (``repro trace report`` renders it).

Typical use::

    from repro.engine import Job, ParallelRunner, ResultCache

    runner = ParallelRunner(workers=4, cache=ResultCache.default())
    results = runner.run(jobs)          # order-preserving, deduplicated
    print(runner.stats)                 # hits / misses / simulations
"""

from repro.engine.backends import (
    BACKEND_NAMES,
    PoolBackend,
    QueueBackend,
    SerialBackend,
    resolve_backend,
)
from repro.engine.broker import SpoolBroker, WireResult, run_worker_loop
from repro.engine.cache import ResultCache
from repro.engine.cli import add_engine_arguments, build_runner, \
    runner_from_args
from repro.engine.jobs import (
    Job,
    TracePopulationSpec,
    TraceSpec,
    aggregate_shard_results,
    job_key,
    shard_jobs,
)
from repro.engine.progress import CompositeProgress, MetricsProgress, \
    NullProgress, TextProgress
from repro.engine.runner import EngineError, EngineStats, ParallelRunner

__all__ = [
    "BACKEND_NAMES",
    "CompositeProgress",
    "EngineError",
    "EngineStats",
    "Job",
    "MetricsProgress",
    "NullProgress",
    "ParallelRunner",
    "PoolBackend",
    "QueueBackend",
    "ResultCache",
    "SerialBackend",
    "SpoolBroker",
    "TextProgress",
    "WireResult",
    "TracePopulationSpec",
    "TraceSpec",
    "add_engine_arguments",
    "aggregate_shard_results",
    "build_runner",
    "job_key",
    "resolve_backend",
    "run_worker_loop",
    "runner_from_args",
    "shard_jobs",
]
