"""Shared command-line wiring for the engine knobs.

Every front end that exposes the engine (`python -m repro` — including
the declarative ``repro run spec.toml`` driver — the example scripts,
the benchmark conftest) takes the same knobs — worker count, on-disk
cache opt-out and execution backend.  Defining the argparse arguments
and the runner construction once keeps their validation and semantics
from drifting across entry points.

The cache built here honors ``$REPRO_CACHE_MAX_BYTES``
(:meth:`ResultCache.default`): per-trace sharding multiplies entry
counts, so bounded deployments evict least-recently-used shards instead
of growing without limit.

Backend selection: ``--backend`` picks ``serial``, ``pool`` or ``queue``
explicitly; without it the legacy rule applies (serial for
``--workers 1``, the process pool otherwise).  ``--backend queue``
spools shards for detached ``python -m repro worker`` processes through
the directory named by ``--queue`` or ``$REPRO_QUEUE_DIR``.
"""

from __future__ import annotations

import argparse

from repro.engine.backends import BACKEND_NAMES, resolve_backend
from repro.engine.cache import ResultCache
from repro.engine.runner import ParallelRunner
from repro.obs.trace import JsonlTraceSink, default_trace_sink

WORKERS_HELP = "worker processes for evaluation points " \
               "(1 = serial, 0 = one per CPU)"
NO_CACHE_HELP = "skip the on-disk result cache entirely"
BACKEND_HELP = "execution backend (default: serial for --workers 1, " \
               "else pool; queue = distributed via 'repro worker')"
QUEUE_HELP = "spool directory for the queue backend; implies " \
             "--backend queue (default $REPRO_QUEUE_DIR)"
TRACE_OUT_HELP = "append one JSON span per resolved shard to this " \
                 "JSONL file (see 'repro trace report'; default " \
                 "$REPRO_TRACE_DIR, off when neither is set)"


def worker_count(text: str) -> int:
    """argparse type for ``--workers``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (1 = serial, 0 = one per CPU)")
    return value


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the engine knobs to an argparse parser."""
    parser.add_argument("--workers", type=worker_count, default=1,
                        metavar="N", help=WORKERS_HELP)
    parser.add_argument("--no-cache", action="store_true",
                        help=NO_CACHE_HELP)
    parser.add_argument("--backend", choices=BACKEND_NAMES, default=None,
                        help=BACKEND_HELP)
    parser.add_argument("--queue", default=None, metavar="DIR",
                        help=QUEUE_HELP)
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help=TRACE_OUT_HELP)


def build_runner(workers: int = 1, no_cache: bool = False,
                 progress=None, backend=None,
                 queue_dir=None, trace_out=None) -> ParallelRunner:
    """The engine configuration behind the shared knobs."""
    cache = None if no_cache else ResultCache.default()
    if backend is None and queue_dir is not None:
        # A spool directory only makes sense for the queue backend;
        # silently running serial/pool while detached workers sit idle
        # would be the worst possible reading of the flags.
        backend = "queue"
    if backend is not None:
        backend = resolve_backend(backend, workers=workers,
                                  queue_dir=queue_dir)
    if trace_out is not None:
        trace_sink = JsonlTraceSink(trace_out)
    else:
        trace_sink = default_trace_sink()  # $REPRO_TRACE_DIR or None
    return ParallelRunner(workers=workers, cache=cache, progress=progress,
                          backend=backend, trace_sink=trace_sink)


def runner_from_args(args: argparse.Namespace,
                     progress=None) -> ParallelRunner:
    """Build a runner from a namespace parsed with the arguments above."""
    return build_runner(workers=args.workers, no_cache=args.no_cache,
                        progress=progress,
                        backend=getattr(args, "backend", None),
                        queue_dir=getattr(args, "queue", None),
                        trace_out=getattr(args, "trace_out", None))
