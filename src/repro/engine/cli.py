"""Shared command-line wiring for the engine knobs.

Every front end that exposes the engine (`python -m repro`, the example
scripts, the benchmark conftest) takes the same two knobs — worker count
and on-disk cache opt-out.  Defining the argparse arguments and the
runner construction once keeps their validation and semantics from
drifting across entry points.

The cache built here honors ``$REPRO_CACHE_MAX_BYTES``
(:meth:`ResultCache.default`): per-trace sharding multiplies entry
counts, so bounded deployments evict least-recently-used shards instead
of growing without limit.
"""

from __future__ import annotations

import argparse

from repro.engine.cache import ResultCache
from repro.engine.runner import ParallelRunner

WORKERS_HELP = "worker processes for evaluation points " \
               "(1 = serial, 0 = one per CPU)"
NO_CACHE_HELP = "skip the on-disk result cache entirely"


def worker_count(text: str) -> int:
    """argparse type for ``--workers``: a non-negative integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 0 (1 = serial, 0 = one per CPU)")
    return value


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``--workers`` / ``--no-cache`` to an argparse parser."""
    parser.add_argument("--workers", type=worker_count, default=1,
                        metavar="N", help=WORKERS_HELP)
    parser.add_argument("--no-cache", action="store_true",
                        help=NO_CACHE_HELP)


def build_runner(workers: int = 1, no_cache: bool = False,
                 progress=None) -> ParallelRunner:
    """The engine configuration behind the shared knobs."""
    cache = None if no_cache else ResultCache.default()
    return ParallelRunner(workers=workers, cache=cache, progress=progress)


def runner_from_args(args: argparse.Namespace,
                     progress=None) -> ParallelRunner:
    """Build a runner from a namespace parsed with the arguments above."""
    return build_runner(workers=args.workers, no_cache=args.no_cache,
                        progress=progress)
