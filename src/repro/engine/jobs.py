"""Declarative experiment jobs, per-trace shards and canonical cache keys.

A :class:`Job` is a frozen, picklable value describing **one** evaluation:
which kind of experiment to run (``sweep-point``, ``faulty-bits``,
``extra-bypass``, ``dvfs-schedule``), at which evaluation point
(Vcc/scheme), on which trace population, with which knobs.  Two jobs that
would simulate the same thing compare equal and share one canonical key,
so the runner deduplicates them and the on-disk cache can serve either.

Keys are built by :func:`job_key`: every field — including nested
dataclasses such as :class:`~repro.pipeline.resources.PipelineParams` or
:class:`~repro.memory.hierarchy.MemoryConfig` — is folded into a stable
JSON token tree and hashed.  Floats are keyed by ``repr`` (exact bits),
enums by their value, dataclasses field-by-field, so the key is stable
across processes and Python runs.

Sharding
--------
Population jobs (the kinds in :data:`SHARDABLE_KINDS`) are never executed
whole: :func:`shard_jobs` splits them into one shard per trace — the same
job with ``population`` replaced by that trace's :class:`TraceSpec` — and
:func:`aggregate_shard_results` reduces the shard results back into the
population-level result.  The unit of execution *and* caching is therefore
a single (trace, Vcc, scheme, config) point: shard keys derive from the
trace spec, so adding a trace to a population re-simulates only the new
trace, and a few-point/many-trace grid keeps every worker busy.

Aggregation contract: shards are listed in population order
(:meth:`TracePopulationSpec.trace_specs`), each shard result carries a
one-trace ``results`` tuple, and the reduction concatenates those tuples
in shard order — bit-identical to the legacy loop that ran the whole
population inside one job, regardless of shard *completion* order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError
from repro.workloads.profiles import PROFILES_BY_NAME, TraceProfile
from repro.workloads.riscv import RiscvProgram

#: Job kinds with a registered executor (see :mod:`repro.engine.executors`).
KNOWN_KINDS = (
    "sweep-point",
    "faulty-bits",
    "extra-bypass",
    "dvfs-schedule",
    "mc-die",
    "mc-block",
    "engine-selftest-crash",
    "engine-selftest-sleep",
)

#: Population kinds that split into per-trace shards (see :func:`shard_jobs`).
SHARDABLE_KINDS = (
    "sweep-point",
    "faulty-bits",
    "extra-bypass",
)


@dataclass(frozen=True)
class TracePopulationSpec:
    """Deterministic recipe for a trace population.

    Workers regenerate the population from this spec instead of shipping
    trace objects across process boundaries: synthetic generation is
    seeded and riscv programs embed their image bytes, so the rebuilt
    traces are identical to the parent's.
    """

    profiles: tuple[TraceProfile, ...] = ()
    seeds_per_profile: int = 1
    trace_length: int = 12_000
    riscv: tuple[RiscvProgram, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "profiles", tuple(self.profiles))
        object.__setattr__(self, "riscv", tuple(self.riscv))
        if not self.profiles and not self.riscv:
            raise ConfigError(
                "population needs at least one profile or riscv program")
        if self.seeds_per_profile < 1 or self.trace_length < 1:
            raise ConfigError("population sizing must be positive")

    def build(self):
        """Generate the trace population (deterministic)."""
        from repro.workloads.riscv import run_riscv_program
        from repro.workloads.synthetic import generate_population

        traces = []
        if self.profiles:
            traces.extend(generate_population(
                self.profiles, self.seeds_per_profile, self.trace_length))
        for program in self.riscv:
            traces.append(run_riscv_program(program)[0])
        return traces

    def trace_specs(self) -> "tuple[TraceSpec, ...]":
        """Per-trace recipes, in population order.

        Synthetic traces come first (profiles x seeds), then the riscv
        programs in declaration order.  ``[spec.build() for spec in
        population.trace_specs()]`` produces exactly the traces of
        :meth:`build`, in the same order — each synthetic generator is
        seeded independently and each riscv program is self-contained,
        so a single trace can be rebuilt without generating the rest of
        the population.  This ordering is the aggregation contract of
        :func:`shard_jobs`.
        """
        synthetic = tuple(
            TraceSpec(source="synthetic", profile=profile, seed=seed,
                      length=self.trace_length)
            for profile in self.profiles
            for seed in range(self.seeds_per_profile))
        programs = tuple(TraceSpec(source="riscv", program=program)
                         for program in self.riscv)
        return synthetic + programs


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for one trace: a synthetic walk, a kernel, or a riscv binary."""

    source: str = "synthetic"           # "synthetic" | "kernel" | "riscv"
    profile: TraceProfile | None = None
    seed: int = 0
    length: int = 6_000
    kernel: str | None = None
    size: int = 32
    program: RiscvProgram | None = None

    def __post_init__(self) -> None:
        if self.source == "synthetic":
            if self.profile is None:
                raise ConfigError("synthetic trace spec needs a profile")
        elif self.source == "kernel":
            if not self.kernel:
                raise ConfigError("kernel trace spec needs a kernel name")
        elif self.source == "riscv":
            if self.program is None:
                raise ConfigError("riscv trace spec needs a program")
        else:
            raise ConfigError(f"unknown trace source {self.source!r}")

    @classmethod
    def synthetic(cls, profile: TraceProfile | str, seed: int = 0,
                  length: int = 6_000) -> "TraceSpec":
        if isinstance(profile, str):
            profile = PROFILES_BY_NAME[profile]
        return cls(source="synthetic", profile=profile, seed=seed,
                   length=length)

    @classmethod
    def for_kernel(cls, kernel: str, size: int = 32) -> "TraceSpec":
        return cls(source="kernel", kernel=kernel, size=size)

    @classmethod
    def for_riscv(cls, program: RiscvProgram) -> "TraceSpec":
        return cls(source="riscv", program=program)

    def build(self):
        """Generate the trace (deterministic)."""
        if self.source == "kernel":
            from repro.workloads.kernels import kernel_trace

            trace, _ = kernel_trace(self.kernel, self.size)
            return trace
        if self.source == "riscv":
            from repro.workloads.riscv import run_riscv_program

            return run_riscv_program(self.program)[0]
        from repro.workloads.synthetic import SyntheticTraceGenerator

        generator = SyntheticTraceGenerator(self.profile, seed=self.seed)
        return generator.generate(self.length)

    @property
    def label(self) -> str:
        """Short human-readable identity (matches the built trace's name)."""
        if self.source == "kernel":
            return f"{self.kernel}/n{self.size}"
        if self.source == "riscv":
            return self.program.name
        return f"{self.profile.name}/seed{self.seed}"


@dataclass(frozen=True)
class Job:
    """One declarative evaluation point.

    Attributes
    ----------
    kind:
        Which executor runs this job (see :data:`KNOWN_KINDS`).
    vcc_mv / scheme:
        The evaluation point.  ``scheme`` is the
        :class:`~repro.circuits.frequency.ClockScheme` *value* string so
        the job stays a plain-data value.
    population:
        Trace population recipe for population-style jobs.
    trace:
        Single-trace recipe for schedule-style jobs.
    iraw_overrides:
        Sorted ``(name, value)`` pairs forwarded to
        :meth:`IrawConfig.for_operating_point` (ablation switches).
    options:
        Sorted ``(name, value)`` pairs of kind-specific knobs (``warm``,
        ``dram_latency_ns``, ``params``, ``memory``, baseline flags,
        DVFS schedules...).  Values may be nested frozen dataclasses.
    """

    kind: str
    vcc_mv: float = 0.0
    scheme: str = "baseline"
    population: TracePopulationSpec | None = None
    trace: TraceSpec | None = None
    iraw_overrides: tuple = ()
    options: tuple = ()

    def __post_init__(self) -> None:
        if self.kind not in KNOWN_KINDS:
            raise ConfigError(f"unknown job kind {self.kind!r}")
        object.__setattr__(self, "iraw_overrides",
                           _sorted_pairs(self.iraw_overrides))
        object.__setattr__(self, "options", _sorted_pairs(self.options))

    # -- convenience accessors -----------------------------------------

    def option(self, name: str, default=None):
        for key, value in self.options:
            if key == name:
                return value
        return default

    def overrides_dict(self) -> dict:
        return dict(self.iraw_overrides)

    @property
    def label(self) -> str:
        """Short human-readable identity for progress/error messages."""
        bits = [self.kind]
        if self.vcc_mv:
            bits.append(f"{self.scheme}@{self.vcc_mv:g}mV")
        if self.trace is not None:
            bits.append(f"trace={self.trace.label}")
        if self.kind == "mc-die":
            bits.append(f"die={self.option('die')}")
        if self.kind == "mc-block":
            start = self.option("die_start")
            dies = self.option("dies")
            if start is not None and dies is not None:
                bits.append(f"dies={start}..{start + dies - 1}")
        if self.iraw_overrides:
            bits.append(",".join(f"{k}={v}" for k, v in self.iraw_overrides))
        return " ".join(bits)


def _sorted_pairs(pairs) -> tuple:
    """Normalize a dict or pair-iterable into sorted ``(str, value)`` pairs."""
    items = [(str(k), v) for k, v in dict(pairs).items()]
    return tuple(sorted(items, key=lambda kv: kv[0]))


# ----------------------------------------------------------------------
# Per-trace sharding
# ----------------------------------------------------------------------

def shard_jobs(job: Job) -> tuple[Job, ...] | None:
    """Split a population job into per-trace shards (``None`` if atomic).

    Each shard is the parent job with ``population`` replaced by one
    trace's :class:`TraceSpec`, so its canonical key derives from the
    trace recipe and stays stable no matter which population the trace
    appears in.  Jobs that already target a single trace (DVFS schedules,
    shards themselves) and kinds outside :data:`SHARDABLE_KINDS` are
    atomic units of execution.
    """
    if job.kind not in SHARDABLE_KINDS:
        return None
    if job.population is None or job.trace is not None:
        return None
    return tuple(
        dataclasses.replace(job, population=None, trace=spec)
        for spec in job.population.trace_specs())


def aggregate_shard_results(job: Job, shard_results):
    """Reduce per-trace shard results to the population-level result.

    Every shard of a population job returns the population result type
    with a one-trace ``results`` tuple; the reduction concatenates those
    tuples in shard (= population) order and keeps the last shard's
    ``extras`` — exactly what the legacy whole-population loop produced,
    where the per-core extras variable was overwritten on every trace.
    The operating ``point`` is recomputed identically by every shard, so
    the first shard's copy is authoritative.
    """
    shard_results = list(shard_results)
    if not shard_results:
        raise ConfigError(f"job '{job.label}' produced no shard results")
    merged = tuple(result for shard in shard_results
                   for result in shard.results)
    return dataclasses.replace(shard_results[0], results=merged,
                               extras=shard_results[-1].extras)


# ----------------------------------------------------------------------
# Canonical keys
# ----------------------------------------------------------------------

def stable_token(value):
    """Fold ``value`` into a JSON-serializable token with stable identity.

    Dataclasses are expanded field-by-field (tagged with their qualified
    name so two different types never collide), enums by value, floats by
    exact ``repr``, bytes by sha256 digest (so a riscv-backed trace spec
    is keyed by its program contents without inflating the token tree).
    Unsupported types raise ``TypeError`` — jobs must be plain data.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        token = {"__type__": f"{type(value).__module__}."
                             f"{type(value).__qualname__}"}
        for field in dataclasses.fields(value):
            token[field.name] = stable_token(getattr(value, field.name))
        return token
    if isinstance(value, Enum):
        return {"__enum__": f"{type(value).__qualname__}.{value.name}",
                "value": stable_token(value.value)}
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes_sha256__": hashlib.sha256(bytes(value)).hexdigest()}
    if isinstance(value, (list, tuple)):
        return [stable_token(item) for item in value]
    if isinstance(value, dict):
        return {"__dict__": sorted(
            (str(k), stable_token(v)) for k, v in value.items())}
    if isinstance(value, (set, frozenset)):
        return {"__set__": sorted(json.dumps(stable_token(v), sort_keys=True)
                                  for v in value)}
    raise TypeError(
        f"cannot build a stable job key from {type(value).__name__!r}; "
        f"jobs must be plain data (dataclasses, enums, scalars, tuples)")


def job_key(job: Job) -> str:
    """Canonical content hash of a job (hex, stable across processes)."""
    payload = json.dumps(stable_token(job), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
