"""Batch progress reporting, decoupled from the runner.

The runner only calls the three-method listener protocol below, so any
front end (CLI spinner, pytest plugin, log file) can observe a batch
without the engine knowing about it.  Implementations provided here:
:class:`NullProgress` (silent, the default), :class:`TextProgress`
(one updating line on a stream, suitable for interactive terminals),
:class:`CompositeProgress` (fan-out to several listeners), and
:class:`MetricsProgress` (mirrors batch state into a
:class:`~repro.obs.metrics.MetricsRegistry` so a metrics scrape can see
how far the current batch is).
"""

from __future__ import annotations

import sys


class NullProgress:
    """Silent listener (the runner's default)."""

    def start(self, total: int, label: str = "") -> None:
        pass

    def advance(self, done: int, total: int, label: str = "") -> None:
        pass

    def finish(self, total: int, label: str = "") -> None:
        pass


class TextProgress:
    """One updating status line per batch on ``stream`` (default stderr)."""

    def __init__(self, stream=None, min_total: int = 2):
        self.stream = stream if stream is not None else sys.stderr
        #: Batches smaller than this stay silent (no flicker for 1 job).
        self.min_total = min_total
        self._active = False

    def _emit(self, text: str, end: str = "") -> None:
        try:
            self.stream.write(f"\r{text}\x1b[K{end}")
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go silent
            self._active = False

    def start(self, total: int, label: str = "") -> None:
        self._active = total >= self.min_total
        if self._active:
            self._emit(f"engine: 0/{total} {label}".rstrip())

    def advance(self, done: int, total: int, label: str = "") -> None:
        if self._active:
            self._emit(f"engine: {done}/{total} {label}".rstrip())

    def finish(self, total: int, label: str = "") -> None:
        if self._active:
            self._emit("", end="")
            self._active = False


class CompositeProgress:
    """Fan one batch's progress out to several listeners, in order."""

    def __init__(self, *listeners):
        self.listeners = list(listeners)

    def start(self, total: int, label: str = "") -> None:
        for listener in self.listeners:
            listener.start(total, label)

    def advance(self, done: int, total: int, label: str = "") -> None:
        for listener in self.listeners:
            listener.advance(done, total, label)

    def finish(self, total: int, label: str = "") -> None:
        for listener in self.listeners:
            listener.finish(total, label)


class MetricsProgress:
    """Mirror batch progress into metrics registry gauges.

    A metrics scrape (``GET /v1/metrics``) then shows how far the
    engine's current batch is — ``engine_batch_total`` /
    ``engine_batch_done`` snap to zero when no batch is executing, and
    ``engine_batches`` counts batches started since process start.
    """

    def __init__(self, registry):
        self._total = registry.gauge(
            "engine_batch_total", "Units in the executing batch (0: idle)")
        self._done = registry.gauge(
            "engine_batch_done", "Units completed in the executing batch")
        self._batches = registry.counter(
            "engine_batches", "Engine batches started")

    def start(self, total: int, label: str = "") -> None:
        self._batches.inc()
        self._total.set(total)
        self._done.set(0)

    def advance(self, done: int, total: int, label: str = "") -> None:
        self._done.set(done)

    def finish(self, total: int, label: str = "") -> None:
        self._total.set(0)
        self._done.set(0)
