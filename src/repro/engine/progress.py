"""Batch progress reporting, decoupled from the runner.

The runner only calls the three-method listener protocol below, so any
front end (CLI spinner, pytest plugin, log file) can observe a batch
without the engine knowing about it.  Two implementations are provided:
:class:`NullProgress` (silent, the default) and :class:`TextProgress`
(one updating line on a stream, suitable for interactive terminals).
"""

from __future__ import annotations

import sys


class NullProgress:
    """Silent listener (the runner's default)."""

    def start(self, total: int, label: str = "") -> None:
        pass

    def advance(self, done: int, total: int, label: str = "") -> None:
        pass

    def finish(self, total: int, label: str = "") -> None:
        pass


class TextProgress:
    """One updating status line per batch on ``stream`` (default stderr)."""

    def __init__(self, stream=None, min_total: int = 2):
        self.stream = stream if stream is not None else sys.stderr
        #: Batches smaller than this stay silent (no flicker for 1 job).
        self.min_total = min_total
        self._active = False

    def _emit(self, text: str, end: str = "") -> None:
        try:
            self.stream.write(f"\r{text}\x1b[K{end}")
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go silent
            self._active = False

    def start(self, total: int, label: str = "") -> None:
        self._active = total >= self.min_total
        if self._active:
            self._emit(f"engine: 0/{total} {label}".rstrip())

    def advance(self, done: int, total: int, label: str = "") -> None:
        if self._active:
            self._emit(f"engine: {done}/{total} {label}".rstrip())

    def finish(self, total: int, label: str = "") -> None:
        if self._active:
            self._emit("", end="")
            self._active = False
