"""Job execution: the functions that actually simulate an evaluation point.

Each :class:`~repro.engine.jobs.Job` kind maps to one module-level
function so jobs execute identically in-process (the serial fallback) and
inside ``ProcessPoolExecutor`` workers (module-level functions pickle by
qualified name).  Population kinds arrive here as per-trace *shards*
(``job.trace`` set) — the runner splits populations before submission —
but the legacy whole-population path is kept for direct
:func:`execute_job` calls.  Traces and populations are regenerated from
their deterministic specs and memoized per process, so parallel workers
never ship trace objects across the pipe and serial runs share one
population exactly like the legacy harness did.

This module deliberately imports only the simulator layers (circuits,
pipeline, workloads, baselines) at module scope — :mod:`repro.analysis`
sits *above* the engine and is imported lazily inside function bodies,
which keeps ``import repro.engine`` acyclic.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.baselines.extra_bypass import ExtraBypassBaseline
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.circuits import constants
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.pipeline.resources import PipelineParams
from repro.workloads.trace import Trace
from repro.engine.jobs import Job, TracePopulationSpec, TraceSpec

if TYPE_CHECKING:  # layering: analysis imports resolve lazily at runtime
    from repro.analysis.metrics import PointResult

#: Per-process memo of generated populations; fork workers inherit the
#: parent's entries, spawn workers rebuild them deterministically.
#: Bounded LRU: long-lived processes exploring many distinct settings
#: must not accumulate every population they ever touched.
_POPULATIONS: "OrderedDict[TracePopulationSpec, list[Trace]]" = OrderedDict()
_POPULATIONS_MAX = 4

#: Per-process memo of single traces (the shard execution path): a worker
#: receiving several shards of the same trace at different (Vcc, scheme)
#: points regenerates it once.  Bounded LRU like the population memo.
_TRACES: "OrderedDict[TraceSpec, Trace]" = OrderedDict()
_TRACES_MAX = 16

#: The queue backend's in-process workers run ``execute_job`` on
#: threads, so the memo bookkeeping must be serialized.  Builds happen
#: outside the lock: two threads racing on the same spec just build the
#: same deterministic trace twice, which beats serializing generation.
_MEMO_LOCK = threading.Lock()

#: Per-process memo of sampled Monte-Carlo die blocks (effective-sigma
#: + IS log-weight arrays), keyed by the hashable ``DieBlock`` recipe.
#: A campaign
#: evaluates every block at every (Vcc, scheme) grid point; memoizing
#: the sampled block makes the (scalar, sha256-seeded) sampling run
#: once per block instead of once per job.  The bound holds every block
#: of a 1M-die campaign at the default block size.
_BLOCK_SAMPLES: OrderedDict = OrderedDict()
_BLOCK_SAMPLES_MAX = 256


def _memoized_build(store: OrderedDict, limit: int, spec):
    """Bounded-LRU memo over deterministic ``spec.build()`` results."""
    with _MEMO_LOCK:
        value = store.get(spec)
        if value is not None:
            store.move_to_end(spec)
            return value
    value = spec.build()
    with _MEMO_LOCK:
        store[spec] = value
        while len(store) > limit:
            store.popitem(last=False)
    return value


def population_for(spec: TracePopulationSpec) -> list[Trace]:
    """The (per-process memoized) trace population of ``spec``."""
    return _memoized_build(_POPULATIONS, _POPULATIONS_MAX, spec)


def trace_for(spec: TraceSpec) -> Trace:
    """The (per-process memoized) single trace of ``spec``."""
    return _memoized_build(_TRACES, _TRACES_MAX, spec)


def warm_caches(memory: MemorySystem, trace: Trace) -> None:
    """Replay a trace's addresses through the hierarchy, then reset stats.

    The paper's 10 M-instruction traces amortize cold misses; our traces
    are shorter, so each trace's code and data addresses are replayed
    before the timed run (cache/TLB contents survive, statistics and
    transient buffers reset).
    """
    il0, dl0, ul1 = memory.il0, memory.dl0, memory.ul1
    itlb, dtlb = memory.itlb, memory.dtlb
    last_line = -1
    for op in trace.ops:
        line = op.pc >> 6
        if line != last_line:
            last_line = line
            if not itlb.access(op.pc):
                itlb.fill(op.pc)
            if not il0.access(op.pc).hit:
                il0.fill(op.pc)
                if not ul1.access(op.pc).hit:
                    ul1.fill(op.pc)
        address = op.mem_addr
        if address is not None:
            if not dtlb.access(address):
                dtlb.fill(address)
            if not dl0.access(address, is_write=op.is_store).hit:
                dl0.fill(address, dirty=op.is_store)
                if not ul1.access(address).hit:
                    ul1.fill(address)
    memory.reset_after_warmup()


# ----------------------------------------------------------------------
# Shared pieces
# ----------------------------------------------------------------------

def _solver_for(job: Job) -> FrequencySolver:
    """Rebuild the frequency solver a job was keyed against."""
    kwargs = {}
    delay_model = job.option("delay_model")
    if delay_model is not None:
        kwargs["delay_model"] = delay_model
    nominal = job.option("nominal_frequency_mhz")
    if nominal is not None:
        kwargs["nominal_frequency_mhz"] = nominal
    return FrequencySolver(**kwargs)


def _run_population(job: Job, point, setup: CoreSetup, scheme_name: str,
                    memory_mutator=None):
    """Run the job's trace(s) under ``setup`` at ``point``.

    A shard job (``trace`` set, ``population`` empty) runs exactly one
    trace and returns a one-trace result; the runner concatenates shard
    results back into the population result (see
    :func:`repro.engine.jobs.aggregate_shard_results`).  A legacy
    whole-population job loops over every trace inline.  Each trace gets
    a fresh core either way, so the two paths are bit-identical.
    """
    from repro.analysis.metrics import PointResult

    if job.trace is not None:
        traces = [trace_for(job.trace)]
    elif job.population is not None:
        traces = population_for(job.population)
    else:
        raise ConfigError(f"{job.kind} job needs a trace population "
                          f"or a trace spec")
    dram_latency_ns = job.option("dram_latency_ns",
                                 constants.DRAM_LATENCY_NS)
    base_memory = job.option("memory") or MemoryConfig()
    warm = job.option("warm", True)
    memory = replace(base_memory,
                     dram_latency_cycles=point.memory_latency_cycles(
                         dram_latency_ns))
    results = []
    extras: dict[str, float] = {}
    for trace in traces:
        core = InOrderCore(replace(setup, memory=memory))
        if memory_mutator is not None:
            extras = dict(memory_mutator(core.memory) or {})
        if warm:
            warm_caches(core.memory, trace)
        results.append(core.run(trace))
    return PointResult(vcc_mv=job.vcc_mv, scheme=scheme_name, point=point,
                       results=tuple(results),
                       extras=tuple(sorted(extras.items())))


# ----------------------------------------------------------------------
# Executors by kind
# ----------------------------------------------------------------------

def _run_sweep_point(job: Job) -> PointResult:
    """The classic (Vcc, scheme) evaluation point of ``VccSweep``."""
    solver = _solver_for(job)
    scheme = ClockScheme(job.scheme)
    point = solver.operating_point(job.vcc_mv, scheme)
    if scheme is ClockScheme.IRAW:
        iraw = IrawConfig.for_operating_point(point, **job.overrides_dict())
    else:
        iraw = IrawConfig.disabled()
    params = job.option("params") or PipelineParams()
    setup = CoreSetup(iraw=iraw, params=params,
                      name=f"{scheme.value}@{job.vcc_mv:g}mV",
                      check_values=False)
    return _run_population(job, point, setup, scheme.value)


def _run_faulty_bits(job: Job) -> PointResult:
    """Table 1's Faulty Bits alternative: honest clock, degraded caches."""
    baseline = FaultyBitsBaseline(_solver_for(job))
    point = baseline.operating_point(job.vcc_mv)
    setup = baseline.core_setup(job.vcc_mv)
    return _run_population(job, point, setup, "faulty-bits",
                           memory_mutator=baseline.apply_to_memory)


def _run_extra_bypass(job: Job) -> PointResult:
    """Table 1's Extra Bypass alternative (optionally RF-only)."""
    baseline = ExtraBypassBaseline(_solver_for(job))
    hypothetical = bool(job.option("hypothetical_rf_only", False))
    point = baseline.operating_point(job.vcc_mv,
                                     hypothetical_rf_only=hypothetical)
    setup = baseline.core_setup(job.vcc_mv,
                                hypothetical_rf_only=hypothetical)
    return _run_population(job, point, setup, "extra-bypass")


def _run_dvfs_schedule(job: Job):
    """One DVFS scenario: a trace through a Vcc schedule."""
    # Lazy import: analysis.dvfs sits above the engine in the layering.
    from repro.analysis.dvfs import DEFAULT_TRANSITION_NS, DvfsScenario

    if job.trace is None:
        raise ConfigError("dvfs-schedule job needs a trace spec")
    phases = job.option("phases")
    if not phases:
        raise ConfigError("dvfs-schedule job needs a phase schedule")
    scenario = DvfsScenario(
        scheme=ClockScheme(job.scheme),
        solver=_solver_for(job),
        params=job.option("params"),
        memory=job.option("memory"),
        dram_latency_ns=job.option("dram_latency_ns",
                                   constants.DRAM_LATENCY_NS),
        transition_ns=job.option("transition_ns", DEFAULT_TRANSITION_NS),
        warm=bool(job.option("warm", True)),
    )
    return scenario.run(job.trace.build(), list(phases))


def _run_mc_die(job: Job):
    """One Monte-Carlo die sample at one (Vcc, scheme) point.

    The die index and the campaign's physics config ride in the job
    options (and therefore in the canonical key), so every sampled die
    is an independently cacheable unit across all backends.
    """
    # Lazy import: repro.montecarlo sits beside the engine in layering.
    from repro.montecarlo.sampling import evaluate_die_point

    config = job.option("mc")
    die = job.option("die")
    if config is None or die is None:
        raise ConfigError("mc-die job needs 'mc' config and 'die' options")
    return evaluate_die_point(config, int(die), job.vcc_mv,
                              ClockScheme(job.scheme),
                              solver=_solver_for(job))


def _run_mc_block(job: Job):
    """A contiguous Monte-Carlo die block at one (Vcc, scheme) point.

    The block's die range (``die_start``/``dies``) and the campaign's
    physics config ride in the job options — and therefore in the
    canonical key — so a block is an independently cacheable, dedupable
    unit exactly like a single die.  The sampled block itself (die
    draws are Vcc-independent) is memoized per process and shared
    across the whole grid.
    """
    # Lazy import: repro.montecarlo sits beside the engine in layering.
    from repro.montecarlo.sampling import DieBlock, evaluate_block

    config = job.option("mc")
    die_start = job.option("die_start")
    dies = job.option("dies")
    if config is None or die_start is None or dies is None:
        raise ConfigError("mc-block job needs 'mc' config and "
                          "'die_start'/'dies' options")
    block = DieBlock(config, int(die_start), int(dies))
    sample = _memoized_build(_BLOCK_SAMPLES, _BLOCK_SAMPLES_MAX, block)
    return evaluate_block(config, block.die_start, block.dies,
                          job.vcc_mv, ClockScheme(job.scheme),
                          solver=_solver_for(job), sample=sample)


def _crash(job: Job):
    """Test-only executor: deterministic failure for error-path tests."""
    raise RuntimeError(f"injected engine crash ({job.option('note', '')})")


def _sleep(job: Job):
    """Test-only executor: controllable stall for queue fault drills.

    The duration comes from ``$REPRO_SELFTEST_SLEEP_S`` when set (so a
    test can make a detached worker hang without the duration leaking
    into the job key), else the ``sleep_s`` option.  The result echoes
    only the deterministic ``note`` so it stays cache-stable.
    """
    env = os.environ.get("REPRO_SELFTEST_SLEEP_S")
    duration = float(env) if env else float(job.option("sleep_s", 0.0))
    if duration > 0:
        time.sleep(duration)
    return {"note": job.option("note", "")}


def worker_tag() -> str:
    """A short identity for trace spans executed in this process."""
    return f"pid:{os.getpid()}"


_EXECUTORS = {
    "sweep-point": _run_sweep_point,
    "faulty-bits": _run_faulty_bits,
    "extra-bypass": _run_extra_bypass,
    "dvfs-schedule": _run_dvfs_schedule,
    "mc-die": _run_mc_die,
    "mc-block": _run_mc_block,
    "engine-selftest-crash": _crash,
    "engine-selftest-sleep": _sleep,
}


def execute_job(job: Job):
    """Run one job to completion (in this process) and return its result."""
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        raise ConfigError(f"no executor for job kind {job.kind!r}") from None
    return executor(job)


def execute_chunk(jobs):
    """Run a list of jobs in-process, isolating per-job failures.

    The pool backend's batch surface submits whole chunks per worker
    round-trip; a chunk must not lose its completed results to one bad
    member, so each outcome is tagged: ``("ok", result)`` or
    ``("err", exception)``, in submission order.
    """
    outcomes = []
    for job in jobs:
        try:
            outcomes.append(("ok", execute_job(job)))
        except Exception as exc:
            outcomes.append(("err", exc))
    return outcomes


# ----------------------------------------------------------------------
# Timed variants (the tracing envelope)
# ----------------------------------------------------------------------

def execute_job_timed(job):
    """``execute_job`` plus its timing envelope.

    Returns ``(result, meta)`` where ``meta`` carries the measured
    execute seconds and this process's worker tag.  The pool backend
    submits this wrapper when a trace sink is active, so remote
    execution time is attributed from the worker's own monotonic clock
    (durations only — no cross-process timestamp agreement needed).
    """
    started = time.perf_counter()
    result = execute_job(job)
    return result, {"execute_s": time.perf_counter() - started,
                    "worker": worker_tag()}


def execute_chunk_timed(jobs):
    """``execute_chunk`` where each ok outcome is ``(result, meta)``."""
    outcomes = []
    for job in jobs:
        try:
            outcomes.append(("ok", execute_job_timed(job)))
        except Exception as exc:
            outcomes.append(("err", exc))
    return outcomes
