"""Filesystem spool broker: the wire protocol of the queue backend.

The broker turns a shared directory (``$REPRO_QUEUE_DIR`` or the
``--queue`` flag) into a crash-tolerant work queue for per-trace shards.
No server process is involved: every operation is a plain, atomic
filesystem action, so any number of runners and detached workers — on
one machine or on several sharing a network filesystem — can cooperate
through it.

Spool layout
------------
Inside the queue root the broker works under a **version directory**
named after the cache schema version plus the fingerprint of the whole
``repro`` package source (the same fingerprint the result cache uses).
A worker built from different code therefore never claims shards it
would simulate differently — it simply sees an empty spool.  The version
directory contains::

    pending/<key>.job     pickled shard waiting to be claimed
    claimed/<key>.job     shard leased by a worker (renamed from pending/)
    claimed/<key>.hb      the lease's heartbeat file (mtime = last beat)
    done/<key>.pkl        pickled result, written atomically
    failed/<key>.err      worker-side exception (text: repr + traceback)
    quarantine/           corrupt payloads, moved aside for post-mortem

``<key>`` is the shard's canonical job key
(:func:`repro.engine.jobs.job_key`), so the spool inherits the engine's
content-addressed identity: submitting the same shard twice is a no-op,
and a ``done/`` file left over from an interrupted batch is still a
valid answer for the next batch that needs that key.

Lease protocol
--------------
A worker claims a shard by **renaming** ``pending/<key>.job`` to
``claimed/<key>.job`` — atomic on POSIX, so exactly one worker wins —
and immediately writes the heartbeat file (its content is the worker's
identity, the lease's ownership token), which it keeps touching while
it executes.  The runner's collector watches each claim's heartbeat
mtime and treats the lease as dead once the mtime has not *changed* for
``lease_timeout`` seconds of the collector's own monotonic clock
(SIGKILLed or wedged worker); staleness is never judged by comparing a
remote mtime against local wall-clock time, so clock skew between
machines sharing the spool cannot expire a healthy lease.  A dead
shard is renamed back to ``pending/`` for another worker, bounded by
the backend's retry budget.  A straggler that was presumed dead but
finishes anyway just rewrites ``done/<key>.pkl`` — results are
deterministic per key (only the optional :class:`WireResult` timing
envelope can differ between attempts), so late double-writes are
harmless and each key is still collected exactly once — and the
ownership token
keeps it from publishing failures for, or deleting, a lease that has
since been re-claimed by another worker.

Everything here is runner/worker-symmetric: the
:class:`~repro.engine.backends.QueueBackend` drives the submit/poll
side, ``python -m repro worker`` drives :func:`run_worker_loop`.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import socket
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field

from repro.engine.cache import is_version_dir_name, version_tag
from repro.errors import ConfigError

#: Environment variable naming the spool root for runners and workers.
QUEUE_DIR_ENV = "REPRO_QUEUE_DIR"

#: Environment variable overriding the default lease timeout (seconds).
LEASE_ENV = "REPRO_QUEUE_LEASE_S"

#: A worker lease with no heartbeat for this long is considered dead.
DEFAULT_LEASE_TIMEOUT_S = 60.0


def default_queue_root() -> str | None:
    """The ``$REPRO_QUEUE_DIR`` spool root, or ``None`` when unset."""
    return os.environ.get(QUEUE_DIR_ENV) or None


def default_lease_timeout() -> float:
    """The ``$REPRO_QUEUE_LEASE_S`` override, else the default."""
    env = os.environ.get(LEASE_ENV)
    if not env:
        return DEFAULT_LEASE_TIMEOUT_S
    try:
        value = float(env)
    except ValueError:
        raise ConfigError(f"{LEASE_ENV} must be a number of seconds, "
                          f"got {env!r}")
    if value <= 0:
        raise ConfigError(f"{LEASE_ENV} must be positive, got {env!r}")
    return value


def validated_queue_root(root) -> pathlib.Path:
    """Resolve and validate a spool root, failing with a clean message.

    A root that exists but is a plain file, cannot be created (parent is
    a file, permission denied), or is not writable raises
    :class:`~repro.errors.ConfigError` instead of letting a raw
    ``OSError`` traceback escape to the operator.
    """
    if not root:
        raise ConfigError(
            "the queue backend needs a spool directory: pass --queue DIR "
            f"or set ${QUEUE_DIR_ENV}")
    path = pathlib.Path(root).expanduser()
    if path.exists() and not path.is_dir():
        raise ConfigError(
            f"queue directory {path} exists but is not a directory "
            f"(check ${QUEUE_DIR_ENV})")
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise ConfigError(f"cannot create queue directory {path}: {exc}")
    probe = path / f".probe-{os.getpid()}-{threading.get_ident()}"
    try:
        probe.touch()
        probe.unlink()
    except OSError as exc:
        raise ConfigError(f"queue directory {path} is not writable: {exc}")
    return path


# ----------------------------------------------------------------------
# Poll events (runner side)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WireResult:
    """A shard result plus its execution envelope, as spooled.

    When tracing is active workers publish this wrapper instead of the
    bare result: the worker's identity and its own monotonic measure of
    execute time ride along, so the runner can attribute remote
    execution without any cross-machine clock agreement (durations
    only, never timestamps).  The queue backend unwraps it before the
    result reaches the engine memo, so cached/golden results stay
    byte-identical to untraced runs.  The spool is version-fingerprinted
    (workers built from different code see an empty spool), so adding
    this wrapper is not a wire-compatibility hazard.
    """

    result: object
    worker: str = ""
    execute_s: float = 0.0


@dataclass(frozen=True)
class CompletedEvent:
    """A shard's result landed in ``done/`` and was collected."""

    key: str
    result: object


@dataclass(frozen=True)
class FailedEvent:
    """A worker executed the shard and it raised; ``error`` is the
    worker-side repr + traceback text."""

    key: str
    error: str


@dataclass(frozen=True)
class ExpiredEvent:
    """A claim's heartbeat went stale; the shard is back in ``pending/``."""

    key: str


@dataclass(frozen=True)
class CorruptEvent:
    """A ``done/`` payload failed to unpickle and was quarantined."""

    key: str
    quarantined: pathlib.Path


@dataclass(frozen=True)
class LostEvent:
    """No spool file exists for an outstanding shard.

    Happens when a corrupt ``pending/`` payload was quarantined by a
    claiming worker, or when another runner sharing the spool collected
    (and cleaned up) a key this runner still needs.  The caller should
    re-submit the shard — results are content-addressed, so the worst
    case is one redundant execution.  Because the poll's directory
    probes are not one atomic snapshot, a shard mid-transition can look
    lost for a single pass; callers debounce (act only on consecutive
    lost polls)."""

    key: str


@dataclass
class Claim:
    """A worker's lease on one shard (see :meth:`SpoolBroker.claim_next`)."""

    key: str
    job: object
    path: pathlib.Path
    heartbeat_path: pathlib.Path
    #: Ownership token: the identity written into the heartbeat file at
    #: claim time.  A straggler whose lease was expired and re-claimed
    #: by another worker no longer owns the heartbeat, and must not
    #: delete the new owner's lease files or publish failures for it.
    owner: str = ""

    def owns(self) -> bool:
        """Whether this claim still holds the lease (token check)."""
        try:
            return self.heartbeat_path.read_text("utf-8") == self.owner
        except OSError:
            return False  # expired (heartbeat removed) or re-claimed

    def heartbeat(self) -> None:
        """Refresh the lease (touch the heartbeat file's mtime)."""
        try:
            os.utime(self.heartbeat_path)
        except OSError:
            pass  # expired by the collector: do not resurrect the lease

    def release(self) -> None:
        """Give the shard back (un-claim it) — e.g. on worker shutdown."""
        if not self.owns():
            return
        try:
            os.rename(self.path, self.path.parent.parent
                      / SpoolBroker.PENDING / self.path.name)
        except OSError:
            pass
        self.discard()

    def discard(self) -> None:
        """Drop the lease bookkeeping files (claim + heartbeat)."""
        for path in (self.heartbeat_path, self.path):
            try:
                path.unlink()
            except OSError:
                pass


class SpoolBroker:
    """Runner/worker-symmetric access to one spool directory."""

    PENDING = "pending"
    CLAIMED = "claimed"
    DONE = "done"
    FAILED = "failed"
    QUARANTINE = "quarantine"

    def __init__(self, root, *, lease_timeout: float | None = None):
        self.root = validated_queue_root(root)
        self.lease_timeout = (default_lease_timeout()
                              if lease_timeout is None else float(lease_timeout))
        if self.lease_timeout <= 0:
            raise ConfigError("lease_timeout must be positive")
        #: Workers refresh their lease a few times per timeout window.
        self.heartbeat_interval = min(1.0, self.lease_timeout / 4.0)
        self.spool = self.root / version_tag()
        #: Collector-side lease watch: key -> (last observed heartbeat
        #: marker, monotonic time of that observation).  Expiry is
        #: judged by the marker not changing for ``lease_timeout`` of
        #: *this* process's monotonic clock — remote mtimes are treated
        #: as opaque tokens, so clock skew between machines sharing the
        #: spool can never expire a healthy lease.
        self._lease_watch: dict[str, tuple[float, float]] = {}
        #: Observability hooks (optional callables, set by the queue
        #: backend's metrics wiring): ``on_lease_lag(seconds)`` reports
        #: how long each watched lease has gone without a heartbeat at
        #: poll time; ``on_lease_expired()`` fires per expired lease.
        self.on_lease_lag = None
        self.on_lease_expired = None
        for name in (self.PENDING, self.CLAIMED, self.DONE, self.FAILED,
                     self.QUARANTINE):
            try:
                (self.spool / name).mkdir(parents=True, exist_ok=True)
            except OSError as exc:
                raise ConfigError(
                    f"cannot create spool directory {self.spool / name}: "
                    f"{exc}")

    # -- paths ---------------------------------------------------------

    @property
    def pending_dir(self) -> pathlib.Path:
        return self.spool / self.PENDING

    @property
    def claimed_dir(self) -> pathlib.Path:
        return self.spool / self.CLAIMED

    @property
    def done_dir(self) -> pathlib.Path:
        return self.spool / self.DONE

    @property
    def failed_dir(self) -> pathlib.Path:
        return self.spool / self.FAILED

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.spool / self.QUARANTINE

    def _atomic_write(self, path: pathlib.Path, payload: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- runner side ---------------------------------------------------

    def submit(self, key: str, job) -> bool:
        """Spool ``job`` under ``key``; False if already in flight.

        A leftover ``done/`` file (an interrupted batch's published
        result) counts as in flight too: it is already a valid answer
        for this key, and re-spooling the shard would let a worker
        redundantly re-simulate it before the collector's first poll.
        A leftover ``failed/`` report, by contrast, is *stale* — it
        describes an attempt from a batch whose collector died before
        consuming it — and is cleared here so it cannot be charged
        against the new batch's retry budget before a single execution.
        """
        if (self.done_dir / f"{key}.pkl").exists():
            return False
        stale_err = self.failed_dir / f"{key}.err"
        if (self.pending_dir / f"{key}.job").exists():
            # Not yet claimed, so any failure report predates this spool
            # entry: clear it along with declining the duplicate submit.
            try:
                stale_err.unlink()
            except OSError:
                pass
            return False
        if (self.claimed_dir / f"{key}.job").exists():
            return False
        try:
            stale_err.unlink()
        except OSError:
            pass
        payload = pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(self.pending_dir / f"{key}.job", payload)
        return True

    def poll(self, keys) -> list:
        """One collection pass over ``keys``; returns events (see module
        docstring).  Side effects: collected shards have their spool
        files removed, corrupt results are quarantined, expired claims
        are renamed back to ``pending/``.

        Each spool directory is listed **once** per pass (one scandir
        each) instead of probing four paths per key — on the network
        filesystems the queue targets, per-key stat round-trips would
        make the collector itself the bottleneck for large batches.
        """
        events = []
        now = time.monotonic()
        done_names = self._names(self.done_dir)
        failed_names = self._names(self.failed_dir)
        claimed_stats = self._stats(self.claimed_dir)
        pending_names = self._names(self.pending_dir)
        for key in sorted(keys):
            if f"{key}.pkl" in done_names:
                done_path = self.done_dir / f"{key}.pkl"
                try:
                    with done_path.open("rb") as handle:
                        result = pickle.load(handle)
                except FileNotFoundError:
                    pass  # vanished since the scan: resolve next pass
                except Exception:
                    events.append(CorruptEvent(key,
                                               self._quarantine(done_path)))
                else:
                    self.forget(key)
                    events.append(CompletedEvent(key, result))
                continue
            if f"{key}.err" in failed_names:
                failed_path = self.failed_dir / f"{key}.err"
                try:
                    error = failed_path.read_text("utf-8")
                except OSError:
                    pass
                else:
                    try:
                        failed_path.unlink()
                    except OSError:
                        pass
                    events.append(FailedEvent(key, error))
                    continue
            claim_stat = claimed_stats.get(f"{key}.job")
            if claim_stat is not None:
                heartbeat = claimed_stats.get(f"{key}.hb")
                # The claim rename bumps st_ctime, covering the tiny
                # window between a worker's rename and its first
                # heartbeat write.
                marker = heartbeat.st_mtime if heartbeat is not None \
                    else claim_stat.st_ctime
                watched = self._lease_watch.get(key)
                if watched is None or watched[0] != marker:
                    # New claim, or the heartbeat moved: (re)start the
                    # local staleness clock for this lease.
                    self._lease_watch[key] = (marker, now)
                elif now - watched[1] > self.lease_timeout:
                    if self._expire(key, self.claimed_dir / f"{key}.job"):
                        events.append(ExpiredEvent(key))
                        if self.on_lease_expired is not None:
                            self.on_lease_expired()
                    self._lease_watch.pop(key, None)
                elif self.on_lease_lag is not None:
                    # Healthy-but-lagging lease: how stale is the beat?
                    self.on_lease_lag(now - watched[1])
                continue
            if f"{key}.job" in pending_names:
                continue  # waiting for a worker: nothing to do yet
            events.append(LostEvent(key))
        return events

    @staticmethod
    def _names(directory: pathlib.Path) -> set:
        """One-scandir snapshot of a spool directory's entry names."""
        try:
            with os.scandir(directory) as entries:
                return {entry.name for entry in entries}
        except OSError:
            return set()

    @staticmethod
    def _stats(directory: pathlib.Path) -> dict:
        """One-scandir snapshot of entry names -> stat results."""
        stats = {}
        try:
            with os.scandir(directory) as entries:
                for entry in entries:
                    try:
                        stats[entry.name] = entry.stat()
                    except OSError:
                        pass
        except OSError:
            pass
        return stats

    def _expire(self, key: str, claimed_path: pathlib.Path) -> bool:
        """Re-dispatch a dead claim: rename it back into ``pending/``."""
        try:
            os.rename(claimed_path, self.pending_dir / f"{key}.job")
        except OSError:
            return False  # the worker finished (or another runner won)
        try:
            (self.claimed_dir / f"{key}.hb").unlink()
        except OSError:
            pass
        return True

    def _quarantine(self, path: pathlib.Path) -> pathlib.Path:
        """Move a corrupt payload aside (uniquely named), best effort."""
        for attempt in range(1000):
            target = self.quarantine_dir / f"{path.name}.{attempt}"
            if target.exists():
                continue
            try:
                os.rename(path, target)
                return target
            except FileNotFoundError:
                break
            except OSError:
                break
        try:  # could not move it: drop it so it is not re-read forever
            path.unlink()
        except OSError:
            pass
        return self.quarantine_dir / f"{path.name}.lost"

    def forget(self, key: str) -> None:
        """Remove every spool file of ``key`` (collected or abandoned)."""
        self._lease_watch.pop(key, None)
        for path in (self.pending_dir / f"{key}.job",
                     self.claimed_dir / f"{key}.job",
                     self.claimed_dir / f"{key}.hb",
                     self.done_dir / f"{key}.pkl",
                     self.failed_dir / f"{key}.err"):
            try:
                path.unlink()
            except OSError:
                pass

    # -- worker side ---------------------------------------------------

    def claim_next(self, worker_id: str = "", key: str | None = None):
        """Atomically claim one pending shard (rename-based lease).

        Returns a :class:`Claim` or ``None`` when nothing is claimable.
        ``key`` restricts the claim to one specific shard (used by tests
        that script exact interleavings).  A pending file that fails to
        unpickle is quarantined and skipped.
        """
        if key is not None:
            candidates = [self.pending_dir / f"{key}.job"]
        else:
            try:
                candidates = sorted(self.pending_dir.glob("*.job"))
            except OSError:
                return None
        claims = self._claim_candidates(candidates, worker_id, limit=1)
        return claims[0] if claims else None

    def claim_batch(self, worker_id: str = "", limit: int = 1) -> list:
        """Claim up to ``limit`` pending shards with **one** directory
        scan, returning a list of :class:`Claim` (possibly empty).

        The batch shares one lease inode: the first member's heartbeat
        file is written normally and every later member's heartbeat path
        is a hard link to it, so the worker refreshes the whole batch
        with one ``utime`` per interval and the claim itself amortizes
        the ``pending/`` scandir over ``limit`` shards — the two
        per-shard costs that dominate small-shard campaigns on network
        filesystems.  Collector-side nothing changes: each member still
        has its own heartbeat *path* whose mtime moves on every beat,
        and expiring one member unlinks only that member's path.
        """
        if limit <= 1:
            claim = self.claim_next(worker_id)
            return [claim] if claim is not None else []
        try:
            candidates = sorted(self.pending_dir.glob("*.job"))
        except OSError:
            return []
        return self._claim_candidates(candidates, worker_id, limit=limit)

    def _claim_candidates(self, candidates, worker_id: str,
                          limit: int) -> list:
        """Rename-claim up to ``limit`` of ``candidates`` (shared by
        :meth:`claim_next` and :meth:`claim_batch`)."""
        claims: list[Claim] = []
        owner = worker_id or worker_identity()
        anchor = None  # first member's heartbeat: the batch's lease inode
        for path in candidates:
            if len(claims) >= limit:
                break
            target = self.claimed_dir / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue  # claimed by someone else (or vanished)
            claim_key = path.stem
            heartbeat = self.claimed_dir / f"{claim_key}.hb"
            linked = False
            if anchor is not None:
                try:
                    os.link(anchor, heartbeat)
                    linked = True
                except OSError:
                    linked = False  # stale file / no hardlinks: fall back
            if not linked:
                try:
                    heartbeat.write_text(owner, encoding="utf-8")
                except OSError:
                    pass
            try:
                with target.open("rb") as handle:
                    job = pickle.load(handle)
            except Exception:
                self._quarantine(target)
                try:
                    heartbeat.unlink()
                except OSError:
                    pass
                continue
            claims.append(Claim(key=claim_key, job=job, path=target,
                                heartbeat_path=heartbeat, owner=owner))
            if anchor is None:
                anchor = heartbeat
        return claims

    def complete(self, claim: Claim, result, *, worker: str = "",
                 execute_s: float | None = None) -> None:
        """Publish a claimed shard's result and drop the lease.

        The result is always published — deterministic per key, so a
        straggler finishing after its lease was re-claimed only speeds
        the batch up (its double-write is a valid answer even if the
        envelope's timing differs) — but the lease files are deleted
        only by their current owner, never out from under a re-claiming
        worker.  With ``execute_s`` set the payload is wrapped in a
        :class:`WireResult` envelope carrying the worker identity and
        its measured execute seconds; without it the bare result is
        pickled exactly as before.
        """
        if execute_s is not None:
            result = WireResult(result=result, worker=worker,
                                execute_s=float(execute_s))
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        self._atomic_write(self.done_dir / f"{claim.key}.pkl", payload)
        if claim.owns():
            claim.discard()

    def fail(self, claim: Claim, exc: BaseException) -> None:
        """Publish a claimed shard's failure and drop the lease.

        A straggler that no longer owns the lease stays silent: another
        worker is (or was) legitimately executing the shard, and a stale
        failure report would charge the retry budget for nothing.
        """
        if not claim.owns():
            return
        text = "".join(traceback.format_exception(type(exc), exc,
                                                  exc.__traceback__))
        self._atomic_write(self.failed_dir / f"{claim.key}.err",
                           text.encode("utf-8"))
        claim.discard()


def spool_status(root, *, now: float | None = None) -> dict:
    """Read-only depth/age introspection over every spool version.

    Returns a mapping with the spool ``root``, the ``current_version``
    tag of this process's code, and one entry per version directory
    found under the root: pending/claimed/done/failed shard counts plus
    the age in seconds of the oldest ``pending/`` shard (``None`` when
    nothing is pending).  This is the data source of ``repro queue``'s
    report and of the serve tier's ``/v1/metrics`` endpoint, so both
    surfaces agree by construction.

    Strictly read-only: no :class:`SpoolBroker` is built (its
    constructor creates the spool tree) and nothing is created — probing
    a typo'd path must not leave a real-looking empty spool behind.
    """
    if not root:
        raise ConfigError(
            "spool introspection needs a spool directory: pass --queue DIR "
            f"or set ${QUEUE_DIR_ENV}")
    path = pathlib.Path(root).expanduser()
    if not path.is_dir():
        raise ConfigError(f"queue directory {path} does not exist "
                          f"(check ${QUEUE_DIR_ENV})")
    if now is None:
        now = time.time()
    versions = []
    try:
        children = sorted(path.iterdir())
    except OSError:
        children = []
    for child in children:
        if not child.is_dir() or not is_version_dir_name(child.name):
            continue
        counts = {
            SpoolBroker.PENDING: 0,
            SpoolBroker.CLAIMED: 0,
            SpoolBroker.DONE: 0,
            SpoolBroker.FAILED: 0,
        }
        suffixes = {SpoolBroker.PENDING: ".job", SpoolBroker.CLAIMED: ".job",
                    SpoolBroker.DONE: ".pkl", SpoolBroker.FAILED: ".err"}
        oldest_pending: float | None = None
        for name, suffix in suffixes.items():
            try:
                with os.scandir(child / name) as entries:
                    for entry in entries:
                        if not entry.name.endswith(suffix):
                            continue
                        counts[name] += 1
                        if name == SpoolBroker.PENDING:
                            try:
                                mtime = entry.stat().st_mtime
                            except OSError:
                                continue
                            if oldest_pending is None \
                                    or mtime < oldest_pending:
                                oldest_pending = mtime
            except OSError:
                pass
        versions.append({
            "version": child.name,
            "current": child.name == version_tag(),
            "pending": counts[SpoolBroker.PENDING],
            "claimed": counts[SpoolBroker.CLAIMED],
            "done": counts[SpoolBroker.DONE],
            "failed": counts[SpoolBroker.FAILED],
            "oldest_pending_age_s":
                None if oldest_pending is None
                else max(0.0, now - oldest_pending),
        })
    return {"root": str(path), "current_version": version_tag(),
            "versions": versions}


def prune_stale_versions(root) -> list[tuple[str, int]]:
    """Delete spool version directories left by older code versions.

    The spool is code-versioned (see the module docstring): every code
    change strands the previous version directory, along with any
    pending/claimed/done payloads inside it, and nothing ever reclaims
    them.  This is the garbage collector: it removes every version
    directory under ``root`` other than the current
    :func:`~repro.engine.cache.version_tag` and returns
    ``(directory_name, files_removed)`` pairs, oldest-named first.
    Best-effort like the cache's pruner — a file another process holds
    open just survives until the next collection.  Only directories
    whose names have the exact version-tag shape are touched
    (:func:`~repro.engine.cache.is_version_dir_name`): anything else an
    operator keeps beside the spool — a ``venv``, notes, other tools'
    state — is not ours to delete.
    """
    path = validated_queue_root(root)
    current = version_tag()
    removed: list[tuple[str, int]] = []
    try:
        children = sorted(path.iterdir())
    except OSError:
        return removed
    for child in children:
        if not child.is_dir() or not is_version_dir_name(child.name) \
                or child.name == current:
            continue
        count = 0
        for entry in sorted(child.rglob("*"), reverse=True):
            try:
                if entry.is_dir():
                    entry.rmdir()
                else:
                    entry.unlink()
                    count += 1
            except OSError:
                pass
        try:
            child.rmdir()
        except OSError:
            pass
        removed.append((child.name, count))
    return removed


def worker_identity() -> str:
    """Best-effort unique id for heartbeat files (debugging aid only)."""
    return f"{socket.gethostname()}:{os.getpid()}:{threading.get_ident()}"


@dataclass
class _HeartbeatPump:
    """Background thread refreshing one claim's lease while it executes."""

    claim: Claim
    interval: float
    _stop: threading.Event = field(default_factory=threading.Event)
    _thread: threading.Thread | None = None

    def __enter__(self) -> "_HeartbeatPump":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"hb-{self.claim.key[:12]}")
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.claim.heartbeat()


class _BatchHeartbeatPump:
    """Background thread refreshing a whole claim batch's leases.

    Members are dropped (:meth:`done`) as the worker publishes them, so
    a long batch never keeps beating for shards that already completed.
    With hardlinked batch leases every beat is one shared-inode
    ``utime`` anyway; the per-member loop also covers the fallback path
    where members got individual heartbeat files.
    """

    def __init__(self, claims, interval: float):
        self._claims = list(claims)
        self._interval = interval
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def done(self, claim: Claim) -> None:
        """Stop beating for one published member."""
        with self._lock:
            self._claims = [c for c in self._claims if c is not claim]

    def __enter__(self) -> "_BatchHeartbeatPump":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="hb-batch")
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            with self._lock:
                claims = list(self._claims)
            for claim in claims:
                claim.heartbeat()


def run_worker_loop(broker: SpoolBroker, *,
                    stop: threading.Event | None = None,
                    poll_interval: float = 0.2,
                    idle_exit: float | None = None,
                    max_shards: int | None = None,
                    worker_id: str = "",
                    execute=None,
                    on_shard=None,
                    claim_batch: int = 1) -> tuple[int, int]:
    """Claim-execute-publish loop shared by ``repro worker`` and the
    queue backend's in-process workers.

    Runs until ``stop`` is set, ``max_shards`` shards have been
    attempted, or nothing has been claimable for ``idle_exit`` seconds
    (``None`` = wait forever).  Returns ``(completed, failed)`` counts —
    failed attempts are published to ``failed/`` (the loop keeps
    serving) and are *not* reported as completed work.
    ``claim_batch > 1`` claims up to that many shards per broker round
    trip (:meth:`SpoolBroker.claim_batch`), publishing each member as
    it finishes.  ``KeyboardInterrupt``/``SystemExit`` release the
    in-flight claims back to ``pending/`` and re-raise.
    """
    if execute is None:
        from repro.engine.executors import execute_job
        execute = execute_job
    if claim_batch < 1:
        raise ConfigError(f"claim_batch must be >= 1 (got {claim_batch})")
    completed = failed = 0
    identity = worker_id or worker_identity()
    idle_since = time.monotonic()
    while stop is None or not stop.is_set():
        # Bound checked *before* claiming: --max-shards 0 means zero.
        if max_shards is not None and completed + failed >= max_shards:
            break
        limit = claim_batch
        if max_shards is not None:
            limit = min(limit, max_shards - (completed + failed))
        claims = broker.claim_batch(identity, limit=limit)
        if not claims:
            if idle_exit is not None \
                    and time.monotonic() - idle_since >= idle_exit:
                break
            if stop is not None:
                if stop.wait(poll_interval):
                    break
            else:
                time.sleep(poll_interval)
            continue
        with _BatchHeartbeatPump(claims, broker.heartbeat_interval) as pump:
            for index, claim in enumerate(claims):
                try:
                    started = time.perf_counter()
                    result = execute(claim.job)
                    elapsed = time.perf_counter() - started
                except Exception as exc:
                    broker.fail(claim, exc)
                    failed += 1
                except BaseException:
                    for unfinished in claims[index:]:
                        unfinished.release()
                    raise
                else:
                    # Worker-measured execute time rides back in the
                    # WireResult envelope so the runner can attribute
                    # remote execution without clock agreement.
                    broker.complete(claim, result, worker=identity,
                                    execute_s=elapsed)
                    completed += 1
                pump.done(claim)
                # Reset *after* each shard: execution time is work, not
                # idleness, so a long simulation cannot trip --idle-exit
                # on its own.
                idle_since = time.monotonic()
                if on_shard is not None:
                    on_shard(claim.key)
    return completed, failed


def worker_main(root, *, lease_timeout: float | None = None,
                poll_interval: float = 0.2,
                idle_exit: float | None = None,
                max_shards: int | None = None,
                claim_batch: int = 1) -> tuple[int, int]:
    """Entry point for one worker process (used by ``repro worker``).

    Module-level so ``multiprocessing`` can spawn it for
    ``--concurrency N``: each child builds its own broker handle on the
    shared spool and runs an independent claim loop.
    """
    if os.environ.get("REPRO_SELFTEST_WORKER_CRASH"):
        # Test-only: lets the suite prove that crashed worker children
        # surface as a non-zero ``repro worker`` exit instead of a
        # silent success over an unserved spool.
        raise RuntimeError("injected worker crash (selftest)")
    broker = SpoolBroker(root, lease_timeout=lease_timeout)
    try:
        return run_worker_loop(broker, poll_interval=poll_interval,
                               idle_exit=idle_exit, max_shards=max_shards,
                               claim_batch=claim_batch)
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        return 0, 0


class WorkerSupervisor:
    """Sizes a ``repro worker`` fleet to queue depth and heals crashes.

    The supervisor owns a set of worker child processes serving one
    spool.  Each :meth:`poll_once` pass (a) reaps exited children,
    charging crashed ones (non-zero exit with work still pending)
    against a bounded respawn budget, (b) measures the backlog with one
    ``pending/`` scandir, and (c) spawns workers up to
    ``ceil(backlog / shards_per_worker)``, clamped to
    ``[min_workers, max_workers]``.  Children run
    :func:`worker_main` with ``idle_exit`` set, so an over-provisioned
    fleet shrinks itself — the supervisor only ever has to grow it.

    ``spawn`` is injectable for tests: any callable returning an object
    with ``is_alive()``, ``exitcode`` and ``join(timeout)``.
    """

    def __init__(self, root, *, max_workers: int,
                 min_workers: int = 0,
                 shards_per_worker: int = 4,
                 poll_interval: float = 0.5,
                 idle_exit: float = 2.0,
                 max_respawns: int = 8,
                 claim_batch: int = 1,
                 worker_poll: float = 0.2,
                 lease_timeout: float | None = None,
                 spawn=None):
        if max_workers < 1:
            raise ConfigError(f"supervisor needs max_workers >= 1 "
                              f"(got {max_workers})")
        if not 0 <= min_workers <= max_workers:
            raise ConfigError(
                f"supervisor needs 0 <= min_workers <= max_workers "
                f"(got {min_workers}/{max_workers})")
        if shards_per_worker < 1:
            raise ConfigError(f"supervisor needs shards_per_worker >= 1 "
                              f"(got {shards_per_worker})")
        if claim_batch < 1:
            raise ConfigError(f"claim_batch must be >= 1 "
                              f"(got {claim_batch})")
        self.broker = SpoolBroker(root, lease_timeout=lease_timeout)
        self.max_workers = int(max_workers)
        self.min_workers = int(min_workers)
        self.shards_per_worker = int(shards_per_worker)
        self.poll_interval = float(poll_interval)
        self.idle_exit = float(idle_exit)
        self.max_respawns = int(max_respawns)
        self.claim_batch = int(claim_batch)
        self.worker_poll = float(worker_poll)
        self.lease_timeout = lease_timeout
        self.spawn = spawn or self._spawn_process
        self.children: list = []
        self.spawned = 0
        self.crashed = 0
        self.respawns = 0

    def attach_metrics(self, registry) -> None:
        """Register fleet gauges on a :class:`MetricsRegistry`.

        Callback-backed gauges, so a scrape always sees the live fleet —
        no per-poll update plumbing in :meth:`poll_once`.
        """
        registry.gauge("supervisor_fleet",
                       "Live supervised worker processes",
                       fn=lambda: len(self.children))
        registry.gauge("supervisor_spawned",
                       "Workers spawned since supervisor start",
                       fn=lambda: self.spawned)
        registry.gauge("supervisor_crashed",
                       "Worker crashes observed (non-zero exit)",
                       fn=lambda: self.crashed)
        registry.gauge("supervisor_respawns",
                       "Crash respawns charged against the budget",
                       fn=lambda: self.respawns)
        registry.gauge("queue_backlog_shards",
                       "Unclaimed shards in the supervised spool",
                       fn=self.backlog)

    # -- fleet mechanics -----------------------------------------------

    def _spawn_process(self):
        """Default spawn: one detached ``worker_main`` child process."""
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        process = context.Process(
            target=worker_main,
            args=(str(self.broker.root),),
            kwargs=dict(lease_timeout=self.lease_timeout,
                        poll_interval=self.worker_poll,
                        idle_exit=self.idle_exit,
                        claim_batch=self.claim_batch),
        )
        process.start()
        return process

    def backlog(self) -> int:
        """Unclaimed shards in the spool (one ``pending/`` scandir)."""
        try:
            with os.scandir(self.broker.pending_dir) as entries:
                return sum(1 for entry in entries
                           if entry.name.endswith(".job"))
        except OSError:
            return 0

    def desired(self, backlog: int) -> int:
        """Fleet size for ``backlog`` pending shards."""
        if backlog <= 0:
            return self.min_workers
        need = -(-backlog // self.shards_per_worker)  # ceil
        return max(self.min_workers, min(self.max_workers, need))

    def poll_once(self) -> dict:
        """One supervision pass; returns fleet counters (for status)."""
        alive = []
        crashed_now = 0
        for child in self.children:
            if child.is_alive():
                alive.append(child)
            elif child.exitcode not in (0, None):
                crashed_now += 1
        self.children = alive
        backlog = self.backlog()
        if crashed_now:
            self.crashed += crashed_now
            if backlog > 0:
                # A crash with work still pending is respawnable — but
                # a crash-looping fleet (bad install, poisoned shard
                # kind) must not burn CPU forever.
                self.respawns += crashed_now
                if self.respawns > self.max_respawns:
                    raise RuntimeError(
                        f"worker supervisor: {self.crashed} worker "
                        f"crash(es) with work still pending exceeded "
                        f"the respawn budget ({self.max_respawns}); "
                        f"check 'repro queue --status' and the worker "
                        f"logs")
        target = self.desired(backlog)
        while len(self.children) < target:
            self.children.append(self.spawn())
            self.spawned += 1
        return {"backlog": backlog, "alive": len(self.children),
                "target": target, "spawned": self.spawned,
                "crashed": self.crashed}

    def run(self, stop: threading.Event | None = None) -> dict:
        """Supervise until the spool drains and the fleet exits.

        Returns the final counters.  ``stop`` (optional) ends the loop
        early; children are joined (they exit on their own via
        ``idle_exit``) either way.
        """
        status = {"backlog": 0, "alive": 0, "target": 0,
                  "spawned": self.spawned, "crashed": self.crashed}
        try:
            while stop is None or not stop.is_set():
                status = self.poll_once()
                if status["backlog"] == 0 and status["alive"] == 0:
                    break
                if stop is not None:
                    if stop.wait(self.poll_interval):
                        break
                else:
                    time.sleep(self.poll_interval)
        finally:
            for child in self.children:
                child.join(timeout=self.idle_exit
                           + 4.0 * self.worker_poll + 30.0)
        return status
