"""repro — reproduction of "High-Performance Low-Vcc In-Order Core" (HPCA 2010).

The library implements IRAW (Immediate Read After Write) avoidance — the
paper's technique for clocking an in-order core above the SRAM write-delay
limit at low Vcc — together with every substrate the evaluation needs:

* :mod:`repro.circuits` — calibrated delay/frequency/energy/area models;
* :mod:`repro.isa` / :mod:`repro.workloads` — a mini ISA, synthetic trace
  profiles and real kernels with golden-model semantics;
* :mod:`repro.memory` / :mod:`repro.branch` — the Silverthorne-class
  memory hierarchy and predictors;
* :mod:`repro.core` — the IRAW mechanisms (scoreboard, IQ gate, STable,
  fill guards, Vcc controller);
* :mod:`repro.pipeline` — the cycle-level 2-wide in-order core;
* :mod:`repro.baselines` — Table 1's Faulty Bits / Extra Bypass;
* :mod:`repro.analysis` — the evaluation harness regenerating every
  figure and table;
* :mod:`repro.experiments` — the declarative experiment API: serializable
  ``ExperimentSpec`` files (TOML/JSON), one ``Experiment.run`` driver
  over the engine, structured ``ResultSet`` records and the named
  artifact registry behind ``python -m repro run``.

The supported, stability-guaranteed surface of all of the above is
re-exported by :mod:`repro.api` — scripts and downstream tools should
import from there.

Quickstart::

    from repro import quick_comparison
    print(quick_comparison(vcc_mv=500.0))
"""

from repro.circuits import ClockScheme, FrequencySolver
from repro.core import IrawConfig, VccController
from repro.pipeline import simulate
from repro.workloads import SyntheticTraceGenerator, kernel_trace

__version__ = "1.6.0"

__all__ = [
    "ClockScheme",
    "FrequencySolver",
    "IrawConfig",
    "SyntheticTraceGenerator",
    "VccController",
    "kernel_trace",
    "quick_comparison",
    "simulate",
    "__version__",
]


def quick_comparison(vcc_mv: float = 500.0,
                     trace_length: int = 8_000) -> dict[str, float]:
    """One-call headline result: IRAW vs baseline at one Vcc level.

    Runs a small synthetic population and returns frequency gain,
    performance gain and the IRAW stall statistics — the reproduction of
    the paper's "57% frequency / 48% speedup at 500 mV" claim in miniature.
    """
    from repro.analysis import SweepSettings, VccSweep

    sweep = VccSweep(SweepSettings(trace_length=trace_length))
    return sweep.compare(vcc_mv)
