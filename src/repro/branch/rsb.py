"""Return stack buffer (the RSB block of Figure 3).

A small circular stack: calls push their return address, returns pop the
predicted target.  Under IRAW clocking the push is an SRAM write, so a
return that pops **within N cycles of the matching call** could read a
not-yet-stabilized entry (paper Section 4.5).  The paper "did not find any
short function meeting those conditions"; we track the same statistic.

The optional *determinism mode* implements the paper's suggested fix:
"the RSB should be stalled after a call instruction" — the pipeline then
delays such returns instead of risking nondeterministic predictions.
"""

from __future__ import annotations

from repro.errors import ConfigError


class ReturnStackBuffer:
    """Circular return-address stack with write-time tracking."""

    def __init__(self, entries: int = 8):
        if entries <= 0:
            raise ConfigError("RSB needs at least one entry")
        self.entries = entries
        self._stack: list[tuple[int, int]] = []  # (return pc, written cycle)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        #: Pops that read an entry written within the hazard window.
        self.hazard_pops = 0

    def push(self, return_pc: int, cycle: int) -> None:
        """Record a call's return address at ``cycle``."""
        self.pushes += 1
        if len(self._stack) >= self.entries:
            # Circular overwrite: the oldest entry is lost.
            self._stack.pop(0)
        self._stack.append((return_pc, cycle))

    def pop(self, cycle: int, hazard_window: int = 0) -> tuple[int | None, bool]:
        """Predict a return target at ``cycle``.

        Returns ``(predicted pc or None, hazardous)`` where ``hazardous``
        means the popped entry was written within ``hazard_window`` cycles
        — i.e. the prediction would read a not-yet-stabilized SRAM entry
        under IRAW clocking.
        """
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None, False
        return_pc, written_at = self._stack.pop()
        hazardous = hazard_window > 0 and (cycle - written_at) <= hazard_window
        if hazardous:
            self.hazard_pops += 1
        return return_pc, hazardous

    def top_written_at(self) -> int | None:
        """Cycle of the most recent push still on the stack (for stalls)."""
        if not self._stack:
            return None
        return self._stack[-1][1]

    @property
    def depth(self) -> int:
        return len(self._stack)
