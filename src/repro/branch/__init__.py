"""Branch prediction substrate: BP, RSB and IRAW hazard tracking."""

from repro.branch.iraw_effects import (
    DeterminismMode,
    HazardCounts,
    PredictionHazardTracker,
)
from repro.branch.predictor import BimodalPredictor, GsharePredictor
from repro.branch.rsb import ReturnStackBuffer

__all__ = [
    "BimodalPredictor",
    "DeterminismMode",
    "GsharePredictor",
    "HazardCounts",
    "PredictionHazardTracker",
    "ReturnStackBuffer",
]
