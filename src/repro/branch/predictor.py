"""Branch direction predictors (the BP block of Figure 3).

Silverthorne uses a two-level scheme; we provide both a bimodal table and a
gshare variant.  Each entry is a 2-bit saturating counter.

For the IRAW study (paper Section 4.5) the predictor also records *when*
each entry was last written and whether that write flipped the counter's
uppermost (direction) bit: a prediction that reads an entry inside its
stabilization window could return a corrupted direction, which affects
performance but never correctness.  The paper measured a negligible
0.0017% average potential extra misprediction rate; see
:mod:`repro.branch.iraw_effects` for the bookkeeping.
"""

from __future__ import annotations

from repro.errors import ConfigError

#: 2-bit saturating counter limits.
_COUNTER_MAX = 3
_TAKEN_THRESHOLD = 2


class _CounterTable:
    """Shared guts of the direction predictors."""

    def __init__(self, entries: int):
        if entries <= 0 or entries & (entries - 1):
            raise ConfigError(f"predictor entries must be a power of two, got {entries}")
        self.entries = entries
        self._counters = [1] * entries  # weakly not-taken
        self._written_at = [-(10 ** 9)] * entries
        self._write_flipped_msb = [False] * entries
        self.predictions = 0
        self.mispredictions = 0

    def _predict_index(self, index: int) -> bool:
        self.predictions += 1
        return self._counters[index] >= _TAKEN_THRESHOLD

    def _update_index(self, index: int, taken: bool, cycle: int) -> None:
        old = self._counters[index]
        new = min(_COUNTER_MAX, old + 1) if taken else max(0, old - 1)
        self._counters[index] = new
        self._written_at[index] = cycle
        self._write_flipped_msb[index] = (
            (old >= _TAKEN_THRESHOLD) != (new >= _TAKEN_THRESHOLD))

    def entry_state(self, index: int) -> tuple[int, int, bool]:
        """(counter, last write cycle, did last write flip the MSB)."""
        return (self._counters[index], self._written_at[index],
                self._write_flipped_msb[index])


class BimodalPredictor(_CounterTable):
    """PC-indexed 2-bit counter table."""

    def __init__(self, entries: int = 4096):
        super().__init__(entries)

    def index_of(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._predict_index(self.index_of(pc))

    def update(self, pc: int, taken: bool, cycle: int) -> None:
        if taken != (self._counters[self.index_of(pc)] >= _TAKEN_THRESHOLD):
            self.mispredictions += 1
        self._update_index(self.index_of(pc), taken, cycle)


class GsharePredictor(_CounterTable):
    """Global-history-xor-PC indexed 2-bit counter table."""

    def __init__(self, entries: int = 4096, history_bits: int = 8):
        super().__init__(entries)
        if history_bits <= 0:
            raise ConfigError("history_bits must be positive")
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def index_of(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & (self.entries - 1)

    def predict(self, pc: int) -> bool:
        return self._predict_index(self.index_of(pc))

    def update(self, pc: int, taken: bool, cycle: int) -> None:
        index = self.index_of(pc)
        if taken != (self._counters[index] >= _TAKEN_THRESHOLD):
            self.mispredictions += 1
        self._update_index(index, taken, cycle)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    @property
    def misprediction_rate(self) -> float:
        return (self.mispredictions / self.predictions
                if self.predictions else 0.0)
