"""IRAW effects on prediction-only blocks (paper Section 4.5).

The paper's strategy for BP and RSB is *do nothing*: reading a
not-yet-stabilized entry can only corrupt a prediction, never architectural
state.  What matters is quantifying how often that can happen:

* **BP**: an entry read within N cycles of a write is only at risk if the
  write flipped the counter's uppermost (direction) bit — otherwise even a
  garbled read returns the same direction.  The paper reports a negligible
  0.0017% average *potential extra misprediction* rate.
* **RSB**: only a return predicted within 1-2 cycles of its matching call
  can pop a stabilizing entry; the paper found no such short functions.

:class:`PredictionHazardTracker` implements the bookkeeping on top of the
predictor/RSB models, plus the optional *determinism mode* extensions the
paper sketches (a DL0-style recent-update tracker for the BP and
stall-after-call for the RSB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.branch.predictor import BimodalPredictor, GsharePredictor


class DeterminismMode(str, Enum):
    """How prediction-only blocks treat IRAW hazards."""

    #: Paper default: allow the read, count the potential corruption.
    IGNORE = "ignore"
    #: Paper's post-silicon-testing extension: make predictions
    #: deterministic (BP recent-update tracker, RSB stall-after-call).
    DETERMINISTIC = "deterministic"


@dataclass
class HazardCounts:
    """Potential-corruption statistics for the prediction-only blocks."""

    bp_predictions: int = 0
    bp_hazard_reads: int = 0
    bp_potential_flips: int = 0
    rsb_pops: int = 0
    rsb_hazard_pops: int = 0
    rsb_stall_cycles: int = 0
    bp_tracker_hits: int = 0

    @property
    def bp_potential_extra_misprediction_rate(self) -> float:
        """The paper's 0.0017% statistic."""
        if not self.bp_predictions:
            return 0.0
        return self.bp_potential_flips / self.bp_predictions

    @property
    def rsb_hazard_rate(self) -> float:
        if not self.rsb_pops:
            return 0.0
        return self.rsb_hazard_pops / self.rsb_pops


@dataclass
class PredictionHazardTracker:
    """Counts IRAW hazards on BP reads; optionally enforces determinism."""

    predictor: BimodalPredictor | GsharePredictor
    stabilization_cycles: int = 1
    mode: DeterminismMode = DeterminismMode.IGNORE
    counts: HazardCounts = field(default_factory=HazardCounts)
    #: Determinism mode: recent BP updates tracked STable-style, keyed by
    #: entry index -> (cycle, counter-after-write).
    _recent_updates: dict[int, int] = field(default_factory=dict)

    def predict(self, pc: int, cycle: int) -> bool:
        """Predict a direction, accounting for stabilization hazards."""
        index = self.predictor.index_of(pc)
        counter, written_at, flipped = self.predictor.entry_state(index)
        prediction = self.predictor.predict(pc)
        self.counts.bp_predictions += 1
        in_window = (self.stabilization_cycles > 0
                     and cycle - written_at <= self.stabilization_cycles
                     and cycle >= written_at)
        if not in_window:
            return prediction
        if self.mode is DeterminismMode.DETERMINISTIC:
            # The tracker (latch-based, like the STable) provides the
            # just-written value: deterministic and hazard-free.
            self.counts.bp_tracker_hits += 1
            return prediction
        self.counts.bp_hazard_reads += 1
        if flipped:
            # Only writes that flip the uppermost bit can corrupt the
            # predicted direction (paper Section 4.5).
            self.counts.bp_potential_flips += 1
        return prediction

    def update(self, pc: int, taken: bool, cycle: int) -> None:
        self.predictor.update(pc, taken, cycle)

    def note_rsb_pop(self, hazardous: bool, stalled_cycles: int = 0) -> None:
        """Record a return-stack pop observed by the pipeline."""
        self.counts.rsb_pops += 1
        if hazardous:
            self.counts.rsb_hazard_pops += 1
        self.counts.rsb_stall_cycles += stalled_cycles
