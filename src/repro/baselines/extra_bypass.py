"""The *Extra Bypass* alternative of Table 1 (paper refs [3, 4, 20]).

Clock at the logic-allowed frequency and let SRAM writes take multiple
cycles, covering the gap with additional bypass levels and latches.  The
paper's Table 1 critique, quantified here:

* **Does not work for all SRAM blocks** — a bypass needs to know, at
  issue time, whether in-flight data will be consumed; cache-like blocks
  learn their addresses too late.  Honest core-level frequency is
  therefore still cache-write-bound (the baseline clock).  The
  hypothetical register-file-only variant clocks at the logic limit.
* **High hardware overhead** — each extra write cycle adds a full-width
  latch stage per write port (up to 128/256-bit SIMD data), plus bypass
  muxes on critical paths.
* **IPC impact** — multi-cycle writes occupy RF write ports; the pipeline
  models the resulting port contention directly
  (``PipelineParams.rf_write_cycles``).
* **No Vcc flexibility** — the latches and muxes are structural: their
  delay/area cost is paid at every Vcc level, and the write pipeline
  depth is fixed at design time for the worst case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.area import TRANSISTORS_PER_LATCH_BIT
from repro.circuits.frequency import ClockScheme, FrequencySolver, OperatingPoint
from repro.core.config import IrawConfig
from repro.pipeline.core import CoreSetup
from repro.pipeline.resources import PipelineParams


@dataclass
class ExtraBypassBaseline:
    """Pipelined multi-cycle SRAM writes with extra bypass latches."""

    solver: FrequencySolver
    #: Datapath width buffered per write port per extra cycle.
    latch_bits_per_stage: int = 128
    write_ports: int = 2
    #: The write pipeline is sized at design time for the lowest supported
    #: Vcc; its latches and muxes are paid at *every* operating point
    #: (Table 1: "adapts to multiple Vcc: NO").
    design_vcc_mv: float = 400.0
    name: str = "extra-bypass"

    def write_cycles(self, vcc_mv: float) -> int:
        """Cycles a full write needs at the logic-limited clock."""
        delays = self.solver.delay_model
        logic_phase = delays.logic(vcc_mv)
        write_phase = delays.write_with_wordline(vcc_mv)
        return max(1, math.ceil(write_phase / logic_phase))

    def operating_point(self, vcc_mv: float,
                        hypothetical_rf_only: bool = False) -> OperatingPoint:
        """Honest: cache-write-bound (baseline).  Hypothetical: logic clock."""
        scheme = (ClockScheme.LOGIC if hypothetical_rf_only
                  else ClockScheme.BASELINE)
        return self.solver.operating_point(vcc_mv, scheme)

    def core_setup(self, vcc_mv: float,
                   hypothetical_rf_only: bool = True) -> CoreSetup:
        cycles = self.write_cycles(vcc_mv) if hypothetical_rf_only else 1
        params = PipelineParams(rf_write_cycles=cycles,
                                rf_write_ports=self.write_ports)
        return CoreSetup(iraw=IrawConfig.disabled(), params=params,
                         name=self.name)

    # ------------------------------------------------------------------
    # Costs and characteristics
    # ------------------------------------------------------------------

    def extra_latch_bits(self, vcc_mv: float | None = None) -> int:
        """Latch bits for the (write_cycles - 1) extra bypass stages.

        Defaults to the design worst case (``design_vcc_mv``): the stages
        exist in silicon regardless of the current operating point.
        """
        vcc = self.design_vcc_mv if vcc_mv is None else vcc_mv
        stages = max(0, self.write_cycles(vcc) - 1)
        return stages * self.latch_bits_per_stage * self.write_ports

    def area_overhead(self, vcc_mv: float | None = None,
                      core_transistors: int = 47_000_000) -> float:
        return (self.extra_latch_bits(vcc_mv) * TRANSISTORS_PER_LATCH_BIT
                / core_transistors)

    def characteristics(self) -> dict[str, object]:
        return {
            "works_for_all_sram_blocks": False,
            "adapts_to_multiple_vcc": False,
            "hardware_overhead": "high (wide latches, bypass muxes)",
            "large_ipc_impact": True,
            "hard_to_test": False,
        }
