"""The paper's baseline: scale frequency until full writes fit a cycle.

No extra hardware, no IPC impact, works for every SRAM block, trivially
adapts to any Vcc — but pays the full exponential write-delay slowdown
(frequency down to ~24% of the logic-allowed clock at 450 mV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.frequency import ClockScheme, FrequencySolver, OperatingPoint
from repro.core.config import IrawConfig
from repro.pipeline.core import CoreSetup


@dataclass
class FrequencyScalingBaseline:
    """Write-delay-limited clocking with mechanisms disabled."""

    solver: FrequencySolver
    name: str = "freq-scaling"

    def operating_point(self, vcc_mv: float) -> OperatingPoint:
        return self.solver.operating_point(vcc_mv, ClockScheme.BASELINE)

    def core_setup(self, vcc_mv: float) -> CoreSetup:
        return CoreSetup(iraw=IrawConfig.disabled(), name=self.name)

    def area_overhead(self) -> float:
        return 0.0

    def characteristics(self) -> dict[str, object]:
        """Qualitative Table 1 row."""
        return {
            "works_for_all_sram_blocks": True,
            "adapts_to_multiple_vcc": True,
            "hardware_overhead": "none",
            "large_ipc_impact": False,
            "hard_to_test": False,
        }
