"""The *Faulty Bits* alternative of Table 1 (paper refs [1, 22, 26]).

Clock the SRAM arrays for a smaller variation margin (e.g. 4 sigma instead
of 6 sigma) so writes fit a shorter cycle, and **disable** every cache line
that contains a cell beyond that margin.  The paper's Table 1 critique,
which this module quantifies:

* **Does not work for all SRAM blocks** — the register file (and IQ) of an
  in-order core need every entry, so they still require the 6-sigma write
  margin: the honest core-level frequency gain is zero.  We also model the
  *hypothetical* variant that pretends every block could take faulty bits,
  to show the ceiling.
* **IPC impact** — disabled lines shrink the caches and raise miss rates.
* **Vcc adaptability** — a fault map is only valid for one Vcc; either the
  arrays are re-tested at every level change or one map per level is
  stored (we charge the storage for ``vcc_levels`` maps).
* **Testing** — disabled hardware differs per die, making lock-step
  multi-core test comparison nondeterministic (qualitative flag).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.circuits.frequency import ClockScheme, FrequencySolver, OperatingPoint
from repro.circuits.variation import VariationModel
from repro.core.config import IrawConfig
from repro.memory.cache import Cache
from repro.memory.hierarchy import MemorySystem
from repro.pipeline.core import CoreSetup


@dataclass
class FaultyBitsBaseline:
    """Reduced-sigma clocking with per-line disable."""

    solver: FrequencySolver
    design_sigma: float = 4.0
    #: Number of Vcc levels whose fault maps are stored on chip.
    vcc_levels: int = 13
    seed: int = 1
    name: str = "faulty-bits"

    def __post_init__(self) -> None:
        self.variation = VariationModel(self.solver.delay_model)
        reduced = self.variation.model_at_sigma(self.design_sigma)
        self._reduced_solver = FrequencySolver(reduced)

    # ------------------------------------------------------------------
    # Frequency
    # ------------------------------------------------------------------

    def operating_point(self, vcc_mv: float,
                        hypothetical_all_blocks: bool = False
                        ) -> OperatingPoint:
        """Core clock under Faulty Bits.

        The honest variant is register-file-bound: the RF cannot disable
        entries, so the cycle still fits a 6-sigma write and the clock is
        the paper's baseline.  The hypothetical variant clocks for the
        reduced margin everywhere.
        """
        if hypothetical_all_blocks:
            return self._reduced_solver.operating_point(
                vcc_mv, ClockScheme.BASELINE)
        return self.solver.operating_point(vcc_mv, ClockScheme.BASELINE)

    def combined_with_iraw_point(self, vcc_mv: float) -> OperatingPoint:
        """Extension (paper Section 4.4, last paragraph): IRAW avoidance
        *and* faulty bits combined.

        IRAW removes the full-write constraint everywhere; additionally
        designing the interrupted-write flip path for the reduced sigma
        margin (disabling the weak lines in the caches) shortens the IRAW
        phase further.  Returns the resulting operating point.
        """
        return self._reduced_solver.operating_point(vcc_mv, ClockScheme.IRAW)

    # ------------------------------------------------------------------
    # Cache degradation
    # ------------------------------------------------------------------

    def line_failure_probability(self, bits_per_line: int) -> float:
        return self.variation.line_failure_probability(
            self.design_sigma, bits_per_line)

    def _disabled_ways(self, num_sets: int, assoc: int,
                       bits_per_line: int, rng: random.Random) -> list[int]:
        p_line = self.line_failure_probability(bits_per_line)
        disabled = []
        for _ in range(num_sets):
            failed = sum(1 for _ in range(assoc) if rng.random() < p_line)
            disabled.append(failed)
        return disabled

    def apply_to_memory(self, memory: MemorySystem) -> dict[str, float]:
        """Replace the caches with disabled-way versions.

        Returns the fraction of lines disabled per cache (for reports).
        """
        rng = random.Random(self.seed)
        report: dict[str, float] = {}
        for attr in ("il0", "dl0", "ul1"):
            old: Cache = getattr(memory, attr)
            bits_per_line = old.line_size * 8 + 30  # data + tag/state
            disabled = self._disabled_ways(old.num_sets, old.associativity,
                                           bits_per_line, rng)
            replacement = Cache(old.name, old.size_bytes, old.associativity,
                                old.line_size, old.hit_latency,
                                disabled_ways=disabled)
            setattr(memory, attr, replacement)
            total_lines = old.num_sets * old.associativity
            report[old.name] = sum(disabled) / total_lines
        return report

    # ------------------------------------------------------------------
    # Costs and characteristics
    # ------------------------------------------------------------------

    def core_setup(self, vcc_mv: float) -> CoreSetup:
        return CoreSetup(iraw=IrawConfig.disabled(), name=self.name)

    def fault_map_bits(self) -> int:
        """Fault-map storage: one bit per line per supported Vcc level."""
        lines = (32 * 1024 // 64) + (24 * 1024 // 64) + (512 * 1024 // 64)
        return lines * self.vcc_levels

    def area_overhead(self, core_transistors: int = 47_000_000) -> float:
        """Fault maps as SRAM bits over the core (paper-style accounting)."""
        return self.fault_map_bits() * 8 / core_transistors

    def characteristics(self) -> dict[str, object]:
        return {
            "works_for_all_sram_blocks": False,
            "adapts_to_multiple_vcc": "costly (re-test or one map per level)",
            "hardware_overhead": "fault maps",
            "large_ipc_impact": True,
            "hard_to_test": True,
        }
