"""State-of-the-art comparators from the paper's Table 1."""

from repro.baselines.extra_bypass import ExtraBypassBaseline
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.baselines.freq_scaling import FrequencyScalingBaseline

__all__ = [
    "ExtraBypassBaseline",
    "FaultyBitsBaseline",
    "FrequencyScalingBaseline",
]
