"""Real-binary workloads: RV32I loader and architectural interpreter.

Runs compiled RV32I programs (flat images or little-endian ELF32
executables) to completion and emits the same
:class:`~repro.workloads.trace.Trace` format the synthetic generators
produce, so real binaries flow unchanged through sharding, caching and
all execution backends.  A program halts via ``ebreak`` or the RISC-V
Linux exit syscall (``ecall`` with a7 = 93); any other syscall is an
error — these are bare-metal fixtures, not a Linux emulator.

Correctness is pinned by the per-instruction state trace: :func:`state_trace`
yields one :class:`StepState` per retired instruction (pc, word, register
write, memory effect, next pc) and :func:`diff_state_traces` names the
first divergent instruction when two runs disagree.  The golden fixtures
under ``tests/goldens/rv32i/`` and the hypothesis differential suite both
drive this interface.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import TraceError
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode
from repro.isa.rv32i import (
    WORD_MASK,
    IllegalInstruction,
    Instruction,
    decode,
    disassemble,
)
from repro.workloads.trace import Trace

#: Default initial stack pointer (grows down; above any fixture image).
DEFAULT_STACK_TOP = 0x0010_0000

#: Safety valve: refuse to run away on a diverging binary.
DEFAULT_MAX_INSTRUCTIONS = 1_000_000

#: RISC-V Linux syscall number for exit; the only syscall we honor.
EXIT_SYSCALL = 93

_ELF_MAGIC = b"\x7fELF"
_EM_RISCV = 243


@dataclass(frozen=True)
class RiscvProgram:
    """A compiled RV32I program plus its initial architectural state.

    The raw image bytes are embedded (not a path), so engine job keys —
    which hash every spec field — derive from a sha256 of the program
    contents plus the entry state, and queue workers never need access
    to the original file.
    """

    name: str
    data: bytes
    entry: int | None = None
    sp: int | None = None
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS

    def __post_init__(self) -> None:
        if not self.name:
            raise TraceError("riscv program needs a non-empty name")
        if not isinstance(self.data, bytes) or not self.data:
            raise TraceError(f"riscv program {self.name!r}: empty image")
        if self.max_instructions < 1:
            raise TraceError(
                f"riscv program {self.name!r}: max_instructions must be >= 1"
            )

    @property
    def sha256(self) -> str:
        return hashlib.sha256(self.data).hexdigest()

    @classmethod
    def from_file(cls, path: str | Path, name: str | None = None,
                  **overrides) -> RiscvProgram:
        """Load a flat ``.bin`` or ELF image from disk."""
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise TraceError(f"cannot read riscv program {path}: {exc}") from exc
        return cls(name=name or path.stem, data=data, **overrides)


@dataclass
class LoadedImage:
    """Byte-addressed initial memory plus the entry pc."""

    memory: dict[int, int] = field(default_factory=dict)
    entry: int = 0


def load_image(data: bytes) -> LoadedImage:
    """Place ``data`` in memory: ELF32 by magic, else flat at address 0."""
    if data[:4] == _ELF_MAGIC:
        return _load_elf(data)
    return LoadedImage(memory=dict(enumerate(data)), entry=0)


def _load_elf(data: bytes) -> LoadedImage:
    if len(data) < 52:
        raise TraceError("ELF image truncated (header)")
    if data[4] != 1:
        raise TraceError("only ELF32 images are supported")
    if data[5] != 1:
        raise TraceError("only little-endian ELF images are supported")
    machine = int.from_bytes(data[18:20], "little")
    if machine != _EM_RISCV:
        raise TraceError(f"ELF machine {machine} is not RISC-V ({_EM_RISCV})")
    entry = int.from_bytes(data[24:28], "little")
    phoff = int.from_bytes(data[28:32], "little")
    phentsize = int.from_bytes(data[42:44], "little")
    phnum = int.from_bytes(data[44:46], "little")
    if phnum and phentsize < 32:
        raise TraceError(f"ELF program-header entries too small ({phentsize})")
    memory: dict[int, int] = {}
    for index in range(phnum):
        header = data[phoff + index * phentsize:][:32]
        if len(header) < 32:
            raise TraceError(f"ELF program header {index} truncated")
        p_type = int.from_bytes(header[0:4], "little")
        if p_type != 1:  # PT_LOAD
            continue
        p_offset = int.from_bytes(header[4:8], "little")
        p_vaddr = int.from_bytes(header[8:12], "little")
        p_filesz = int.from_bytes(header[16:20], "little")
        p_memsz = int.from_bytes(header[20:24], "little")
        segment = data[p_offset:p_offset + p_filesz]
        if len(segment) < p_filesz:
            raise TraceError(f"ELF segment {index} extends past end of file")
        for offset, byte in enumerate(segment):
            memory[p_vaddr + offset] = byte
        for offset in range(p_filesz, p_memsz):  # BSS tail
            memory[p_vaddr + offset] = 0
    return LoadedImage(memory=memory, entry=entry)


@dataclass(frozen=True)
class StepState:
    """Architectural effect of one retired instruction.

    ``rd`` is ``None`` when the instruction writes no register (stores,
    branches, writes to the hardwired-zero ``x0``); ``mem_value`` is set
    only for stores (the bytes written, after size masking); ``next_pc``
    is ``None`` on the halting instruction.  This is exactly the record
    serialized into the golden state traces.
    """

    index: int
    pc: int
    word: int
    asm: str
    rd: int | None
    rd_value: int | None
    mem_addr: int | None
    mem_value: int | None
    next_pc: int | None

    _FIELDS = ("index", "pc", "word", "asm", "rd", "rd_value",
               "mem_addr", "mem_value", "next_pc")

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}

    @classmethod
    def from_dict(cls, data: dict) -> StepState:
        return cls(**{name: data.get(name) for name in cls._FIELDS})


def _signed(value: int) -> int:
    return value - 0x1_0000_0000 if value & 0x8000_0000 else value


#: rd <- f(a, b): shared by register-register and immediate forms (the
#: immediate is sign-extended to a 32-bit unsigned operand first).
_ALU = {
    "add": lambda a, b: (a + b) & WORD_MASK,
    "sub": lambda a, b: (a - b) & WORD_MASK,
    "sll": lambda a, b: (a << (b & 31)) & WORD_MASK,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (_signed(a) >> (b & 31)) & WORD_MASK,
    "slt": lambda a, b: int(_signed(a) < _signed(b)),
    "sltu": lambda a, b: int(a < b),
    "xor": lambda a, b: a ^ b,
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
}

_ALU_IMM = {"addi": "add", "slti": "slt", "sltiu": "sltu", "xori": "xor",
            "ori": "or", "andi": "and", "slli": "sll", "srli": "srl",
            "srai": "sra"}

_BRANCH = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}

#: (size in bytes, sign-extend) per load mnemonic.
_LOADS = {"lb": (1, True), "lh": (2, True), "lw": (4, False),
          "lbu": (1, False), "lhu": (2, False)}

_STORES = {"sb": 1, "sh": 2, "sw": 4}


class Rv32iMachine:
    """Architectural RV32I state machine driven one instruction at a time."""

    def __init__(self, program: RiscvProgram):
        image = load_image(program.data)
        self.program = program
        self.memory = dict(image.memory)
        self.regs = [0] * 32
        self.regs[2] = (program.sp if program.sp is not None
                        else DEFAULT_STACK_TOP) & WORD_MASK
        self.pc = (program.entry if program.entry is not None
                   else image.entry) & WORD_MASK
        self.steps = 0
        self.halted = False
        self.exit_code: int | None = None

    def _read(self, addr: int, size: int) -> int:
        mem = self.memory
        return int.from_bytes(
            bytes(mem.get((addr + i) & WORD_MASK, 0) for i in range(size)),
            "little",
        )

    def _write(self, addr: int, value: int, size: int) -> None:
        for i in range(size):
            self.memory[(addr + i) & WORD_MASK] = (value >> (8 * i)) & 0xFF

    def step(self) -> tuple[Instruction, StepState] | None:
        """Retire one instruction; ``None`` if already halted."""
        if self.halted:
            return None
        name = self.program.name
        if self.steps >= self.program.max_instructions:
            raise TraceError(
                f"riscv program {name!r}: exceeded "
                f"{self.program.max_instructions} instructions"
            )
        pc = self.pc
        if pc % 4:
            raise TraceError(f"riscv program {name!r}: misaligned pc {pc:#x}")
        word = self._read(pc, 4)
        try:
            instr = decode(word)
        except IllegalInstruction as exc:
            raise IllegalInstruction(
                f"riscv program {name!r}: pc {pc:#x}: {exc}"
            ) from exc

        m = instr.mnemonic
        regs = self.regs
        a = regs[instr.rs1]
        b = regs[instr.rs2]
        imm = instr.imm
        next_pc: int | None = (pc + 4) & WORD_MASK
        rd_value: int | None = None
        mem_addr: int | None = None
        mem_value: int | None = None

        if m in _ALU:
            rd_value = _ALU[m](a, b)
        elif m in _ALU_IMM:
            rd_value = _ALU[_ALU_IMM[m]](a, imm & WORD_MASK)
        elif m == "lui":
            rd_value = (imm << 12) & WORD_MASK
        elif m == "auipc":
            rd_value = (pc + (imm << 12)) & WORD_MASK
        elif m == "jal":
            rd_value = (pc + 4) & WORD_MASK
            next_pc = (pc + imm) & WORD_MASK
        elif m == "jalr":
            rd_value = (pc + 4) & WORD_MASK
            next_pc = (a + imm) & WORD_MASK & ~1
        elif m in _BRANCH:
            if _BRANCH[m](a, b):
                next_pc = (pc + imm) & WORD_MASK
        elif m in _LOADS:
            size, sign = _LOADS[m]
            mem_addr = (a + imm) & WORD_MASK
            value = self._read(mem_addr, size)
            if sign and value & (1 << (8 * size - 1)):
                value -= 1 << (8 * size)
            rd_value = value & WORD_MASK
        elif m in _STORES:
            size = _STORES[m]
            mem_addr = (a + imm) & WORD_MASK
            mem_value = b & ((1 << (8 * size)) - 1)
            self._write(mem_addr, mem_value, size)
        elif m == "fence":
            pass
        elif m == "ebreak":
            self.halted = True
            next_pc = None
        elif m == "ecall":
            syscall = regs[17]
            if syscall != EXIT_SYSCALL:
                raise TraceError(
                    f"riscv program {name!r}: pc {pc:#x}: "
                    f"unsupported syscall {syscall}"
                )
            self.halted = True
            self.exit_code = regs[10]
            next_pc = None
        else:  # pragma: no cover - every mnemonic is handled above
            raise TraceError(f"unhandled mnemonic {m!r}")

        rd: int | None = None
        if rd_value is not None and instr.rd != 0:
            rd = instr.rd
            regs[rd] = rd_value
        if rd is None:
            rd_value = None
        if next_pc is not None:
            self.pc = next_pc
        self.steps += 1
        record = StepState(
            index=self.steps - 1, pc=pc, word=word, asm=disassemble(instr),
            rd=rd, rd_value=rd_value, mem_addr=mem_addr,
            mem_value=mem_value, next_pc=next_pc,
        )
        return instr, record


def state_trace(program: RiscvProgram) -> Iterator[StepState]:
    """Yield the per-instruction architectural state trace of ``program``."""
    machine = Rv32iMachine(program)
    while not machine.halted:
        stepped = machine.step()
        assert stepped is not None
        yield stepped[1]


#: RV32I mnemonic -> mini-ISA micro-opcode for the pipeline model.
_ALU_MICRO = {
    "add": Opcode.ADD, "addi": Opcode.ADD, "sub": Opcode.SUB,
    "and": Opcode.AND, "andi": Opcode.AND, "or": Opcode.OR,
    "ori": Opcode.OR, "xor": Opcode.XOR, "xori": Opcode.XOR,
    "sll": Opcode.SHL, "slli": Opcode.SHL, "srl": Opcode.SHR,
    "srli": Opcode.SHR, "sra": Opcode.SHR, "srai": Opcode.SHR,
    "slt": Opcode.CMPLT, "slti": Opcode.CMPLT, "sltu": Opcode.CMPLT,
    "sltiu": Opcode.CMPLT, "lui": Opcode.LI, "auipc": Opcode.LI,
}

_BRANCH_MICRO = {"beq": Opcode.BEQ, "bne": Opcode.BNE, "blt": Opcode.BLT,
                 "bge": Opcode.BGE, "bltu": Opcode.BLT, "bgeu": Opcode.BGE}

#: ABI link registers: jumps writing these are calls, jumps returning
#: through them are returns (the standard RISC-V return-address-stack hint).
_LINK_REGS = (1, 5)


def _micro_op(index: int, instr: Instruction, record: StepState) -> MicroOp | None:
    """Map one retired RV32I instruction onto the pipeline's micro-op ISA.

    Writes to ``x0`` become ``dest=None`` (the mini ISA has no hardwired
    zero register); micro-ops carry no golden values — RV32I correctness
    is pinned by the state-trace harness, not the 64-bit datapath checks.
    """
    m = instr.mnemonic
    pc = record.pc
    dest = record.rd
    if m in _ALU_MICRO:
        srcs: tuple[int, ...] = ()
        if m in ("lui", "auipc"):
            srcs = ()
        elif instr.format == "r":
            srcs = (instr.rs1, instr.rs2)
        else:
            srcs = (instr.rs1,)
        return MicroOp(index, _ALU_MICRO[m], dest=dest, srcs=srcs,
                       imm=instr.imm, pc=pc)
    if m in _LOADS:
        return MicroOp(index, Opcode.LD, dest=dest, srcs=(instr.rs1,),
                       imm=instr.imm, pc=pc, mem_addr=record.mem_addr)
    if m in _STORES:
        return MicroOp(index, Opcode.ST, srcs=(instr.rs2, instr.rs1),
                       imm=instr.imm, pc=pc, mem_addr=record.mem_addr)
    if m in _BRANCH_MICRO:
        target = (pc + instr.imm) & WORD_MASK
        taken = record.next_pc == target and record.next_pc != (pc + 4) & WORD_MASK
        return MicroOp(index, _BRANCH_MICRO[m], srcs=(instr.rs1, instr.rs2),
                       pc=pc, taken=taken, target=target)
    if m == "jal":
        opcode = Opcode.CALL if instr.rd in _LINK_REGS else Opcode.JMP
        return MicroOp(index, opcode, pc=pc, taken=True, target=record.next_pc)
    if m == "jalr":
        if instr.rd == 0 and instr.rs1 in _LINK_REGS:
            opcode = Opcode.RET
        elif instr.rd in _LINK_REGS:
            opcode = Opcode.CALL
        else:
            opcode = Opcode.JMP
        return MicroOp(index, opcode, srcs=(instr.rs1,), pc=pc,
                       taken=True, target=record.next_pc)
    if m == "fence":
        return MicroOp(index, Opcode.NOP, pc=pc)
    # ecall/ebreak: the halting instruction is not part of the trace,
    # mirroring how the mini-ISA interpreter drops HALT.
    return None


def run_riscv_program(program: RiscvProgram,
                      trace_name: str | None = None) -> tuple[Trace, Rv32iMachine]:
    """Execute ``program`` to completion; return (trace, final machine).

    Raises
    ------
    TraceError
        If the program exceeds its instruction budget, executes an
        illegal instruction, or makes an unsupported syscall.
    """
    machine = Rv32iMachine(program)
    ops: list[MicroOp] = []
    while not machine.halted:
        stepped = machine.step()
        assert stepped is not None
        instr, record = stepped
        op = _micro_op(len(ops), instr, record)
        if op is not None:
            ops.append(op)
    trace = Trace(
        name=trace_name or program.name,
        ops=ops,
        source="riscv",
        metadata={
            "program_sha256": program.sha256,
            "instructions_executed": machine.steps,
            "exit_code": machine.exit_code,
        },
    )
    return trace, machine


@dataclass(frozen=True)
class StateDivergence:
    """First point where two state traces disagree."""

    index: int
    field: str
    expected: object
    actual: object
    asm: str

    def __str__(self) -> str:
        return (
            f"first divergence at instruction #{self.index} ({self.asm}): "
            f"{self.field} expected {self.expected!r}, got {self.actual!r}"
        )


def diff_state_traces(expected: Iterable[StepState],
                      actual: Iterable[StepState]) -> StateDivergence | None:
    """Compare two state traces; return the first divergence, or ``None``.

    Comparison is per-instruction and per-field, so a decode or
    semantics bug is reported at the exact instruction that first
    diverged rather than as a blanket mismatch.
    """
    expected = list(expected)
    actual = list(actual)
    for index, (want, got) in enumerate(zip(expected, actual)):
        want_d, got_d = want.to_dict(), got.to_dict()
        for name in StepState._FIELDS:
            if want_d[name] != got_d[name]:
                return StateDivergence(index=index, field=name,
                                       expected=want_d[name],
                                       actual=got_d[name], asm=want.asm)
    if len(expected) != len(actual):
        index = min(len(expected), len(actual))
        return StateDivergence(index=index, field="length",
                               expected=len(expected), actual=len(actual),
                               asm="<end of trace>")
    return None


__all__ = [
    "DEFAULT_MAX_INSTRUCTIONS",
    "DEFAULT_STACK_TOP",
    "EXIT_SYSCALL",
    "LoadedImage",
    "RiscvProgram",
    "Rv32iMachine",
    "StateDivergence",
    "StepState",
    "diff_state_traces",
    "load_image",
    "run_riscv_program",
    "state_trace",
]
