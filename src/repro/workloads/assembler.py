"""A small two-pass assembler for the mini ISA.

Syntax (one instruction per line, ``;`` starts a comment)::

    start:
        li    r1, 100          ; r1 = 100
        add   r2, r1, r3       ; r2 = r1 + r3
        add   r2, r1, 5        ; immediate second operand
        ld    r4, r1, 8        ; r4 = mem64[r1 + 8]
        st    r4, r1, 16       ; mem64[r1 + 16] = r4
        beq   r1, r2, start
        call  helper
        halt

Labels resolve to instruction addresses (4 bytes apart, base 0x1000).
The output is a :class:`Program` consumed by the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblyError
from repro.isa.opcodes import OPCODE_CLASS, Opcode
from repro.isa.registers import parse_register

#: Address of the first instruction.
CODE_BASE = 0x1000


@dataclass(frozen=True)
class StaticInstruction:
    """One assembled instruction."""

    pc: int
    opcode: Opcode
    dest: int | None = None
    srcs: tuple[int, ...] = ()
    imm: int = 0
    target_pc: int | None = None

    @property
    def opclass(self):
        return OPCODE_CLASS[self.opcode]


@dataclass
class Program:
    """An assembled program: instructions indexed by pc."""

    instructions: list[StaticInstruction]
    labels: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def at(self, pc: int) -> StaticInstruction:
        index = (pc - CODE_BASE) // 4
        if not 0 <= index < len(self.instructions):
            raise AssemblyError(f"pc {pc:#x} outside program")
        return self.instructions[index]

    @property
    def entry_pc(self) -> int:
        return CODE_BASE


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [token.strip() for token in rest.split(",")]


def _parse_value(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblyError(f"bad immediate {token!r}") from exc


def _is_register(token: str) -> bool:
    try:
        parse_register(token)
        return True
    except Exception:
        return False


def assemble(source: str) -> Program:
    """Assemble ``source`` text into a :class:`Program`.

    Raises
    ------
    AssemblyError
        On unknown mnemonics, malformed operands or undefined labels.
    """
    # Pass 1: collect labels and raw instruction lines.
    lines: list[tuple[int, str]] = []
    labels: dict[str, int] = {}
    for raw_number, raw in enumerate(source.splitlines(), start=1):
        text = raw.split(";", 1)[0].strip()
        if not text:
            continue
        while ":" in text:
            label, _, text = text.partition(":")
            label = label.strip()
            if not label.isidentifier():
                raise AssemblyError(f"line {raw_number}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {raw_number}: duplicate label {label!r}")
            labels[label] = CODE_BASE + len(lines) * 4
            text = text.strip()
        if text:
            lines.append((raw_number, text))

    # Pass 2: encode instructions.
    instructions: list[StaticInstruction] = []
    for position, (line_number, text) in enumerate(lines):
        pc = CODE_BASE + position * 4
        mnemonic, _, rest = text.partition(" ")
        try:
            opcode = Opcode(mnemonic.lower())
        except ValueError as exc:
            raise AssemblyError(
                f"line {line_number}: unknown mnemonic {mnemonic!r}"
            ) from exc
        operands = _split_operands(rest)
        try:
            instructions.append(_encode(pc, opcode, operands, labels))
        except AssemblyError as exc:
            raise AssemblyError(f"line {line_number}: {exc}") from exc
    return Program(instructions=instructions, labels=labels)


def _encode(pc: int, opcode: Opcode, operands: list[str],
            labels: dict[str, int]) -> StaticInstruction:
    def label_pc(token: str) -> int:
        if token not in labels:
            raise AssemblyError(f"undefined label {token!r}")
        return labels[token]

    def expect(count: int) -> None:
        if len(operands) != count:
            raise AssemblyError(
                f"{opcode.value} expects {count} operands, got {len(operands)}"
            )

    if opcode in (Opcode.NOP, Opcode.HALT, Opcode.RET):
        expect(0)
        return StaticInstruction(pc, opcode)
    if opcode is Opcode.LI:
        expect(2)
        return StaticInstruction(pc, opcode, dest=parse_register(operands[0]),
                                 imm=_parse_value(operands[1]))
    if opcode is Opcode.MOV:
        expect(2)
        return StaticInstruction(pc, opcode, dest=parse_register(operands[0]),
                                 srcs=(parse_register(operands[1]),))
    if opcode in (Opcode.SHL, Opcode.SHR):
        expect(3)
        return StaticInstruction(pc, opcode, dest=parse_register(operands[0]),
                                 srcs=(parse_register(operands[1]),),
                                 imm=_parse_value(operands[2]))
    if opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
                  Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.CMPLT,
                  Opcode.CMPEQ, Opcode.FADD, Opcode.FMUL, Opcode.FDIV):
        expect(3)
        dest = parse_register(operands[0])
        src1 = parse_register(operands[1])
        if _is_register(operands[2]):
            return StaticInstruction(pc, opcode, dest=dest,
                                     srcs=(src1, parse_register(operands[2])))
        return StaticInstruction(pc, opcode, dest=dest, srcs=(src1,),
                                 imm=_parse_value(operands[2]))
    if opcode is Opcode.LD:
        expect(3)
        return StaticInstruction(pc, opcode, dest=parse_register(operands[0]),
                                 srcs=(parse_register(operands[1]),),
                                 imm=_parse_value(operands[2]))
    if opcode is Opcode.ST:
        expect(3)
        return StaticInstruction(pc, opcode,
                                 srcs=(parse_register(operands[0]),
                                       parse_register(operands[1])),
                                 imm=_parse_value(operands[2]))
    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        expect(3)
        return StaticInstruction(pc, opcode,
                                 srcs=(parse_register(operands[0]),
                                       parse_register(operands[1])),
                                 target_pc=label_pc(operands[2]))
    if opcode is Opcode.JMP:
        expect(1)
        return StaticInstruction(pc, opcode, target_pc=label_pc(operands[0]))
    if opcode is Opcode.CALL:
        expect(1)
        return StaticInstruction(pc, opcode, target_pc=label_pc(operands[0]))
    raise AssemblyError(f"unhandled opcode {opcode}")
