"""Dynamic-trace container and summary statistics.

A :class:`Trace` is the unit of workload the pipeline consumes: an ordered
list of :class:`~repro.isa.instructions.MicroOp` plus provenance metadata.
The paper drives its evaluation from 531 proprietary traces of 10 M
instructions each; our substitute traces are generated (synthetically or by
the kernel interpreter) but are consumed through exactly the same interface.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import OpClass


@dataclass
class Trace:
    """An ordered dynamic instruction stream.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"specint-like/seed3"``).
    ops:
        The dynamic micro-ops, ``ops[i].index == i``.
    source:
        Provenance: ``"synthetic"``, ``"interpreter"`` or ``"riscv"``.
    metadata:
        Free-form generator parameters (seed, profile name, ...).
    """

    name: str
    ops: list[MicroOp]
    source: str = "synthetic"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        for position, op in enumerate(self.ops):
            if op.index != position:
                raise TraceError(
                    f"trace {self.name!r}: op at position {position} "
                    f"has index {op.index}"
                )

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def class_mix(self) -> dict[OpClass, float]:
        """Fraction of dynamic instructions per operation class."""
        if not self.ops:
            return {}
        counts = Counter(op.opclass for op in self.ops)
        total = len(self.ops)
        return {cls: count / total for cls, count in counts.items()}

    def branch_count(self) -> int:
        return sum(1 for op in self.ops if op.is_control)

    def memory_op_count(self) -> int:
        return sum(1 for op in self.ops if op.is_load or op.is_store)

    def has_golden_values(self) -> bool:
        """True if the trace carries interpreter golden values."""
        return any(op.golden_result is not None for op in self.ops)

    def summary(self) -> dict[str, float]:
        """One-line description used by reports and examples."""
        total = max(1, len(self.ops))
        return {
            "instructions": len(self.ops),
            "branch_fraction": self.branch_count() / total,
            "memory_fraction": self.memory_op_count() / total,
        }
