"""Synthetic dynamic-trace generator.

The generator builds a **static program skeleton** (functions, loops, basic
blocks with fixed per-slot operation classes) and then *walks* it to emit a
dynamic trace.  This two-level approach is what makes the traces behave
like real programs at the microarchitectural level:

* the same static pcs recur across loop iterations, so the branch predictor
  and the return stack see learnable patterns;
* loop-exit branches mispredict roughly once per loop, while a profile-
  controlled fraction of "noisy" data-dependent branches mispredicts often;
* register dependency distances follow a geometric distribution around the
  profile's knob — the lever that controls how many instructions fall into
  the IRAW stabilization bubble (the paper's 13.2%);
* memory references walk sequential streams or jump randomly inside the
  working set, and a profile-controlled fraction of stores is paired with
  a nearby load to the same line (STable full match) or same cache set
  (STable set-only match, the replay path of Figure 10).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import OpClass, Opcode
from repro.workloads.profiles import TraceProfile
from repro.workloads.trace import Trace

#: Destination pool: r1..r24 round-robin (r25+ reserved for conventions).
_DEST_POOL = tuple(range(1, 25))
#: How many recent destinations are remembered for dependency sampling.
_RECENT_WINDOW = 48
#: DL0 geometry used to build set-aliasing streams (24 KB, 6-way, 64 B).
_DL0_SET_STRIDE = 64 * 64  # sets x line size
_LINE = 64

_CLASS_OPCODES = {
    OpClass.INT_ALU: (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR,
                      Opcode.XOR, Opcode.SHL, Opcode.CMPLT),
    OpClass.INT_MUL: (Opcode.MUL,),
    OpClass.INT_DIV: (Opcode.DIV,),
    OpClass.FP_ADD: (Opcode.FADD,),
    OpClass.FP_MUL: (Opcode.FMUL,),
    OpClass.FP_DIV: (Opcode.FDIV,),
    OpClass.LOAD: (Opcode.LD,),
    OpClass.STORE: (Opcode.ST,),
}


#: Random streams draw from a small "hot" window with this probability,
#: giving them the temporal locality of real pointer-heavy code; the
#: window drifts periodically so the footprint is still exercised.
_HOT_PROBABILITY = 0.85
_HOT_SPAN = 4096
_HOT_DRIFT_PERIOD = 256


@dataclass
class _Stream:
    """One memory access stream inside the working set."""

    base: int
    span: int
    sequential: bool
    position: int = 0
    hot_base: int = 0
    accesses: int = 0

    def next_address(self, rng: random.Random) -> int:
        if self.sequential:
            addr = self.base + self.position
            self.position = (self.position + 8) % self.span
            return addr
        self.accesses += 1
        hot_span = min(_HOT_SPAN, self.span)
        if self.accesses % _HOT_DRIFT_PERIOD == 0:
            self.hot_base = rng.randrange(max(1, self.span - hot_span))
        if rng.random() < _HOT_PROBABILITY:
            word = rng.randrange(hot_span // 8)
            return self.base + self.hot_base + word * 8
        word = rng.randrange(self.span // 8)
        return self.base + word * 8


@dataclass
class _Slot:
    """A static instruction slot inside a basic block."""

    opcode: Opcode
    opclass: OpClass
    pc: int
    stream: int | None = None
    uses_imm: bool = False
    #: For paired store->load aliasing: offset the load by this many bytes
    #: from the previous store's address (0 = same line full match,
    #: _DL0_SET_STRIDE multiple = same set, different line).
    alias_with_store: int | None = None


@dataclass
class _Block:
    """A static basic block plus its terminator."""

    pc: int
    slots: list[_Slot]
    #: terminator: one of "loop", "cond", "call", "ret", "none"
    kind: str = "none"
    branch_pc: int = 0
    target_pc: int = 0
    callee: int | None = None


@dataclass
class _Function:
    blocks: list[_Block] = field(default_factory=list)


class SyntheticTraceGenerator:
    """Generates reproducible dynamic traces from a :class:`TraceProfile`."""

    def __init__(self, profile: TraceProfile, seed: int = 0):
        self._profile = profile
        self._seed = seed
        # zlib.crc32 rather than hash(): the latter is salted per process
        # and would make traces irreproducible across runs.
        name_hash = zlib.crc32(profile.name.encode()) & 0xFFFF
        self._rng = random.Random((seed << 16) ^ name_hash)
        self._next_pc = 0x1000
        self._streams = self._build_streams()
        self._functions = [self._build_function() for _ in
                           range(profile.function_count)]
        self._segments = [self._build_segment() for _ in
                          range(profile.main_segment_count)]

    # ------------------------------------------------------------------
    # Static skeleton construction
    # ------------------------------------------------------------------

    def _alloc_pc(self, count: int) -> int:
        base = self._next_pc
        self._next_pc += count * 4 + 32  # gap between blocks
        return base

    def _build_streams(self) -> list[_Stream]:
        profile = self._profile
        total = profile.working_set_kb * 1024
        span = max(_LINE * 4, total // profile.stream_count)
        streams = []
        for i in range(profile.stream_count):
            sequential = self._rng.random() < profile.spatial_fraction
            # Sequential streams re-walk a bounded array (real loops reuse
            # their data), random streams roam their full partition with
            # a drifting hot window.
            stream_span = min(span, 16 * 1024) if sequential else span
            streams.append(_Stream(base=i * span, span=stream_span,
                                   sequential=sequential))
        return streams

    def _sample_class(self) -> OpClass:
        p = self._profile
        classes = (OpClass.INT_ALU, OpClass.INT_MUL, OpClass.INT_DIV,
                   OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
                   OpClass.LOAD, OpClass.STORE)
        weights = (p.alu_weight, p.mul_weight, p.div_weight,
                   p.fp_add_weight, p.fp_mul_weight, p.fp_div_weight,
                   p.load_weight, p.store_weight)
        return self._rng.choices(classes, weights)[0]

    def _build_block(self, size: int | None = None) -> _Block:
        profile = self._profile
        rng = self._rng
        if size is None:
            mean = profile.mean_block_size
            size = max(2, int(rng.gauss(mean, mean / 3)))
        pc = self._alloc_pc(size + 1)
        slots: list[_Slot] = []
        last_store_slot: int | None = None
        for i in range(size):
            opclass = self._sample_class()
            opcode = rng.choice(_CLASS_OPCODES[opclass])
            slot = _Slot(opcode=opcode, opclass=opclass, pc=pc + i * 4)
            if opclass in (OpClass.LOAD, OpClass.STORE):
                slot.stream = rng.randrange(len(self._streams))
                if opclass is OpClass.STORE:
                    last_store_slot = i
                elif (last_store_slot is not None
                      and i - last_store_slot <= 2
                      and rng.random() < profile.store_load_alias_fraction):
                    # Pair this load with the recent store: half the pairs
                    # hit the same line (full match), half the same set
                    # (set-only match -> STable replay).
                    same_line = rng.random() < 0.5
                    slot.alias_with_store = 0 if same_line else _DL0_SET_STRIDE
            elif opclass is OpClass.INT_ALU:
                slot.uses_imm = rng.random() < profile.imm_operand_fraction
            slots.append(slot)
        return _Block(pc=pc, slots=slots, branch_pc=pc + size * 4)

    def _build_function(self) -> _Function:
        blocks = [self._build_block() for _ in
                  range(self._rng.randint(1, 3))]
        blocks[-1].kind = "ret"
        return _Function(blocks=blocks)

    def _build_segment(self) -> list[_Block]:
        """One main-routine loop: body blocks plus a backedge terminator."""
        profile = self._profile
        rng = self._rng
        body_count = rng.randint(1, 3)
        blocks = [self._build_block() for _ in range(body_count)]
        rbf = profile.random_branch_fraction
        cond_prob = min(0.9, rbf / max(1e-6, (1.0 - rbf)) / body_count)
        for block in blocks[:-1]:
            roll = rng.random()
            if roll < cond_prob:
                block.kind = "cond"
            elif roll < cond_prob + profile.call_fraction:
                block.kind = "call"
                block.callee = rng.randrange(len(self._functions))
        blocks[-1].kind = "loop"
        blocks[-1].target_pc = blocks[0].pc
        # Single-block loops have no pre-loop slot for a call terminator,
        # so the loop block itself may call before its backedge.
        if rng.random() < profile.call_fraction * len(blocks):
            blocks[-1].callee = rng.randrange(len(self._functions))
        return blocks

    # ------------------------------------------------------------------
    # Dynamic walk
    # ------------------------------------------------------------------

    def generate(self, length: int, name: str | None = None) -> Trace:
        """Emit a dynamic trace of approximately ``length`` micro-ops."""
        if length <= 0:
            raise ConfigError(f"trace length must be positive, got {length}")
        profile = self._profile
        rng = self._rng
        ops: list[MicroOp] = []
        recent_dests: list[int] = []
        dest_cursor = 0
        last_store_addr: int | None = None

        def emit_slot(slot: _Slot) -> None:
            nonlocal dest_cursor, last_store_addr
            index = len(ops)
            srcs: list[int] = []
            if slot.opclass in (OpClass.LOAD, OpClass.STORE):
                srcs.append(_sample_dep(rng, recent_dests, profile))
                if slot.opclass is OpClass.STORE:
                    srcs.append(_sample_dep(rng, recent_dests, profile))
                stream = self._streams[slot.stream]
                if (slot.alias_with_store is not None
                        and last_store_addr is not None):
                    addr = last_store_addr + slot.alias_with_store
                else:
                    addr = stream.next_address(rng)
                addr &= ~7
                if slot.opclass is OpClass.STORE:
                    last_store_addr = addr
                    ops.append(MicroOp(index, slot.opcode, srcs=tuple(srcs),
                                       pc=slot.pc, mem_addr=addr))
                    return
                dest = _DEST_POOL[dest_cursor % len(_DEST_POOL)]
                dest_cursor += 1
                recent_dests.append(dest)
                if len(recent_dests) > _RECENT_WINDOW:
                    recent_dests.pop(0)
                ops.append(MicroOp(index, slot.opcode, dest=dest,
                                   srcs=tuple(srcs), pc=slot.pc,
                                   mem_addr=addr))
                return
            # Arithmetic: one or two register sources.
            srcs.append(_sample_dep(rng, recent_dests, profile))
            if not slot.uses_imm and slot.opcode not in (Opcode.MOV, Opcode.LI,
                                                         Opcode.SHL, Opcode.SHR):
                srcs.append(_sample_dep(rng, recent_dests, profile))
            dest = _DEST_POOL[dest_cursor % len(_DEST_POOL)]
            dest_cursor += 1
            recent_dests.append(dest)
            if len(recent_dests) > _RECENT_WINDOW:
                recent_dests.pop(0)
            ops.append(MicroOp(index, slot.opcode, dest=dest,
                               srcs=tuple(srcs), pc=slot.pc,
                               imm=rng.randrange(256)))

        def emit_branch(opcode: Opcode, pc: int, taken: bool,
                        target: int) -> None:
            index = len(ops)
            srcs = ()
            if opcode in (Opcode.BNE, Opcode.BEQ, Opcode.BLT, Opcode.BGE):
                srcs = (_sample_dep(rng, recent_dests, profile),)
            ops.append(MicroOp(index, opcode, srcs=srcs, pc=pc,
                               taken=taken, target=target))

        def walk_function(fn: _Function) -> None:
            for block in fn.blocks:
                if len(ops) >= length:
                    return
                for slot in block.slots:
                    if len(ops) >= length:
                        return
                    emit_slot(slot)
                if block.kind == "ret":
                    ops.append(MicroOp(len(ops), Opcode.RET,
                                       pc=block.branch_pc, taken=True))

        segment_index = 0
        while len(ops) < length:
            segment = self._segments[segment_index % len(self._segments)]
            segment_index += 1
            trips = 1 + min(500, int(rng.expovariate(
                1.0 / max(1.0, profile.mean_loop_trips))))
            for trip in range(trips):
                if len(ops) >= length:
                    break
                block_idx = 0
                while block_idx < len(segment):
                    block = segment[block_idx]
                    if len(ops) >= length:
                        break
                    for slot in block.slots:
                        if len(ops) >= length:
                            break
                        emit_slot(slot)
                    if block.kind == "cond":
                        taken = rng.random() < profile.noisy_taken_bias
                        skip_to = segment[min(block_idx + 2,
                                              len(segment) - 1)].pc
                        emit_branch(Opcode.BNE, block.branch_pc, taken,
                                    skip_to)
                        block_idx += 2 if taken else 1
                        continue
                    if block.kind == "call":
                        ops.append(MicroOp(len(ops), Opcode.CALL,
                                           pc=block.branch_pc, taken=True,
                                           target=self._functions[
                                               block.callee].blocks[0].pc))
                        walk_function(self._functions[block.callee])
                        block_idx += 1
                        continue
                    if block.kind == "loop":
                        if block.callee is not None and len(ops) < length:
                            ops.append(MicroOp(len(ops), Opcode.CALL,
                                               pc=block.branch_pc - 4,
                                               taken=True,
                                               target=self._functions[
                                                   block.callee].blocks[0].pc))
                            walk_function(self._functions[block.callee])
                        taken = trip < trips - 1
                        emit_branch(Opcode.BNE, block.branch_pc, taken,
                                    block.target_pc)
                    block_idx += 1

        ops = ops[:length]
        trace_name = name or f"{profile.name}/seed{self._seed}"
        return Trace(name=trace_name, ops=ops, source="synthetic",
                     metadata={"profile": profile.name, "seed": self._seed,
                               "length": length})


def _sample_dep(rng: random.Random, recent_dests: list[int],
                profile: TraceProfile) -> int:
    """Pick a source register at a geometric dependency distance."""
    if not recent_dests:
        return rng.randrange(25, 29)
    distance = 1
    while (distance < len(recent_dests)
           and rng.random() > profile.dep_distance_geom_p):
        distance += 1
    return recent_dests[-distance]


def generate_population(profiles, seeds: int, length: int) -> list[Trace]:
    """Build the evaluation trace population (profiles x seeds)."""
    traces = []
    for profile in profiles:
        for seed in range(seeds):
            generator = SyntheticTraceGenerator(profile, seed=seed)
            traces.append(generator.generate(length))
    return traces
