"""Workload generation: synthetic trace profiles and real mini-kernels."""

from repro.workloads.assembler import Program, StaticInstruction, assemble
from repro.workloads.interpreter import ArchState, run_program
from repro.workloads.kernels import (
    KERNEL_BUILDERS,
    KernelSpec,
    build_kernel,
    kernel_trace,
)
from repro.workloads.profiles import (
    KERNEL_LIKE,
    MULTIMEDIA_LIKE,
    OFFICE_LIKE,
    PROFILES_BY_NAME,
    SERVER_LIKE,
    SPECFP_LIKE,
    SPECINT_LIKE,
    STANDARD_PROFILES,
    TraceProfile,
)
from repro.workloads.riscv import (
    RiscvProgram,
    Rv32iMachine,
    StepState,
    diff_state_traces,
    run_riscv_program,
    state_trace,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, generate_population
from repro.workloads.traceio import load_trace, save_trace
from repro.workloads.trace import Trace

__all__ = [
    "ArchState",
    "KERNEL_BUILDERS",
    "KERNEL_LIKE",
    "KernelSpec",
    "MULTIMEDIA_LIKE",
    "OFFICE_LIKE",
    "PROFILES_BY_NAME",
    "Program",
    "RiscvProgram",
    "Rv32iMachine",
    "SERVER_LIKE",
    "SPECFP_LIKE",
    "SPECINT_LIKE",
    "STANDARD_PROFILES",
    "StaticInstruction",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceProfile",
    "StepState",
    "assemble",
    "build_kernel",
    "diff_state_traces",
    "generate_population",
    "kernel_trace",
    "load_trace",
    "run_program",
    "run_riscv_program",
    "save_trace",
    "state_trace",
]
