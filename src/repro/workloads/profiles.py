"""Workload profiles emulating the paper's trace mix.

The paper evaluates on 531 traces "obtained from different wide variety of
programs (Spec2006, Spec2000, kernels, multimedia, office, server,
workstation, etc.)" — all proprietary.  We substitute six parameterized
profile families whose first-order characteristics (instruction mix,
dependency distances, branch behaviour, memory footprint and locality)
span the same space.  Each profile can be instantiated with any number of
seeds to build a trace population.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class TraceProfile:
    """Knobs of the synthetic trace generator.

    The defaults are deliberately mid-of-road; the named profiles below
    override them per workload family.
    """

    name: str = "default"
    description: str = ""
    #: Relative weights of non-control, non-memory operation classes.
    alu_weight: float = 10.0
    mul_weight: float = 1.0
    div_weight: float = 0.1
    fp_add_weight: float = 0.0
    fp_mul_weight: float = 0.0
    fp_div_weight: float = 0.0
    #: Memory operation weights (relative to the same scale).
    load_weight: float = 4.0
    store_weight: float = 1.5
    #: Average instructions per basic block (sets branch density).
    mean_block_size: float = 7.0
    #: Fraction of conditional branches that are data-dependent noise
    #: (poorly predictable) rather than loop exits (highly predictable).
    random_branch_fraction: float = 0.10
    #: Taken bias of the noisy branches.
    noisy_taken_bias: float = 0.5
    #: Mean trip count of loops (loop-exit branches mispredict ~1/trips).
    mean_loop_trips: float = 12.0
    #: Probability a block ends in a call to a small function.
    call_fraction: float = 0.03
    #: Geometric parameter of register dependency distance; the mean
    #: producer-consumer distance in dynamic instructions is ~1/p.
    dep_distance_geom_p: float = 0.35
    #: Fraction of ALU source operands folded into immediates (no register
    #: dependency).
    imm_operand_fraction: float = 0.40
    #: Data working-set size in KiB (drives DL0/UL1 miss rates).
    working_set_kb: int = 256
    #: Fraction of memory references that walk sequential streams.
    spatial_fraction: float = 0.75
    #: Number of concurrent access streams.
    stream_count: int = 8
    #: Fraction of streams that a store stream *aliases* (same DL0 set)
    #: to exercise the STable set-match path.
    store_load_alias_fraction: float = 0.25
    #: Number of distinct static functions in the program skeleton.
    function_count: int = 4
    #: Static code footprint scaling (blocks in the main routine).
    main_segment_count: int = 10

    def __post_init__(self) -> None:
        weights = (self.alu_weight, self.mul_weight, self.div_weight,
                   self.fp_add_weight, self.fp_mul_weight,
                   self.fp_div_weight, self.load_weight, self.store_weight)
        if all(w <= 0 for w in weights):
            raise ConfigError(f"profile {self.name!r}: no positive op weights")
        if any(w < 0 for w in weights):
            raise ConfigError(f"profile {self.name!r}: negative op weight")
        if not 0 < self.dep_distance_geom_p <= 1:
            raise ConfigError(
                f"profile {self.name!r}: dep_distance_geom_p must be in (0, 1]"
            )
        if self.mean_block_size < 2:
            raise ConfigError(f"profile {self.name!r}: blocks too small")
        if self.working_set_kb <= 0:
            raise ConfigError(f"profile {self.name!r}: working set must be positive")


SPECINT_LIKE = TraceProfile(
    name="specint-like",
    description="Integer-heavy, short dependencies, moderate branchiness",
    alu_weight=11.0, mul_weight=0.8, div_weight=0.08,
    load_weight=4.5, store_weight=1.8,
    mean_block_size=6.0, random_branch_fraction=0.07,
    dep_distance_geom_p=0.24, mean_loop_trips=16.0, working_set_kb=256,
    spatial_fraction=0.65, stream_count=10,
)

SPECFP_LIKE = TraceProfile(
    name="specfp-like",
    description="FP loops, long latencies, streaming memory, few branches",
    alu_weight=5.0, mul_weight=0.5, div_weight=0.02,
    fp_add_weight=4.0, fp_mul_weight=3.5, fp_div_weight=0.1,
    load_weight=5.5, store_weight=2.0,
    mean_block_size=11.0, random_branch_fraction=0.03,
    mean_loop_trips=40.0, dep_distance_geom_p=0.16,
    working_set_kb=2048, spatial_fraction=0.9, stream_count=6,
)

MULTIMEDIA_LIKE = TraceProfile(
    name="multimedia-like",
    description="Kernel loops with multiplies and dense streaming",
    alu_weight=8.0, mul_weight=3.0, div_weight=0.02,
    load_weight=5.0, store_weight=2.5,
    mean_block_size=9.0, random_branch_fraction=0.04,
    mean_loop_trips=32.0, dep_distance_geom_p=0.20,
    working_set_kb=512, spatial_fraction=0.92, stream_count=4,
)

OFFICE_LIKE = TraceProfile(
    name="office-like",
    description="Branchy control-flow code with mixed locality",
    alu_weight=10.0, mul_weight=0.5, div_weight=0.05,
    load_weight=5.0, store_weight=2.2,
    mean_block_size=4.5, random_branch_fraction=0.12,
    mean_loop_trips=10.0, call_fraction=0.08,
    dep_distance_geom_p=0.27, working_set_kb=512,
    spatial_fraction=0.55, stream_count=12,
)

SERVER_LIKE = TraceProfile(
    name="server-like",
    description="Large footprint, pointer-chasing, cache-hostile",
    alu_weight=9.0, mul_weight=0.6, div_weight=0.05,
    load_weight=6.0, store_weight=2.0,
    mean_block_size=5.5, random_branch_fraction=0.10,
    mean_loop_trips=12.0, call_fraction=0.06,
    dep_distance_geom_p=0.26, working_set_kb=4096,
    spatial_fraction=0.35, stream_count=16,
)

KERNEL_LIKE = TraceProfile(
    name="kernel-like",
    description="Tight copy/fill loops, store-heavy, tiny footprint",
    alu_weight=6.0, mul_weight=0.3, div_weight=0.01,
    load_weight=5.0, store_weight=4.0,
    mean_block_size=8.0, random_branch_fraction=0.02,
    mean_loop_trips=64.0, dep_distance_geom_p=0.30,
    working_set_kb=64, spatial_fraction=0.95, stream_count=3,
    store_load_alias_fraction=0.4,
)

#: The default evaluation population (one family each, multiple seeds are
#: applied by the harness).
STANDARD_PROFILES: tuple[TraceProfile, ...] = (
    SPECINT_LIKE,
    SPECFP_LIKE,
    MULTIMEDIA_LIKE,
    OFFICE_LIKE,
    SERVER_LIKE,
    KERNEL_LIKE,
)

PROFILES_BY_NAME: dict[str, TraceProfile] = {p.name: p for p in STANDARD_PROFILES}
