"""Trace serialization: save and reload dynamic traces as JSON lines.

The paper's methodology is trace-driven; being able to persist a trace
(synthetic or interpreter-generated, including golden values) makes runs
reproducible across machines and lets users bring their own traces.

Format: one JSON object per line.  The first line is a header with
``{"trace": name, "source": ..., "metadata": {...}}``; every following
line is one micro-op with only its non-default fields.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import TraceError
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import Opcode
from repro.workloads.trace import Trace

_FORMAT_VERSION = 1


def _op_to_record(op: MicroOp) -> dict:
    record: dict = {"o": op.opcode.value}
    if op.dest is not None:
        record["d"] = op.dest
    if op.srcs:
        record["s"] = list(op.srcs)
    if op.imm:
        record["i"] = op.imm
    if op.pc:
        record["p"] = op.pc
    if op.mem_addr is not None:
        record["a"] = op.mem_addr
    if op.taken:
        record["t"] = 1
    if op.target is not None:
        record["g"] = op.target
    if op.golden_result is not None:
        record["r"] = op.golden_result
    if op.store_value is not None:
        record["v"] = op.store_value
    return record


def _record_to_op(index: int, record: dict) -> MicroOp:
    try:
        opcode = Opcode(record["o"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"line {index + 2}: bad opcode record") from exc
    return MicroOp(
        index=index,
        opcode=opcode,
        dest=record.get("d"),
        srcs=tuple(record.get("s", ())),
        imm=record.get("i", 0),
        pc=record.get("p", 0),
        mem_addr=record.get("a"),
        taken=bool(record.get("t", 0)),
        target=record.get("g"),
        golden_result=record.get("r"),
        store_value=record.get("v"),
    )


def save_trace(trace: Trace, path: str | Path) -> None:
    """Write ``trace`` to ``path`` in JSON-lines format."""
    path = Path(path)
    metadata = {key: value for key, value in trace.metadata.items()
                if _json_safe(value)}
    header = {"format": _FORMAT_VERSION, "trace": trace.name,
              "source": trace.source, "metadata": metadata}
    with path.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for op in trace.ops:
            handle.write(json.dumps(_op_to_record(op)) + "\n")


def load_trace(path: str | Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(path)
    with path.open() as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceError(f"{path}: bad header line") from exc
    if header.get("format") != _FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported format {header.get('format')!r}")
    ops = []
    for index, line in enumerate(lines[1:]):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:{index + 2}: bad op record") from exc
        ops.append(_record_to_op(len(ops), record))
    metadata = header.get("metadata", {})
    # JSON stringifies integer dict keys; restore the known int-keyed maps.
    for key in ("initial_registers", "initial_memory"):
        if key in metadata and isinstance(metadata[key], dict):
            metadata[key] = {int(k): v for k, v in metadata[key].items()}
    return Trace(name=header.get("trace", path.stem), ops=ops,
                 source=header.get("source", "file"), metadata=metadata)


def _json_safe(value) -> bool:
    try:
        json.dumps(value)
        return True
    except TypeError:
        return False
