"""Functional interpreter: the golden model for assembled kernels.

Executes a :class:`~repro.workloads.assembler.Program` architecturally and
emits a dynamic :class:`~repro.workloads.trace.Trace` whose micro-ops carry
the functionally correct result of every instruction (``golden_result`` /
``store_value``).  The pipeline model re-computes the same values through
its modeled register file, bypass network, STable and cache datapath; any
divergence means a correctness bug — in particular, a read that slipped
into an IRAW stabilization window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.isa.instructions import MicroOp
from repro.isa.opcodes import OpClass, Opcode
from repro.isa.registers import NUM_REGISTERS
from repro.isa.semantics import alu_result, branch_taken, wrap64
from repro.workloads.assembler import Program, StaticInstruction
from repro.workloads.trace import Trace

#: Safety valve: refuse to run away on a diverging kernel.
DEFAULT_MAX_INSTRUCTIONS = 2_000_000


@dataclass
class ArchState:
    """Architectural end-state of a kernel execution."""

    registers: list[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    memory: dict[int, int] = field(default_factory=dict)

    def read_mem(self, address: int) -> int:
        return self.memory.get(address & ~7, 0)

    def write_mem(self, address: int, value: int) -> None:
        self.memory[address & ~7] = wrap64(value)


def run_program(program: Program, initial_memory: dict[int, int] | None = None,
                initial_registers: dict[int, int] | None = None,
                max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
                trace_name: str = "kernel") -> tuple[Trace, ArchState]:
    """Execute ``program`` and return (dynamic trace, final state).

    Raises
    ------
    TraceError
        If the program exceeds ``max_instructions`` (diverging kernel) or
        underflows its call stack.
    """
    state = ArchState()
    if initial_memory:
        for address, value in initial_memory.items():
            state.write_mem(address, value)
    if initial_registers:
        for reg, value in initial_registers.items():
            state.registers[reg] = wrap64(value)

    ops: list[MicroOp] = []
    call_stack: list[int] = []
    pc = program.entry_pc

    while True:
        if len(ops) >= max_instructions:
            raise TraceError(
                f"{trace_name}: exceeded {max_instructions} instructions"
            )
        inst = program.at(pc)
        op, next_pc = _step(state, inst, call_stack, len(ops))
        if op is not None:
            ops.append(op)
        if next_pc is None:  # HALT
            break
        pc = next_pc

    trace = Trace(name=trace_name, ops=ops, source="interpreter",
                  metadata={"program_length": len(program)})
    return trace, state


def _step(state: ArchState, inst: StaticInstruction, call_stack: list[int],
          index: int) -> tuple[MicroOp | None, int | None]:
    """Execute one instruction; return (micro-op, next pc or None on halt)."""
    regs = state.registers
    opcode = inst.opcode
    fallthrough = inst.pc + 4

    if opcode is Opcode.HALT:
        return None, None
    if opcode is Opcode.NOP:
        return MicroOp(index, opcode, pc=inst.pc), fallthrough

    if inst.opclass is OpClass.LOAD:
        base = regs[inst.srcs[0]]
        address = wrap64(base + inst.imm) & ~7
        value = state.read_mem(address)
        regs[inst.dest] = value
        op = MicroOp(index, opcode, dest=inst.dest, srcs=inst.srcs,
                     imm=inst.imm, pc=inst.pc, mem_addr=address,
                     golden_result=value)
        return op, fallthrough

    if inst.opclass is OpClass.STORE:
        value = regs[inst.srcs[0]]
        base = regs[inst.srcs[1]]
        address = wrap64(base + inst.imm) & ~7
        state.write_mem(address, value)
        op = MicroOp(index, opcode, srcs=inst.srcs, imm=inst.imm,
                     pc=inst.pc, mem_addr=address, store_value=wrap64(value))
        return op, fallthrough

    if opcode in (Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE):
        a = regs[inst.srcs[0]]
        b = regs[inst.srcs[1]]
        taken = branch_taken(opcode, a, b)
        op = MicroOp(index, opcode, srcs=inst.srcs, pc=inst.pc,
                     taken=taken, target=inst.target_pc)
        return op, inst.target_pc if taken else fallthrough

    if opcode is Opcode.JMP:
        op = MicroOp(index, opcode, pc=inst.pc, taken=True,
                     target=inst.target_pc)
        return op, inst.target_pc

    if opcode is Opcode.CALL:
        call_stack.append(fallthrough)
        op = MicroOp(index, opcode, pc=inst.pc, taken=True,
                     target=inst.target_pc)
        return op, inst.target_pc

    if opcode is Opcode.RET:
        if not call_stack:
            raise TraceError(f"pc {inst.pc:#x}: RET with empty call stack")
        return_pc = call_stack.pop()
        op = MicroOp(index, opcode, pc=inst.pc, taken=True, target=return_pc)
        return op, return_pc

    # Plain ALU / FP instruction.
    a = regs[inst.srcs[0]] if inst.srcs else 0
    b = regs[inst.srcs[1]] if len(inst.srcs) > 1 else inst.imm
    if opcode in (Opcode.LI, Opcode.SHL, Opcode.SHR):
        b = 0  # these consume the immediate via alu_result's imm argument
    result = alu_result(opcode, a, b, inst.imm)
    regs[inst.dest] = result
    op = MicroOp(index, opcode, dest=inst.dest, srcs=inst.srcs,
                 imm=inst.imm, pc=inst.pc, golden_result=result)
    return op, fallthrough
