"""Real mini-kernels for golden-model correctness and focused stress tests.

Each kernel is a small assembly program with a builder that sets up its
input memory/registers.  :func:`kernel_trace` assembles, interprets and
returns a dynamic trace carrying golden values, ready for the pipeline.

The kernels map to the paper's workload motivations:

* ``fib`` — serial dependency chain (register-file IRAW stress);
* ``memcpy`` — store-heavy streaming (kernel-class traces);
* ``dot`` / ``matmul`` — multiply/accumulate loops (multimedia/FP-class);
* ``pointer_chase`` — load-latency bound (server-class);
* ``strfind`` / ``sort`` — data-dependent branches (office-class);
* ``store_forward`` — immediate load-after-store (STable full-match path);
* ``calls`` — dense call/return pairs (RSB stress, paper Section 4.5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import TraceError
from repro.workloads.assembler import Program, assemble
from repro.workloads.interpreter import ArchState, run_program
from repro.workloads.trace import Trace

#: Where kernels store their scalar result (r28 by convention).
RESULT_ADDRESS = 0x8000_0000


@dataclass
class KernelSpec:
    """A ready-to-run kernel: program plus initial machine state."""

    name: str
    program: Program
    description: str
    initial_memory: dict[int, int] = field(default_factory=dict)
    initial_registers: dict[int, int] = field(default_factory=dict)

    def run(self) -> tuple[Trace, ArchState]:
        """Interpret the kernel; trace metadata carries the initial state."""
        trace, state = run_program(
            self.program,
            initial_memory=self.initial_memory,
            initial_registers=self.initial_registers,
            trace_name=self.name,
        )
        trace.metadata["initial_registers"] = dict(self.initial_registers)
        trace.metadata["initial_memory"] = dict(self.initial_memory)
        return trace, state


def _fib(size: int) -> KernelSpec:
    source = """
        li r1, {n}
        li r2, 0
        li r3, 1
    loop:
        add r4, r2, r3
        mov r2, r3
        mov r3, r4
        sub r1, r1, 1
        bne r1, r0, loop
        st r3, r28, 0
        halt
    """.format(n=max(1, size))
    return KernelSpec("fib", assemble(source),
                      "iterative Fibonacci (serial dependency chain)",
                      initial_registers={28: RESULT_ADDRESS})


def _memcpy(size: int) -> KernelSpec:
    src_base, dst_base = 0x10000, 0x40000
    words = max(1, size)
    memory = {src_base + 8 * i: (i * 2654435761) & 0xFFFFFFFF
              for i in range(words)}
    source = """
        li r1, {n}
        li r2, {src}
        li r3, {dst}
    loop:
        ld r4, r2, 0
        st r4, r3, 0
        add r2, r2, 8
        add r3, r3, 8
        sub r1, r1, 1
        bne r1, r0, loop
        halt
    """.format(n=words, src=src_base, dst=dst_base)
    return KernelSpec("memcpy", assemble(source),
                      "word-by-word copy (store-heavy streaming)",
                      initial_memory=memory)


def _dot(size: int) -> KernelSpec:
    a_base, b_base = 0x10000, 0x80000
    words = max(1, size)
    memory = {}
    for i in range(words):
        memory[a_base + 8 * i] = (i + 1) & 0xFFFF
        memory[b_base + 8 * i] = (2 * i + 3) & 0xFFFF
    source = """
        li r1, {n}
        li r2, {a}
        li r3, {b}
        li r5, 0
    loop:
        ld r6, r2, 0
        ld r7, r3, 0
        mul r8, r6, r7
        add r5, r5, r8
        add r2, r2, 8
        add r3, r3, 8
        sub r1, r1, 1
        bne r1, r0, loop
        st r5, r28, 0
        halt
    """.format(n=words, a=a_base, b=b_base)
    return KernelSpec("dot", assemble(source),
                      "dot product (load + multiply-accumulate loop)",
                      initial_memory=memory,
                      initial_registers={28: RESULT_ADDRESS})


def _matmul(size: int) -> KernelSpec:
    n = max(2, min(size, 16))
    a_base, b_base, c_base = 0x10000, 0x20000, 0x30000
    memory = {}
    for i in range(n * n):
        memory[a_base + 8 * i] = (i % 7) + 1
        memory[b_base + 8 * i] = (i % 5) + 1
    source = """
        li r1, 0
    iloop:
        li r2, 0
    jloop:
        li r8, 0
        li r3, 0
    kloop:
        mul r9, r1, r7
        add r9, r9, r3
        shl r9, r9, 3
        add r9, r9, r4
        ld r10, r9, 0
        mul r11, r3, r7
        add r11, r11, r2
        shl r11, r11, 3
        add r11, r11, r5
        ld r12, r11, 0
        mul r13, r10, r12
        add r8, r8, r13
        add r3, r3, 1
        bne r3, r7, kloop
        mul r14, r1, r7
        add r14, r14, r2
        shl r14, r14, 3
        add r14, r14, r6
        st r8, r14, 0
        add r2, r2, 1
        bne r2, r7, jloop
        add r1, r1, 1
        bne r1, r7, iloop
        halt
    """
    return KernelSpec("matmul", assemble(source),
                      f"dense {n}x{n} matrix multiply (nested loops)",
                      initial_memory=memory,
                      initial_registers={4: a_base, 5: b_base,
                                         6: c_base, 7: n})


def _pointer_chase(size: int) -> KernelSpec:
    nodes = max(2, size)
    base = 0x100000
    # Build a single Hamiltonian cycle so an N-hop walk visits every node
    # exactly once (a plain shuffled successor array would decompose into
    # smaller cycles and revisit nodes).
    rng = random.Random(42)
    order = list(range(nodes))
    rng.shuffle(order)
    memory = {}
    addr_of = [base + 16 * i for i in range(nodes)]
    for position, node in enumerate(order):
        successor = order[(position + 1) % nodes]
        memory[addr_of[node]] = addr_of[successor]
        memory[addr_of[node] + 8] = (node * 31 + 7) & 0xFFFF
    source = """
        li r1, {head}
        li r5, 0
        li r2, {n}
    loop:
        ld r3, r1, 8
        add r5, r5, r3
        ld r1, r1, 0
        sub r2, r2, 1
        bne r2, r0, loop
        st r5, r28, 0
        halt
    """.format(head=addr_of[order[0]], n=nodes)
    return KernelSpec("pointer_chase", assemble(source),
                      "linked-list walk (serial load dependence)",
                      initial_memory=memory,
                      initial_registers={28: RESULT_ADDRESS})


def _strfind(size: int) -> KernelSpec:
    base = 0x10000
    words = max(4, size)
    key_position = words * 3 // 4
    memory = {base + 8 * i: (i * 13 + 1) & 0xFFFF for i in range(words)}
    key = memory[base + 8 * key_position]
    source = """
        li r1, {arr}
        li r2, {n}
        li r3, {key}
        li r6, -1
        li r5, 0
    loop:
        ld r4, r1, 0
        beq r4, r3, found
        add r1, r1, 8
        add r5, r5, 1
        bne r5, r2, loop
        jmp done
    found:
        mov r6, r5
    done:
        st r6, r28, 0
        halt
    """.format(arr=base, n=words, key=key)
    return KernelSpec("strfind", assemble(source),
                      "linear search with early exit (branchy)",
                      initial_memory=memory,
                      initial_registers={28: RESULT_ADDRESS})


def _store_forward(size: int) -> KernelSpec:
    buf = 0x10000
    iterations = max(1, size)
    source = """
        li r1, {n}
        li r2, {buf}
        li r5, 1
    loop:
        st r5, r2, 0
        ld r6, r2, 0
        add r5, r6, 1
        add r2, r2, 8
        sub r1, r1, 1
        bne r1, r0, loop
        st r5, r28, 0
        halt
    """.format(n=iterations, buf=buf)
    return KernelSpec("store_forward", assemble(source),
                      "immediate load-after-store (STable forwarding path)",
                      initial_registers={28: RESULT_ADDRESS})


def _sort(size: int) -> KernelSpec:
    base = 0x10000
    words = max(2, min(size, 256))
    rng = random.Random(7)
    memory = {base + 8 * i: rng.randrange(1 << 16) for i in range(words)}
    source = """
        li r1, 1
    outer:
        mul r2, r1, 8
        add r2, r2, r10
        ld r3, r2, 0
        mov r4, r1
    inner:
        beq r4, r0, insert
        mul r5, r4, 8
        add r5, r5, r10
        ld r6, r5, -8
        blt r6, r3, insert
        st r6, r5, 0
        sub r4, r4, 1
        jmp inner
    insert:
        mul r7, r4, 8
        add r7, r7, r10
        st r3, r7, 0
        add r1, r1, 1
        bne r1, r11, outer
        halt
    """
    return KernelSpec("sort", assemble(source),
                      "insertion sort (data-dependent branches and swaps)",
                      initial_memory=memory,
                      initial_registers={10: base, 11: words})


def _calls(size: int) -> KernelSpec:
    source = """
        li r1, {n}
    loop:
        call f1
        sub r1, r1, 1
        bne r1, r0, loop
        st r20, r28, 0
        halt
    f1:
        add r20, r20, 1
        call f2
        ret
    f2:
        add r21, r21, 2
        ret
    """.format(n=max(1, size))
    return KernelSpec("calls", assemble(source),
                      "nested call/return pairs (RSB stress)",
                      initial_registers={28: RESULT_ADDRESS})


def _crc(size: int) -> KernelSpec:
    """Shift/xor mixing loop: serial single-register dependency chain."""
    words = max(1, size)
    base = 0x10000
    memory = {base + 8 * i: (i * 0x9E37 + 0x79B9) & 0xFFFF
              for i in range(words)}
    source = """
        li r1, {arr}
        li r2, {n}
        li r5, 0xFFFF
    loop:
        ld r3, r1, 0
        xor r5, r5, r3
        shl r6, r5, 3
        shr r7, r5, 5
        xor r5, r6, r7
        add r1, r1, 8
        sub r2, r2, 1
        bne r2, r0, loop
        st r5, r28, 0
        halt
    """.format(arr=base, n=words)
    return KernelSpec("crc", assemble(source),
                      "shift/xor mixing loop (serial ALU chain)",
                      initial_memory=memory,
                      initial_registers={28: RESULT_ADDRESS})


def _histogram(size: int) -> KernelSpec:
    """Data-dependent scattered stores: bin[x & 15] += 1."""
    words = max(1, size)
    data_base, bins_base = 0x10000, 0x20000
    memory = {data_base + 8 * i: (i * 7 + 3) & 0xFFFF for i in range(words)}
    source = """
        li r1, {data}
        li r2, {n}
        li r4, {bins}
    loop:
        ld r3, r1, 0
        and r5, r3, 15
        shl r5, r5, 3
        add r6, r5, r4
        ld r7, r6, 0
        add r7, r7, 1
        st r7, r6, 0
        add r1, r1, 8
        sub r2, r2, 1
        bne r2, r0, loop
        halt
    """.format(data=data_base, n=words, bins=bins_base)
    return KernelSpec("histogram", assemble(source),
                      "16-bin histogram (read-modify-write stores)",
                      initial_memory=memory)


def _stack(size: int) -> KernelSpec:
    """Push N values then pop them back: store->load stack discipline."""
    depth = max(1, size)
    source = """
        li sp, 0x70000
        li r1, {n}
        li r5, 0
    push:
        add r5, r5, 3
        st r5, sp, 0
        add sp, sp, 8
        sub r1, r1, 1
        bne r1, r0, push
        li r1, {n}
        li r6, 0
    pop:
        sub sp, sp, 8
        ld r7, sp, 0
        add r6, r6, r7
        sub r1, r1, 1
        bne r1, r0, pop
        st r6, r28, 0
        halt
    """.format(n=depth)
    return KernelSpec("stack", assemble(source),
                      "push/pop stack walk (LIFO store->load reuse)",
                      initial_registers={28: RESULT_ADDRESS})


def _binsearch(size: int) -> KernelSpec:
    """Repeated binary searches: data-dependent branches and loads."""
    words = max(4, size)
    base = 0x10000
    memory = {base + 8 * i: 3 * i for i in range(words)}  # sorted keys
    searches = min(16, words)
    source = """
        li r20, 0
        li r21, {searches}
    outer:
        mul r3, r20, 5
        li r1, 0
        li r2, {n}
    search:
        add r4, r1, r2
        shr r4, r4, 1
        shl r5, r4, 3
        add r5, r5, r22
        ld r6, r5, 0
        beq r6, r3, found
        blt r6, r3, go_right
        mov r2, r4
        jmp check
    go_right:
        add r1, r4, 1
    check:
        blt r1, r2, search
        jmp next
    found:
        add r23, r23, 1
    next:
        add r20, r20, 1
        bne r20, r21, outer
        st r23, r28, 0
        halt
    """.format(n=words, searches=searches)
    return KernelSpec("binsearch", assemble(source),
                      "repeated binary search (unpredictable branches)",
                      initial_memory=memory,
                      initial_registers={22: base, 28: RESULT_ADDRESS})


KERNEL_BUILDERS = {
    "fib": _fib,
    "memcpy": _memcpy,
    "dot": _dot,
    "matmul": _matmul,
    "pointer_chase": _pointer_chase,
    "strfind": _strfind,
    "store_forward": _store_forward,
    "sort": _sort,
    "calls": _calls,
    "crc": _crc,
    "histogram": _histogram,
    "stack": _stack,
    "binsearch": _binsearch,
}


def build_kernel(name: str, size: int = 64) -> KernelSpec:
    """Instantiate a kernel by name with a problem size."""
    if name not in KERNEL_BUILDERS:
        raise TraceError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_BUILDERS)}"
        )
    return KERNEL_BUILDERS[name](size)


def kernel_trace(name: str, size: int = 64) -> tuple[Trace, ArchState]:
    """Assemble, interpret and return (golden trace, final state)."""
    return build_kernel(name, size).run()
