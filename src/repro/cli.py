"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``figures``   regenerate the paper's figures as ASCII tables
``compare``   baseline-vs-IRAW comparison at chosen Vcc levels
``simulate``  run one kernel or synthetic trace on the pipeline
``trace``     generate a synthetic trace and save it to a file
``kernels``   list the built-in kernels
``calibrate`` re-run the circuit-model fit and report the anchors
``cache``     inspect or clear the on-disk result cache

The simulation-backed subcommands (``figures``, ``compare``) run their
evaluation points through the experiment engine: every point is sharded
per trace, ``--workers N`` spreads the shards across N processes (``0``
= one per CPU) and completed shards persist in the on-disk result cache
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) unless ``--no-cache`` is
given.  ``$REPRO_CACHE_MAX_BYTES`` bounds the cache; ``cache --prune``
evicts least-recently-used entries beyond the bound and reclaims stale
code versions.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.figures import (
    figure1_series,
    figure11a_series,
    figure11b_series,
    figure12_series,
)
from repro.analysis.reporting import format_table
from repro.analysis.sweep import SweepSettings, VccSweep, warm_caches
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.engine import (
    ParallelRunner,
    ResultCache,
    TextProgress,
    add_engine_arguments,
    runner_from_args,
)
from repro.memory.hierarchy import MemoryConfig
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.workloads.kernels import KERNEL_BUILDERS, kernel_trace
from repro.workloads.profiles import PROFILES_BY_NAME
from repro.workloads.synthetic import SyntheticTraceGenerator
from repro.workloads.traceio import load_trace, save_trace


def _build_runner(args) -> ParallelRunner:
    """The engine configuration requested on the command line."""
    progress = TextProgress() if sys.stderr.isatty() else None
    return runner_from_args(args, progress=progress)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High-Performance Low-Vcc In-Order "
                    "Core' (HPCA 2010)")
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--artifact", default="circuit",
                         choices=["fig1", "fig11a", "fig11b", "fig12",
                                  "circuit", "all"],
                         help="'circuit' = fig1+fig11a (fast); 'all' "
                              "includes the simulated figures")
    figures.add_argument("--step", type=float, default=25.0)
    figures.add_argument("--length", type=int, default=6000)
    add_engine_arguments(figures)

    compare = sub.add_parser("compare", help="baseline vs IRAW at Vcc levels")
    compare.add_argument("--vcc", type=float, nargs="+",
                         default=[575.0, 500.0, 450.0, 400.0])
    compare.add_argument("--length", type=int, default=6000)
    add_engine_arguments(compare)

    simulate = sub.add_parser("simulate", help="run one workload")
    source = simulate.add_mutually_exclusive_group(required=True)
    source.add_argument("--kernel", choices=sorted(KERNEL_BUILDERS))
    source.add_argument("--profile", choices=sorted(PROFILES_BY_NAME))
    source.add_argument("--trace-file", help="JSON-lines trace file")
    simulate.add_argument("--size", type=int, default=32,
                          help="kernel problem size")
    simulate.add_argument("--length", type=int, default=6000,
                          help="synthetic trace length")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--vcc", type=float, default=500.0)
    simulate.add_argument("--scheme", default="iraw",
                          choices=["baseline", "iraw", "logic"])
    simulate.add_argument("--cold", action="store_true",
                          help="skip the cache warmup pass")

    trace = sub.add_parser("trace", help="generate and save a trace")
    trace.add_argument("--profile", required=True,
                       choices=sorted(PROFILES_BY_NAME))
    trace.add_argument("--length", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True)

    sub.add_parser("kernels", help="list built-in kernels")
    sub.add_parser("calibrate", help="re-fit the circuit model")

    cache = sub.add_parser("cache", help="inspect/clear the result cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every entry of the current code version")
    cache.add_argument("--prune", action="store_true",
                       help="delete entries from stale code versions and "
                            "evict least-recently-used entries beyond "
                            "$REPRO_CACHE_MAX_BYTES")
    return parser


def _cmd_figures(args) -> int:
    wanted = args.artifact
    if wanted in ("fig1", "circuit", "all"):
        print(format_table(figure1_series(step_mv=args.step),
                           title="Figure 1"))
        print()
    if wanted in ("fig11a", "circuit", "all"):
        print(format_table(figure11a_series(step_mv=args.step),
                           title="Figure 11(a)"))
        print()
    if wanted in ("fig11b", "fig12", "all"):
        sweep = VccSweep(SweepSettings(trace_length=args.length),
                         runner=_build_runner(args))
        if wanted in ("fig11b", "all"):
            print(format_table(figure11b_series(sweep, step_mv=args.step),
                               title="Figure 11(b)"))
            print()
        if wanted in ("fig12", "all"):
            print(format_table(figure12_series(sweep, step_mv=args.step),
                               title="Figure 12"))
    return 0


def _cmd_compare(args) -> int:
    sweep = VccSweep(SweepSettings(trace_length=args.length),
                     runner=_build_runner(args))
    sweep.prefetch_grid(args.vcc, label="compare")
    rows = [sweep.compare(vcc) for vcc in args.vcc]
    print(format_table(rows, title="IRAW vs baseline"))
    return 0


def _cmd_simulate(args) -> int:
    if args.kernel:
        trace, _ = kernel_trace(args.kernel, args.size)
    elif args.profile:
        generator = SyntheticTraceGenerator(PROFILES_BY_NAME[args.profile],
                                            seed=args.seed)
        trace = generator.generate(args.length)
    else:
        trace = load_trace(args.trace_file)

    solver = FrequencySolver()
    scheme = ClockScheme(args.scheme)
    point = solver.operating_point(args.vcc, scheme)
    iraw = (IrawConfig.for_operating_point(point)
            if scheme is ClockScheme.IRAW else IrawConfig.disabled())
    memory = MemoryConfig(
        dram_latency_cycles=point.memory_latency_cycles(80.0))
    core = InOrderCore(CoreSetup(iraw=iraw, memory=memory,
                                 name=f"{scheme.value}@{args.vcc:g}mV"))
    if not args.cold:
        warm_caches(core.memory, trace)
    result = core.run(trace)

    print(f"trace:        {trace.name} ({len(trace)} instructions)")
    print(f"operating at: {point.frequency_mhz:.1f} MHz "
          f"({scheme.value}, {args.vcc:g} mV, N={point.stabilization_cycles})")
    print(f"cycles:       {result.cycles}")
    print(f"IPC:          {result.ipc:.3f}")
    print(f"mispredicts:  {result.mispredict_rate:.3%}")
    print(f"IRAW delayed: {result.iraw_delay_fraction:.3%}")
    print(f"violations:   {result.iraw_violations}")
    if trace.has_golden_values():
        print(f"golden-value mismatches: {result.value_mismatches}")
    breakdown = result.stall_breakdown()
    if breakdown:
        print("stalls:", ", ".join(f"{name}={fraction:.1%}"
                                   for name, fraction in sorted(
                                       breakdown.items(),
                                       key=lambda kv: -kv[1])))
    return 0


def _cmd_trace(args) -> int:
    generator = SyntheticTraceGenerator(PROFILES_BY_NAME[args.profile],
                                        seed=args.seed)
    trace = generator.generate(args.length)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} instructions to {args.out}")
    return 0


def _cmd_kernels() -> int:
    from repro.workloads.kernels import build_kernel
    for name in sorted(KERNEL_BUILDERS):
        spec = build_kernel(name, 8)
        print(f"{name:15s} {spec.description}")
    return 0


def _cmd_calibrate() -> int:
    from repro.circuits.calibration import anchor_report, fit_model
    model = fit_model()
    rows = [{"anchor": a.name, "target": a.target, "achieved": a.achieved,
             "error": a.relative_error} for a in anchor_report(model)]
    print(format_table(rows, title="Calibration anchors"))
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache.default()
    if args.prune:
        removed = cache.prune_stale()
        print(f"pruned {removed} entries from stale code versions")
        evicted = cache.enforce_limit()
        for key, size in evicted:
            print(f"evicted {key} ({size} bytes)")
        if cache.max_bytes is not None:
            print(f"evicted {len(evicted)} entries over the "
                  f"{cache.max_bytes}-byte bound")
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries")
    bound = (f"{cache.max_bytes} bytes" if cache.max_bytes is not None
             else "unbounded")
    print(f"cache root:    {cache.root}")
    print(f"code version:  {cache.version_dir.name}")
    print(f"entries:       {cache.entry_count()}")
    print(f"size:          {cache.total_bytes()} bytes (bound: {bound})")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "kernels":
        return _cmd_kernels()
    if args.command == "calibrate":
        return _cmd_calibrate()
    if args.command == "cache":
        return _cmd_cache(args)
    return 1  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
