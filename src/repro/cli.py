"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands
-----------
``run``       execute a declarative experiment spec file (TOML/JSON)
``figures``   regenerate the paper's figures as ASCII tables
``compare``   baseline-vs-IRAW comparison at chosen Vcc levels
``mc``        Monte-Carlo die sampling: yield and Vccmin distributions
``simulate``  run one kernel or synthetic trace on the pipeline
``trace``     generate a synthetic trace; ``trace report`` summarizes
              a ``--trace-out`` telemetry span file
``kernels``   list the built-in kernels
``calibrate`` re-run the circuit-model fit and report the anchors
``cache``     inspect or clear the on-disk result cache (``--stats``
              for a read-only usage/hit-rate report)
``queue``     inspect a queue spool / garbage-collect stale versions
``worker``    run a queue-backend worker against a spool directory
``serve``     run the always-on HTTP/JSON experiment service
``submit``    POST a spec file to a running service
``status``    report a served campaign's state
``results``   stream/export a served campaign's result rows

``repro run experiment.toml`` is the declarative front end: the spec
file names a trace population, a Vcc grid, clock schemes, ablations,
DVFS schedules and a list of named artifacts (``table1``, ``fig11b``,
``fig12``, ``energy450``, ``overheads``, ``dvfs``), and one driver
(:class:`repro.experiments.Experiment`) compiles it into a single
engine batch.  ``figures``, ``compare`` and ``mc`` are conveniences
that build the equivalent spec in memory and run it through the same
driver; ``mc --dies N`` sweeps N sampled dies across the Vcc grid
(``yield_curve`` + ``vccmin_dist`` artifacts), ``--block B`` batches
them into vectorized ``mc-block`` jobs of B dies each,
``--importance-shift S`` importance-samples the deep tail (adding the
``deep_tail`` artifact), and ``run`` accepts the same
``--dies``/``--confidence``/``--block``/``--importance-shift``
overrides for spec files with a ``[montecarlo]`` section.
``--samples`` is a deprecated alias for ``--dies`` on both
subcommands.

The simulation-backed subcommands run their evaluation points through
the experiment engine: every point is sharded per trace, ``--workers N``
spreads the shards across N processes (``0`` = one per CPU) and
completed shards persist in the on-disk result cache
(``$REPRO_CACHE_DIR`` or ``~/.cache/repro``) unless ``--no-cache`` is
given.  ``$REPRO_CACHE_MAX_BYTES`` bounds the cache; ``cache --prune``
evicts least-recently-used entries beyond the bound and reclaims stale
code versions.

``--backend queue`` spools the shards through a filesystem broker
(``--queue DIR`` or ``$REPRO_QUEUE_DIR``) instead of executing them
in-process: start any number of ``python -m repro worker --queue DIR``
processes — other terminals, other machines sharing the directory — and
the runner collects their results, re-dispatching shards lost to
crashed workers.  ``repro queue --gc`` (or ``repro worker --gc``)
deletes spool version directories stranded by old code versions.
Configuration errors (bad spool or cache roots, unknown backends) exit
with a one-line message and status 2.

Telemetry: every engine-backed subcommand accepts ``--trace-out PATH``
(or honors ``$REPRO_TRACE_DIR``) to append one JSON span per resolved
shard — stage timings for plan, cache read, queue wait, execute, cache
write and aggregate — and ``repro trace report RUN.jsonl`` renders the
per-stage breakdown, slowest shards and cache hit rates.
``GET /v1/metrics`` on the service returns Prometheus text when asked
with ``Accept: text/plain``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import warnings

import repro
from repro.analysis.figures import figure1_series, figure11a_series
from repro.analysis.reporting import format_table
from repro.analysis.sweep import warm_caches
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.engine import (
    ParallelRunner,
    ResultCache,
    TextProgress,
    add_engine_arguments,
    runner_from_args,
)
from repro.engine.broker import (
    QUEUE_DIR_ENV,
    SpoolBroker,
    WorkerSupervisor,
    prune_stale_versions,
    spool_status,
    worker_main,
)
from repro.errors import ConfigError
from repro.experiments import KNOWN_ARTIFACTS, Experiment, ExperimentSpec
from repro.experiments.artifacts import ARTIFACTS
from repro.memory.hierarchy import MemoryConfig
from repro.montecarlo.importance import ImportanceSpec
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.serve.cli import add_serve_subcommands, dispatch_serve
from repro.workloads.kernels import KERNEL_BUILDERS, kernel_trace
from repro.workloads.profiles import PROFILES_BY_NAME
from repro.workloads.synthetic import SyntheticTraceGenerator
from repro.workloads.traceio import load_trace, save_trace


def _build_runner(args) -> ParallelRunner:
    """The engine configuration requested on the command line."""
    progress = TextProgress() if sys.stderr.isatty() else None
    return runner_from_args(args, progress=progress)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'High-Performance Low-Vcc In-Order "
                    "Core' (HPCA 2010)")
    parser.add_argument("--version", action="version",
                        version=f"repro {repro.__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="execute a declarative experiment spec file",
        description="Load an ExperimentSpec from a TOML or JSON file, "
                    "compile it into one engine batch, and render the "
                    "artifacts it lists.  Any user-authored grid runs "
                    "this way — new scenarios need a spec file, not "
                    "new code.")
    run.add_argument("spec", help="spec file (.toml or .json)")
    run.add_argument("--artifact", action="append", metavar="NAME",
                     choices=KNOWN_ARTIFACTS, default=None,
                     help="render only this artifact (repeatable; "
                          "default: the spec's list)")
    run.add_argument("--export-csv", metavar="PATH", default=None,
                     help="write the flat ResultSet as CSV")
    run.add_argument("--export-json", metavar="PATH", default=None,
                     help="write the flat ResultSet as JSON")
    run.add_argument("--dry-run", action="store_true",
                     help="print the campaign plan without simulating")
    run.add_argument("--json", action="store_true",
                     help="with --dry-run: emit the planned jobs (kind, "
                          "trace origin, canonical key) as JSON — the "
                          "same serializer behind the service's "
                          "POST /v1/campaigns?dry_run=1")
    run.add_argument("--dies", type=int, default=None, metavar="N",
                     help="override the spec's montecarlo die count")
    run.add_argument("--samples", type=int, default=None, metavar="N",
                     help="deprecated alias for --dies")
    run.add_argument("--confidence", type=float, default=None,
                     metavar="C",
                     help="override the spec's montecarlo confidence "
                          "level for yield intervals")
    run.add_argument("--block", type=int, default=None, metavar="B",
                     help="override the spec's montecarlo block size "
                          "(dies per vectorized mc-block job)")
    run.add_argument("--importance-shift", default=None, metavar="S",
                     help="override the spec's montecarlo importance "
                          "proposal shift (cell sigmas, or 'auto')")
    add_engine_arguments(run)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--artifact", default="circuit",
                         choices=["fig1", "fig11a", "fig11b", "fig12",
                                  "circuit", "all"],
                         help="'circuit' = fig1+fig11a (fast); 'all' "
                              "includes the simulated figures")
    figures.add_argument("--step", type=float, default=25.0)
    figures.add_argument("--length", type=int, default=6000)
    add_engine_arguments(figures)

    compare = sub.add_parser("compare", help="baseline vs IRAW at Vcc levels")
    compare.add_argument("--vcc", type=float, nargs="+",
                         default=[575.0, 500.0, 450.0, 400.0])
    compare.add_argument("--length", type=int, default=6000)
    add_engine_arguments(compare)

    mc = sub.add_parser(
        "mc", help="Monte-Carlo die sampling: yield and Vccmin",
        description="Sample dies (seeded Gaussian Vth maps over the "
                    "paper's SRAM arrays) and evaluate each against "
                    "the design clock across a Vcc grid.  Renders the "
                    "yield_curve and vccmin_dist artifacts; every "
                    "(die, Vcc, scheme) point is an ordinary engine "
                    "job, so workers, backends and the result cache "
                    "apply as usual.")
    mc.add_argument("--dies", type=int, default=None, metavar="N",
                    help="number of sampled dies (default 64)")
    mc.add_argument("--samples", type=int, default=None, metavar="N",
                    help="deprecated alias for --dies")
    mc.add_argument("--block", type=int, default=None, metavar="B",
                    help="dies per vectorized mc-block job (default: "
                         "one mc-die job per die)")
    mc.add_argument("--confidence", type=float, default=0.95, metavar="C",
                    help="confidence level for Wilson yield intervals "
                         "(default 0.95)")
    mc.add_argument("--seed", type=int, default=0,
                    help="campaign seed (each die derives its own "
                         "independent RNG stream from it)")
    mc.add_argument("--vcc", type=float, nargs="+", default=None,
                    help="explicit Vcc grid in mV (default: the paper "
                         "sweep at --step)")
    mc.add_argument("--step", type=float, default=25.0,
                    help="grid step for the default 700->400 mV sweep")
    mc.add_argument("--schemes", nargs="+",
                    default=["baseline", "iraw"],
                    choices=[s.value for s in ClockScheme],
                    help="clock schemes to bin dies under")
    mc.add_argument("--importance-shift", default=None, metavar="S",
                    help="importance-sample the deep tail: shift the "
                         "die-to-die Vth offset S cell sigmas toward "
                         "failure ('auto' resolves a deep-tail shift "
                         "from the design margin); adds the deep_tail "
                         "artifact")
    mc.add_argument("--export-csv", metavar="PATH", default=None,
                    help="write the flat ResultSet as CSV")
    mc.add_argument("--export-json", metavar="PATH", default=None,
                    help="write the flat ResultSet as JSON")
    add_engine_arguments(mc)

    simulate = sub.add_parser("simulate", help="run one workload")
    source = simulate.add_mutually_exclusive_group(required=True)
    source.add_argument("--kernel", choices=sorted(KERNEL_BUILDERS))
    source.add_argument("--profile", choices=sorted(PROFILES_BY_NAME))
    source.add_argument("--trace-file", help="JSON-lines trace file")
    simulate.add_argument("--size", type=int, default=32,
                          help="kernel problem size")
    simulate.add_argument("--length", type=int, default=6000,
                          help="synthetic trace length")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--vcc", type=float, default=500.0)
    simulate.add_argument("--scheme", default="iraw",
                          choices=["baseline", "iraw", "logic"])
    simulate.add_argument("--cold", action="store_true",
                          help="skip the cache warmup pass")

    trace = sub.add_parser(
        "trace", help="generate a trace / report on a telemetry run",
        description="Without a subcommand: generate a synthetic "
                    "instruction trace (--profile/--out required).  "
                    "'trace report RUN.jsonl' instead summarizes a "
                    "telemetry span file written by --trace-out or "
                    "$REPRO_TRACE_DIR.")
    trace.add_argument("--profile", default=None,
                       choices=sorted(PROFILES_BY_NAME))
    trace.add_argument("--length", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", default=None)
    trace_sub = trace.add_subparsers(dest="trace_command")
    trace_report = trace_sub.add_parser(
        "report", help="summarize a --trace-out span file",
        description="Render per-stage wall-clock percentiles, the "
                    "slowest executed shards and per-kind cache hit "
                    "rates from a JSONL span file.")
    trace_report.add_argument("trace_file", metavar="RUN.jsonl",
                              help="span file written by --trace-out")
    trace_report.add_argument("--top", type=int, default=10, metavar="N",
                              help="slowest shards to list (default 10)")
    trace_report.add_argument("--json", action="store_true",
                              help="emit the summary as JSON")

    sub.add_parser("kernels", help="list built-in kernels")
    sub.add_parser("calibrate", help="re-fit the circuit model")

    cache = sub.add_parser("cache", help="inspect/clear the result cache")
    cache.add_argument("--clear", action="store_true",
                       help="delete every entry of the current code version")
    cache.add_argument("--prune", action="store_true",
                       help="delete entries from stale code versions and "
                            "evict least-recently-used entries beyond "
                            "$REPRO_CACHE_MAX_BYTES")
    cache.add_argument("--dry-run", action="store_true",
                       help="with --prune: report what would be deleted "
                            "without touching the store")
    cache.add_argument("--stats", action="store_true",
                       help="read-only usage report: entry count, bytes, "
                            "per-version breakdown and hit rate since "
                            "the last prune")
    cache.add_argument("--json", action="store_true",
                       help="with --stats: emit the report as JSON")

    queue = sub.add_parser(
        "queue", help="inspect a queue spool / GC stale versions",
        description="Report the spool's current-version backlog "
                    "(pending/claimed/done/failed shard counts) and, "
                    "with --gc, delete version directories stranded by "
                    "older code versions.")
    queue.add_argument("--queue", metavar="DIR", default=None,
                       help=f"spool directory (default ${QUEUE_DIR_ENV})")
    queue.add_argument("--gc", action="store_true",
                       help="delete stale version directories under the "
                            "spool root and report what was removed")
    queue.add_argument("--json", action="store_true",
                       help="emit per-version depth/age counts as JSON "
                            "(the /v1/metrics queue data source)")

    worker = sub.add_parser(
        "worker", help="run a queue-backend worker",
        description="Claim per-trace shards from a spool directory "
                    "(written by a '--backend queue' run), execute them "
                    "and publish the results.  Run any number of these, "
                    "on any machine that shares the directory.")
    worker.add_argument("--queue", metavar="DIR", default=None,
                        help=f"spool directory (default ${QUEUE_DIR_ENV})")
    worker.add_argument("--concurrency", type=int, default=1, metavar="N",
                        help="worker processes to run (default 1)")
    worker.add_argument("--poll", type=float, default=0.2, metavar="S",
                        help="seconds between claim attempts when idle")
    worker.add_argument("--idle-exit", type=float, default=None, metavar="S",
                        help="exit after S seconds with nothing to claim "
                             "(default: serve forever)")
    worker.add_argument("--max-shards", type=int, default=None, metavar="M",
                        help="exit after executing M shards")
    worker.add_argument("--claim-batch", type=int, default=1, metavar="B",
                        help="shards claimed per broker round trip "
                             "(amortizes spool scans; default 1)")
    worker.add_argument("--supervise", action="store_true",
                        help="run a supervisor instead of a fixed fleet: "
                             "size worker processes to the queue depth "
                             "(up to --concurrency), respawn crashed "
                             "ones, exit when the spool drains")
    worker.add_argument("--gc", action="store_true",
                        help="garbage-collect stale spool versions and "
                             "exit instead of serving")

    add_serve_subcommands(sub)
    return parser


def _print_stats(runner: ParallelRunner) -> None:
    stats = runner.stats
    print(f"\nengine: {stats.simulated} trace shards simulated, "
          f"{stats.memory_hits} memo hits, {stats.disk_hits} cache hits")


def _resolve_dies(dies, samples):
    """Collapse the canonical ``--dies`` flag and its deprecated
    ``--samples`` alias to one value (``None`` if neither was given)."""
    if dies is not None and samples is not None:
        raise ConfigError("give --dies, not both --dies and its "
                          "deprecated alias --samples")
    if samples is not None:
        warnings.warn("--samples is deprecated; use --dies",
                      DeprecationWarning, stacklevel=2)
        return samples
    return dies


def _parse_importance_shift(value):
    """``--importance-shift`` text to an :class:`ImportanceSpec` shift:
    ``'auto'`` or a float sigma count (``None`` passes through)."""
    if value is None:
        return None
    text = str(value).strip()
    if text == "auto":
        return "auto"
    try:
        return float(text)
    except ValueError:
        raise ConfigError(f"--importance-shift must be a sigma count "
                          f"or 'auto' (got {value!r})") from None


def _montecarlo_overrides(spec: ExperimentSpec, dies, confidence, block,
                          importance_shift=None):
    """Apply the montecarlo CLI overrides to a loaded spec."""
    shift = _parse_importance_shift(importance_shift)
    if dies is None and confidence is None and block is None \
            and shift is None:
        return spec
    if spec.montecarlo is None:
        raise ConfigError(
            "--dies/--samples/--confidence/--block/--importance-shift "
            f"override a [montecarlo] section, but spec {spec.name!r} "
            f"has none")
    overrides: dict = {}
    if dies is not None:
        overrides["dies"] = dies
    if confidence is not None:
        overrides["confidence"] = confidence
    if block is not None:
        overrides["block"] = block
    if shift is not None:
        current = spec.montecarlo.importance
        overrides["importance"] = ImportanceSpec(
            shift_sigma=shift,
            ess_warn=current.ess_warn if current is not None
            else ImportanceSpec().ess_warn)
    return dataclasses.replace(
        spec, montecarlo=dataclasses.replace(spec.montecarlo, **overrides))


def _trace_origins(spec) -> list[str]:
    """One line per planned trace: its label and where it comes from."""
    origins = []
    for profile in spec.profiles:
        for seed in range(spec.seeds_per_profile):
            origins.append(f"{profile}/seed{seed}  "
                           f"(synthetic profile {profile!r})")
    for ref in spec.riscv:
        origins.append(f"{ref.name}  (riscv program {ref.path})")
    return origins


def _cmd_run(args) -> int:
    spec = ExperimentSpec.load(args.spec)
    if args.artifact:
        seen = []
        for name in args.artifact:
            if name not in seen:
                seen.append(name)
        spec = dataclasses.replace(spec, artifacts=tuple(seen))
    spec = _montecarlo_overrides(spec,
                                 _resolve_dies(args.dies, args.samples),
                                 args.confidence, args.block,
                                 args.importance_shift)
    experiment = Experiment(spec, runner=_build_runner(args))
    if args.dry_run and args.json:
        print(json.dumps(experiment.plan_summary(), indent=2,
                         sort_keys=True))
        return 0
    if args.json:
        raise ConfigError("--json needs --dry-run (the run itself "
                          "exports via --export-json)")
    if args.dry_run:
        jobs = experiment.plan()
        grid = spec.grid()
        print(f"experiment:  {spec.name}")
        population = (f"population:  {len(spec.profiles)} profiles x "
                      f"{spec.seeds_per_profile} seeds x "
                      f"{spec.trace_length} instructions")
        if spec.riscv:
            population += (f" + {len(spec.riscv)} riscv "
                           f"program{'s' if len(spec.riscv) != 1 else ''}")
        print(population)
        for origin in _trace_origins(spec):
            print(f"  {origin}")
        print(f"grid:        {len(grid)} Vcc levels x "
              f"{len(spec.schemes)} schemes "
              f"(+{len(spec.ablations)} ablations, "
              f"{len(spec.dvfs)} dvfs schedules)")
        if spec.montecarlo is not None:
            block = "" if spec.montecarlo.block is None \
                else f", block {spec.montecarlo.block}"
            print(f"montecarlo:  {spec.montecarlo.dies} dies "
                  f"(seed {spec.montecarlo.seed}, "
                  f"{spec.montecarlo.confidence:g} confidence{block})")
        print(f"jobs:        {len(jobs)} before dedup/sharding")
        print(f"artifacts:   {', '.join(spec.artifacts) or '(none)'}")
        return 0
    _render_experiment(experiment, args)
    return 0


def _render_experiment(experiment, args) -> None:
    """Shared tail of ``repro run`` and ``repro mc``: run the campaign,
    print every listed artifact, honor the export flags, report stats."""
    results = experiment.run()
    for name, rows in experiment.artifacts().items():
        print(format_table(rows, title=ARTIFACTS[name].title))
        print()
    if args.export_csv:
        results.to_csv(args.export_csv)
        print(f"wrote {len(results)} records to {args.export_csv}")
    if args.export_json:
        results.to_json(args.export_json)
        print(f"wrote {len(results)} records to {args.export_json}")
    _print_stats(experiment.runner)


def _cmd_figures(args) -> int:
    wanted = args.artifact
    if wanted in ("fig1", "circuit", "all"):
        print(format_table(figure1_series(step_mv=args.step),
                           title="Figure 1"))
        print()
    if wanted in ("fig11a", "circuit", "all"):
        print(format_table(figure11a_series(step_mv=args.step),
                           title="Figure 11(a)"))
        print()
    if wanted in ("fig11b", "fig12", "all"):
        # The simulated figures go through the declarative driver: the
        # equivalent of a spec file with the chosen grid and artifacts.
        artifacts = []
        if wanted in ("fig11b", "all"):
            artifacts.append("fig11b")
        if wanted in ("fig12", "all"):
            artifacts.append("fig12")
        spec = ExperimentSpec(name="cli-figures",
                              trace_length=args.length,
                              step_mv=args.step,
                              artifacts=tuple(artifacts))
        experiment = Experiment(spec, runner=_build_runner(args))
        experiment.run()
        if wanted in ("fig11b", "all"):
            print(format_table(experiment.artifact("fig11b"),
                               title="Figure 11(b)"))
            print()
        if wanted in ("fig12", "all"):
            print(format_table(experiment.artifact("fig12"),
                               title="Figure 12"))
    return 0


def _cmd_compare(args) -> int:
    # A compare is the fig11b artifact over an explicit Vcc list.
    spec = ExperimentSpec(name="cli-compare",
                          trace_length=args.length,
                          vcc_mv=tuple(args.vcc),
                          artifacts=("fig11b",))
    experiment = Experiment(spec, runner=_build_runner(args))
    experiment.run()
    print(format_table(experiment.artifact("fig11b"),
                       title="IRAW vs baseline"))
    return 0


def _cmd_mc(args) -> int:
    # A die-sampling campaign is a population-less spec with the
    # montecarlo artifacts — built in memory, run through the one driver.
    from repro.montecarlo import MonteCarloSpec

    from repro.circuits.ekv import VCC_MAX_MV, VCC_MIN_MV

    flag = "--samples" if args.samples is not None else "--dies"
    dies = _resolve_dies(args.dies, args.samples)
    if dies is None:
        dies = 64
    if dies < 1:
        raise ConfigError(f"{flag} must be >= 1 (got {dies})")
    if not 0 < args.confidence < 1:
        raise ConfigError(f"--confidence must be in (0, 1), got "
                          f"{args.confidence:g}")
    if args.vcc:
        for vcc in args.vcc:
            if not VCC_MIN_MV <= vcc <= VCC_MAX_MV:
                raise ConfigError(
                    f"--vcc {vcc:g} is outside the modeled "
                    f"[{VCC_MIN_MV:g}, {VCC_MAX_MV:g}] mV range")
    elif args.step <= 0:
        raise ConfigError(f"--step must be positive millivolts "
                          f"(got {args.step:g})")
    shift = _parse_importance_shift(args.importance_shift)
    importance = None if shift is None \
        else ImportanceSpec(shift_sigma=shift)
    artifacts = ("yield_curve", "vccmin_dist")
    if importance is not None:
        artifacts += ("deep_tail",)
    spec = ExperimentSpec(
        name="cli-mc",
        profiles=(),
        vcc_mv=tuple(args.vcc) if args.vcc else (),  # spec dedups
        step_mv=None if args.vcc else args.step,
        schemes=tuple(dict.fromkeys(args.schemes)),
        montecarlo=MonteCarloSpec(dies=dies, seed=args.seed,
                                  confidence=args.confidence,
                                  block=args.block,
                                  importance=importance),
        artifacts=artifacts,
    )
    experiment = Experiment(spec, runner=_build_runner(args))
    _render_experiment(experiment, args)
    return 0


def _cmd_simulate(args) -> int:
    if args.kernel:
        trace, _ = kernel_trace(args.kernel, args.size)
    elif args.profile:
        generator = SyntheticTraceGenerator(PROFILES_BY_NAME[args.profile],
                                            seed=args.seed)
        trace = generator.generate(args.length)
    else:
        trace = load_trace(args.trace_file)

    solver = FrequencySolver()
    scheme = ClockScheme(args.scheme)
    point = solver.operating_point(args.vcc, scheme)
    iraw = (IrawConfig.for_operating_point(point)
            if scheme is ClockScheme.IRAW else IrawConfig.disabled())
    memory = MemoryConfig(
        dram_latency_cycles=point.memory_latency_cycles(80.0))
    core = InOrderCore(CoreSetup(iraw=iraw, memory=memory,
                                 name=f"{scheme.value}@{args.vcc:g}mV"))
    if not args.cold:
        warm_caches(core.memory, trace)
    result = core.run(trace)

    print(f"trace:        {trace.name} ({len(trace)} instructions)")
    print(f"operating at: {point.frequency_mhz:.1f} MHz "
          f"({scheme.value}, {args.vcc:g} mV, N={point.stabilization_cycles})")
    print(f"cycles:       {result.cycles}")
    print(f"IPC:          {result.ipc:.3f}")
    print(f"mispredicts:  {result.mispredict_rate:.3%}")
    print(f"IRAW delayed: {result.iraw_delay_fraction:.3%}")
    print(f"violations:   {result.iraw_violations}")
    if trace.has_golden_values():
        print(f"golden-value mismatches: {result.value_mismatches}")
    breakdown = result.stall_breakdown()
    if breakdown:
        print("stalls:", ", ".join(f"{name}={fraction:.1%}"
                                   for name, fraction in sorted(
                                       breakdown.items(),
                                       key=lambda kv: -kv[1])))
    return 0


def _cmd_trace(args) -> int:
    if getattr(args, "trace_command", None) == "report":
        return _cmd_trace_report(args)
    # The generate path keeps its historical contract (--profile/--out
    # mandatory) but validates by hand now that 'trace report' shares
    # the subparser and argparse can no longer mark them required.
    if args.profile is None or args.out is None:
        raise ConfigError("trace generation needs --profile and --out "
                          "(or use 'repro trace report RUN.jsonl')")
    generator = SyntheticTraceGenerator(PROFILES_BY_NAME[args.profile],
                                        seed=args.seed)
    trace = generator.generate(args.length)
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} instructions to {args.out}")
    return 0


def _cmd_trace_report(args) -> int:
    from repro.obs.report import render_report, summarize
    from repro.obs.trace import read_spans
    try:
        spans = read_spans(args.trace_file)
    except OSError as exc:
        raise ConfigError(f"cannot read trace file: {exc}")
    if args.json:
        print(json.dumps(summarize(spans, top=args.top), indent=2,
                         sort_keys=True))
        return 0
    print(render_report(spans, top=args.top))
    return 0


def _cmd_kernels() -> int:
    from repro.workloads.kernels import build_kernel
    for name in sorted(KERNEL_BUILDERS):
        spec = build_kernel(name, 8)
        print(f"{name:15s} {spec.description}")
    return 0


def _cmd_calibrate() -> int:
    from repro.circuits.calibration import anchor_report, fit_model
    model = fit_model()
    rows = [{"anchor": a.name, "target": a.target, "achieved": a.achieved,
             "error": a.relative_error} for a in anchor_report(model)]
    print(format_table(rows, title="Calibration anchors"))
    return 0


def _spool_gc(root) -> int:
    """Shared ``--gc`` arm of ``repro queue`` and ``repro worker``."""
    removed = prune_stale_versions(root)
    for name, files in removed:
        print(f"removed stale spool version {name} ({files} file(s))")
    print(f"garbage-collected {len(removed)} stale spool version(s)")
    return 0


def _cmd_queue(args) -> int:
    root = args.queue or os.environ.get(QUEUE_DIR_ENV)
    if args.gc:
        return _spool_gc(root)
    # Inspection is strictly read-only (spool_status builds no
    # SpoolBroker, creates no directories): a typo'd path must not
    # leave a real-looking empty spool behind.
    status = spool_status(root)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    current = next((entry for entry in status["versions"]
                    if entry["current"]), None)
    stale = [entry for entry in status["versions"] if not entry["current"]]
    print(f"spool root:    {status['root']}")
    print(f"code version:  {status['current_version']}"
          + ("" if current is not None else " (no spool written yet)"))
    for name in ("pending", "claimed", "done", "failed"):
        print(f"{name + ':':14s} "
              f"{current[name] if current is not None else 0}")
    age = current["oldest_pending_age_s"] if current is not None else None
    print("oldest pending: "
          + (f"{age:.1f} s" if age is not None else "-"))
    for entry in stale:
        print(f"  stale {entry['version']}: {entry['pending']} pending, "
              f"{entry['claimed']} claimed, {entry['done']} done, "
              f"{entry['failed']} failed")
    print(f"stale versions: {len(stale)}"
          + (f" ({', '.join(entry['version'] for entry in stale)}) "
             f"— reclaim with 'repro queue --gc'" if stale else ""))
    return 0


def _cmd_worker(args) -> int:
    root = args.queue or os.environ.get(QUEUE_DIR_ENV)
    if args.gc:
        return _spool_gc(root)
    if args.concurrency < 1:
        raise ConfigError(f"--concurrency must be >= 1 "
                          f"(got {args.concurrency})")
    if args.poll <= 0:
        raise ConfigError(f"--poll must be positive seconds "
                          f"(got {args.poll:g})")
    if args.max_shards is not None and args.max_shards < 0:
        raise ConfigError(f"--max-shards must be >= 0 "
                          f"(got {args.max_shards})")
    if args.claim_batch < 1:
        raise ConfigError(f"--claim-batch must be >= 1 "
                          f"(got {args.claim_batch})")
    broker = SpoolBroker(root)  # validates the spool root eagerly
    if args.supervise:
        supervisor = WorkerSupervisor(root,
                                      max_workers=args.concurrency,
                                      claim_batch=args.claim_batch,
                                      worker_poll=args.poll)
        print(f"worker: supervising spool {broker.spool} "
              f"(up to {args.concurrency} workers)", file=sys.stderr)
        supervisor.run()
        print(f"worker: spool drained; spawned {supervisor.spawned} "
              f"worker(s), respawned after {supervisor.crashed} crash(es)")
        return 0
    print(f"worker: serving spool {broker.spool}", file=sys.stderr)
    if args.concurrency == 1:
        completed, failed = worker_main(root, poll_interval=args.poll,
                                        idle_exit=args.idle_exit,
                                        max_shards=args.max_shards,
                                        claim_batch=args.claim_batch)
        executed = (completed, failed)
    else:
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        children = [
            context.Process(target=worker_main, args=(root,),
                            kwargs=dict(poll_interval=args.poll,
                                        idle_exit=args.idle_exit,
                                        max_shards=args.max_shards,
                                        claim_batch=args.claim_batch),
                            daemon=False)
            for _ in range(args.concurrency)]
        for child in children:
            child.start()
        executed = None  # children report via the spool, not a pipe
        for child in children:
            child.join()
        crashed = [child.exitcode for child in children if child.exitcode]
        if crashed:
            print(f"error: {len(crashed)} of {args.concurrency} worker "
                  f"processes exited abnormally "
                  f"(exit codes {sorted(set(crashed))})", file=sys.stderr)
            return 1
    if executed is not None:
        completed, failed = executed
        summary = f"worker: executed {completed} shard(s)"
        if failed:
            summary += f", {failed} failed"
        print(summary)
    else:
        print(f"worker: {args.concurrency} worker processes exited")
    return 0


def _cmd_cache(args) -> int:
    cache = ResultCache.default()
    if cache.root.exists() and not cache.root.is_dir():
        raise ConfigError(f"cache root {cache.root} exists but is not a "
                          f"directory (check $REPRO_CACHE_DIR)")
    if args.stats:
        # Strictly read-only: combining it with mutation flags would
        # make the report describe a store that no longer exists.
        if args.clear or args.prune or args.dry_run:
            raise ConfigError("--stats is read-only; run it without "
                              "--clear/--prune/--dry-run")
        return _cache_stats(cache, as_json=args.json)
    if args.json:
        raise ConfigError("--json only makes sense with --stats")
    if args.dry_run and (args.clear or not args.prune):
        raise ConfigError("--dry-run only makes sense with --prune "
                          "(and without --clear)")
    if args.prune and args.dry_run:
        # Strictly read-only: report the same decisions --prune would
        # take (stale versions first, then the LRU walk) without
        # deleting anything or rewriting the index.
        stale = cache.stale_versions()
        for name, entries in stale:
            print(f"would prune stale version {name} "
                  f"({entries} entr{'y' if entries == 1 else 'ies'})")
        print(f"would prune {sum(n for _, n in stale)} entries from "
              f"{len(stale)} stale code version(s)")
        planned = cache.plan_evictions()
        for key, size in planned:
            print(f"would evict {key} ({size} bytes)")
        if cache.max_bytes is not None:
            print(f"would evict {len(planned)} entries over the "
                  f"{cache.max_bytes}-byte bound")
    elif args.prune:
        removed = cache.prune_stale()
        cache.reset_persisted_stats()  # hit-rate window restarts here
        print(f"pruned {removed} entries from stale code versions")
        evicted = cache.enforce_limit()
        for key, size in evicted:
            print(f"evicted {key} ({size} bytes)")
        if cache.max_bytes is not None:
            print(f"evicted {len(evicted)} entries over the "
                  f"{cache.max_bytes}-byte bound")
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries")
    bound = (f"{cache.max_bytes} bytes" if cache.max_bytes is not None
             else "unbounded")
    print(f"cache root:    {cache.root}")
    print(f"code version:  {cache.version_dir.name}")
    print(f"entries:       {cache.entry_count()}")
    print(f"size:          {cache.total_bytes()} bytes (bound: {bound})")
    return 0


def _cache_stats(cache: ResultCache, as_json: bool = False) -> int:
    """The read-only ``repro cache --stats`` report."""
    report = cache.usage_report()
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    bound = (f"{report['max_bytes']} bytes"
             if report["max_bytes"] is not None else "unbounded")
    print(f"cache root:    {report['root']}")
    print(f"code version:  {report['version']}")
    print(f"entries:       {report['entries']}")
    print(f"size:          {report['bytes']} bytes (bound: {bound})")
    for entry in report["versions"]:
        marker = " (current)" if entry["current"] else ""
        print(f"  version {entry['version']}{marker}: "
              f"{entry['entries']} entr"
              f"{'y' if entry['entries'] == 1 else 'ies'}, "
              f"{entry['bytes']} bytes")
    lookups = report["hits"] + report["misses"]
    if report["hit_rate"] is None:
        print("hit rate:      n/a (no lookups since last prune)")
    else:
        print(f"hit rate:      {report['hit_rate']:.1%} "
              f"({report['hits']}/{lookups} since last prune)")
    return 0


def _dispatch(args) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "mc":
        return _cmd_mc(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "kernels":
        return _cmd_kernels()
    if args.command == "calibrate":
        return _cmd_calibrate()
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "queue":
        return _cmd_queue(args)
    if args.command == "worker":
        return _cmd_worker(args)
    served = dispatch_serve(args)
    if served is not None:
        return served
    return 1  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    # Deprecation warnings for CLI spellings must reach the operator:
    # Python's default filter hides DeprecationWarning outside
    # __main__, which would make a deprecated flag silently final.
    warnings.filterwarnings("default", message=r"--samples is deprecated")
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ConfigError as exc:
        # Operator-facing configuration problems (bad $REPRO_QUEUE_DIR /
        # $REPRO_CACHE_DIR roots, invalid knobs, malformed spec files)
        # exit cleanly instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
