"""Exception hierarchy for the repro package.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class CalibrationError(ReproError):
    """The circuit model could not be calibrated to the paper's anchors."""


class VoltageRangeError(ReproError):
    """A voltage is outside the modeled [400 mV, 700 mV] operating range."""


class TraceError(ReproError):
    """A workload trace is malformed or violates ISA constraints."""


class AssemblyError(ReproError):
    """A kernel program failed to assemble."""


class PipelineError(ReproError):
    """The pipeline model reached an inconsistent state (simulator bug)."""


class MemoryModelError(ReproError):
    """The memory-hierarchy model reached an inconsistent state."""
