"""Regeneration of every figure and in-text number of the evaluation.

Each function returns the data rows of one paper artifact; the benchmarks
print them and assert the qualitative shape (who wins, where crossovers
fall).  See DESIGN.md's experiment index for the mapping.

Since the :mod:`repro.experiments` redesign the simulated artifacts
(11b, 12, the 450 mV energy example, the overhead report) are rendered
by the named-artifact registry in
:mod:`repro.experiments.artifacts`; the functions here are kept as thin
**deprecated** wrappers so existing callers (benchmarks, notebooks,
tests) keep working unchanged — they emit a :class:`DeprecationWarning`
but stay bit-identical to the registry builders they delegate to.  New
code should author an
:class:`~repro.experiments.spec.ExperimentSpec` and render through
:class:`~repro.experiments.experiment.Experiment` instead — same rows,
one driver, and the whole campaign executes as a single engine batch.

The circuit-only artifacts (Figure 1, Figure 11a) involve no simulation
and stay first-class here.
"""

from __future__ import annotations

import warnings

from repro.circuits.constants import default_delay_model
from repro.circuits.delay import DelayModel
from repro.circuits.ekv import voltage_grid
from repro.circuits.energy import EnergyModel
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.analysis.sweep import VccSweep


def _warn_legacy(name: str, replacement: str) -> None:
    """One deprecation message shape for every legacy wrapper."""
    warnings.warn(
        f"repro.analysis.{name} is deprecated; render {replacement} "
        f"through the artifact registry (repro.experiments.artifacts) "
        f"or an ExperimentSpec instead",
        DeprecationWarning, stacklevel=3)


def figure1_series(model: DelayModel | None = None,
                   step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 1: phase delays vs Vcc, normalized to 12 FO4 at 700 mV."""
    model = model or default_delay_model()
    return [model.figure1_row(vcc) for vcc in voltage_grid(step_mv)]


def figure11a_series(solver: FrequencySolver | None = None,
                     step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 11(a): cycle time vs Vcc for 24 FO4 / baseline / IRAW."""
    solver = solver or FrequencySolver()
    return solver.figure11a_series(step_mv)


def figure11b_series(sweep: VccSweep,
                     step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 11(b): frequency increase and performance gain vs Vcc.

    .. deprecated:: 1.2
       Use the ``fig11b`` artifact of the registry instead.
    """
    from repro.experiments.artifacts import fig11b_rows

    _warn_legacy("figures.figure11b_series", "the 'fig11b' artifact")
    return fig11b_rows(sweep, voltage_grid(step_mv))


def calibrated_energy_model(sweep: VccSweep) -> EnergyModel:
    """An :class:`EnergyModel` calibrated on the sweep's own population.

    .. deprecated:: 1.2
       Import it from :mod:`repro.experiments.artifacts` instead.
    """
    from repro.experiments.artifacts import calibrated_energy_model

    _warn_legacy("figures.calibrated_energy_model",
                 "repro.experiments.artifacts.calibrated_energy_model")
    return calibrated_energy_model(sweep)


def figure12_series(sweep: VccSweep, energy: EnergyModel | None = None,
                    step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 12: IRAW energy/delay/EDP relative to the baseline vs Vcc.

    .. deprecated:: 1.2
       Use the ``fig12`` artifact of the registry instead.
    """
    from repro.experiments.artifacts import fig12_rows

    _warn_legacy("figures.figure12_series", "the 'fig12' artifact")
    return fig12_rows(sweep, voltage_grid(step_mv), energy=energy)


def energy_example_450(sweep: VccSweep,
                       energy: EnergyModel | None = None) -> dict[str, dict]:
    """The paper's Section 5.3 joule-accounting example at 450 mV.

    .. deprecated:: 1.2
       Use the ``energy450`` artifact of the registry instead.
    """
    from repro.experiments.artifacts import energy450_cases

    _warn_legacy("figures.energy_example_450", "the 'energy450' artifact")
    return energy450_cases(sweep, energy=energy)


def overhead_report() -> dict[str, float]:
    """Section 5.3: area and power overhead of the IRAW hardware.

    .. deprecated:: 1.2
       Use the ``overheads`` artifact of the registry instead.
    """
    from repro.experiments.artifacts import overhead_rows

    _warn_legacy("figures.overhead_report", "the 'overheads' artifact")
    return overhead_rows()[0]


def prediction_hazard_report(sweep: VccSweep,
                             vcc_mv: float = 500.0) -> dict[str, float]:
    """Section 4.5: BP/RSB potential-corruption statistics under IRAW."""
    point = sweep.run_point(vcc_mv, ClockScheme.IRAW)
    predictions = hazard_reads = flips = pops = hazard_pops = 0
    full = set_only = 0
    for result in point.results:
        hazards = result.prediction_hazards
        predictions += hazards["bp_predictions"]
        hazard_reads += hazards["bp_hazard_reads"]
        flips += hazards["bp_potential_flips"]
        pops += hazards["rsb_pops"]
        hazard_pops += hazards["rsb_hazard_pops"]
        full += hazards["stable_full_matches"]
        set_only += hazards["stable_set_matches"]
    return {
        "vcc_mv": vcc_mv,
        "bp_predictions": predictions,
        "bp_hazard_reads": hazard_reads,
        "bp_potential_flips": flips,
        "bp_potential_extra_misprediction_rate":
            flips / predictions if predictions else 0.0,
        "rsb_pops": pops,
        "rsb_hazard_pops": hazard_pops,
        "stable_full_matches": full,
        "stable_set_matches": set_only,
    }
