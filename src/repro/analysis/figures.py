"""Regeneration of every figure and in-text number of the evaluation.

Each function returns the data rows of one paper artifact; the benchmarks
print them and assert the qualitative shape (who wins, where crossovers
fall).  See DESIGN.md's experiment index for the mapping.

The simulated figures (11b, 12) prefetch their whole (Vcc x scheme) grid
through the sweep's engine in one batch before assembling rows.  The
engine shards every grid point per trace, so a
``ParallelRunner(workers=N)`` spreads ``points x traces`` units across N
processes, a warm result cache regenerates figures without any
simulation at all, and adding a trace to the population re-simulates
only that trace's shards.
"""

from __future__ import annotations

from repro.circuits.area import AreaModel
from repro.circuits.constants import default_delay_model
from repro.circuits.delay import DelayModel
from repro.circuits.ekv import voltage_grid
from repro.circuits.energy import EnergyModel, paper_450mv_example
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.analysis.sweep import VccSweep


def figure1_series(model: DelayModel | None = None,
                   step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 1: phase delays vs Vcc, normalized to 12 FO4 at 700 mV."""
    model = model or default_delay_model()
    return [model.figure1_row(vcc) for vcc in voltage_grid(step_mv)]


def figure11a_series(solver: FrequencySolver | None = None,
                     step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 11(a): cycle time vs Vcc for 24 FO4 / baseline / IRAW."""
    solver = solver or FrequencySolver()
    return solver.figure11a_series(step_mv)


def figure11b_series(sweep: VccSweep,
                     step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 11(b): frequency increase and performance gain vs Vcc."""
    grid = voltage_grid(step_mv)
    sweep.prefetch_grid(grid, label="figure11b")
    return [sweep.compare(vcc) for vcc in grid]


def calibrated_energy_model(sweep: VccSweep) -> EnergyModel:
    """An :class:`EnergyModel` whose reference task is the sweep's own
    population: the baseline run at 600 mV defines the execution time at
    which leakage is 10% of total energy (paper Section 5.1)."""
    reference = sweep.run_point(600.0, ClockScheme.BASELINE)
    return EnergyModel(reference_dynamic_j=0.9,
                       reference_time_s=reference.execution_time_s)


def figure12_series(sweep: VccSweep, energy: EnergyModel | None = None,
                    step_mv: float = 25.0) -> list[dict[str, float]]:
    """Figure 12: IRAW energy/delay/EDP relative to the baseline vs Vcc."""
    grid = voltage_grid(step_mv)
    sweep.prefetch_grid(grid, label="figure12")
    energy = energy or calibrated_energy_model(sweep)
    rows = []
    for vcc in grid:
        baseline_time, iraw_time = sweep.execution_times(vcc)
        rows.append(energy.relative_metrics(vcc, baseline_time, iraw_time))
    return rows


def energy_example_450(sweep: VccSweep,
                       energy: EnergyModel | None = None) -> dict[str, dict]:
    """The paper's Section 5.3 joule-accounting example at 450 mV."""
    energy = energy or calibrated_energy_model(sweep)
    unconstrained, baseline, iraw = sweep.run_points(
        [(450.0, ClockScheme.LOGIC), (450.0, ClockScheme.BASELINE),
         (450.0, ClockScheme.IRAW)], label="energy-example@450mV")
    breakdowns = paper_450mv_example(
        energy,
        unconstrained_time_s=unconstrained.execution_time_s,
        baseline_time_s=baseline.execution_time_s,
        iraw_time_s=iraw.execution_time_s,
    )
    return {
        name: {
            "total_j": b.total_j,
            "leakage_j": b.leakage_j,
            "dynamic_j": b.dynamic_j,
        }
        for name, b in breakdowns.items()
    }


def overhead_report() -> dict[str, float]:
    """Section 5.3: area and power overhead of the IRAW hardware."""
    report = AreaModel().report()
    return {
        "extra_bits": report.extra_bits,
        "extra_transistors": report.extra_transistors,
        "area_overhead": report.area_overhead,
        "power_overhead": report.power_overhead,
    }


def prediction_hazard_report(sweep: VccSweep,
                             vcc_mv: float = 500.0) -> dict[str, float]:
    """Section 4.5: BP/RSB potential-corruption statistics under IRAW."""
    point = sweep.run_point(vcc_mv, ClockScheme.IRAW)
    predictions = hazard_reads = flips = pops = hazard_pops = 0
    full = set_only = 0
    for result in point.results:
        hazards = result.prediction_hazards
        predictions += hazards["bp_predictions"]
        hazard_reads += hazards["bp_hazard_reads"]
        flips += hazards["bp_potential_flips"]
        pops += hazards["rsb_pops"]
        hazard_pops += hazards["rsb_hazard_pops"]
        full += hazards["stable_full_matches"]
        set_only += hazards["stable_set_matches"]
    return {
        "vcc_mv": vcc_mv,
        "bp_predictions": predictions,
        "bp_hazard_reads": hazard_reads,
        "bp_potential_flips": flips,
        "bp_potential_extra_misprediction_rate":
            flips / predictions if predictions else 0.0,
        "rsb_pops": pops,
        "rsb_hazard_pops": hazard_pops,
        "stable_full_matches": full,
        "stable_set_matches": set_only,
    }
