"""Vcc-sweep evaluation harness (drives Figures 11b/12 and in-text stats).

A :class:`VccSweep` owns a trace population and runs it at any (Vcc,
scheme) evaluation point: the circuit model supplies frequency and N, the
pipeline supplies IPC, and both combine into speedups, execution times and
energy.  Results are cached per point, so the figure generators can share
runs.

Cache warmup: the paper's 10 M-instruction traces amortize cold misses;
our traces are shorter, so the harness replays each trace's code and data
addresses through the memory hierarchy before the timed run (cache/TLB
contents survive, statistics and transient buffers reset).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.circuits import constants
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.config import IrawConfig
from repro.memory.hierarchy import MemoryConfig, MemorySystem
from repro.analysis.metrics import PointResult, speedup
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.pipeline.resources import PipelineParams
from repro.workloads.profiles import STANDARD_PROFILES
from repro.workloads.synthetic import generate_population
from repro.workloads.trace import Trace


def warm_caches(memory: MemorySystem, trace: Trace) -> None:
    """Replay a trace's addresses through the hierarchy, then reset stats."""
    il0, dl0, ul1 = memory.il0, memory.dl0, memory.ul1
    itlb, dtlb = memory.itlb, memory.dtlb
    last_line = -1
    for op in trace.ops:
        line = op.pc >> 6
        if line != last_line:
            last_line = line
            if not itlb.access(op.pc):
                itlb.fill(op.pc)
            if not il0.access(op.pc).hit:
                il0.fill(op.pc)
                if not ul1.access(op.pc).hit:
                    ul1.fill(op.pc)
        address = op.mem_addr
        if address is not None:
            if not dtlb.access(address):
                dtlb.fill(address)
            if not dl0.access(address, is_write=op.is_store).hit:
                dl0.fill(address, dirty=op.is_store)
                if not ul1.access(address).hit:
                    ul1.fill(address)
    memory.reset_after_warmup()


@dataclass(frozen=True)
class SweepSettings:
    """Workload population and fidelity knobs of the harness."""

    profiles: tuple = STANDARD_PROFILES
    seeds_per_profile: int = 1
    trace_length: int = 12_000
    warm: bool = True
    dram_latency_ns: float = constants.DRAM_LATENCY_NS
    params: PipelineParams = field(default_factory=PipelineParams)
    memory: MemoryConfig = field(default_factory=MemoryConfig)


class VccSweep:
    """Runs the trace population across Vcc levels and clock schemes."""

    def __init__(self, settings: SweepSettings | None = None,
                 solver: FrequencySolver | None = None):
        self.settings = settings or SweepSettings()
        self.solver = solver or FrequencySolver()
        self._traces: list[Trace] | None = None
        self._cache: dict[tuple, PointResult] = {}

    @property
    def traces(self) -> list[Trace]:
        if self._traces is None:
            self._traces = generate_population(
                self.settings.profiles,
                self.settings.seeds_per_profile,
                self.settings.trace_length,
            )
        return self._traces

    # ------------------------------------------------------------------
    # Point evaluation
    # ------------------------------------------------------------------

    def run_point(self, vcc_mv: float, scheme: ClockScheme,
                  **iraw_overrides) -> PointResult:
        """Simulate the population at one (Vcc, scheme) point (cached)."""
        key = (vcc_mv, scheme.value, tuple(sorted(iraw_overrides.items())))
        if key in self._cache:
            return self._cache[key]
        point = self.solver.operating_point(vcc_mv, scheme)
        if scheme is ClockScheme.IRAW:
            iraw = IrawConfig.for_operating_point(point, **iraw_overrides)
        else:
            iraw = IrawConfig.disabled()
        dram_cycles = point.memory_latency_cycles(
            self.settings.dram_latency_ns)
        memory = replace(self.settings.memory,
                         dram_latency_cycles=dram_cycles)
        results = []
        for trace in self.traces:
            setup = CoreSetup(iraw=iraw, params=self.settings.params,
                              memory=memory,
                              name=f"{scheme.value}@{vcc_mv:g}mV",
                              check_values=False)
            core = InOrderCore(setup)
            if self.settings.warm:
                warm_caches(core.memory, trace)
            results.append(core.run(trace))
        outcome = PointResult(vcc_mv=vcc_mv, scheme=scheme.value,
                              point=point, results=tuple(results))
        self._cache[key] = outcome
        return outcome

    # ------------------------------------------------------------------
    # Headline comparisons
    # ------------------------------------------------------------------

    def compare(self, vcc_mv: float) -> dict[str, float]:
        """Frequency gain and performance gain at one Vcc (Figure 11b)."""
        base = self.run_point(vcc_mv, ClockScheme.BASELINE)
        iraw = self.run_point(vcc_mv, ClockScheme.IRAW)
        frequency_gain = (iraw.point.frequency_mhz
                          / base.point.frequency_mhz - 1.0)
        performance_gain = speedup(base, iraw) - 1.0
        return {
            "vcc_mv": vcc_mv,
            "frequency_gain": frequency_gain,
            "performance_gain": performance_gain,
            "ipc_ratio": iraw.ipc / base.ipc if base.ipc else 0.0,
            "stabilization_cycles": iraw.point.stabilization_cycles,
            "iraw_delay_fraction": iraw.mean_iraw_delay_fraction,
        }

    def execution_times(self, vcc_mv: float) -> tuple[float, float]:
        """(baseline, IRAW) execution times in seconds (Figure 12 input)."""
        base = self.run_point(vcc_mv, ClockScheme.BASELINE)
        iraw = self.run_point(vcc_mv, ClockScheme.IRAW)
        return base.execution_time_s, iraw.execution_time_s

    # ------------------------------------------------------------------
    # In-text stall decomposition (Section 5.2: 8.86% = 8.52 + 0.30 + 0.04)
    # ------------------------------------------------------------------

    def stall_decomposition(self, vcc_mv: float = 575.0) -> dict[str, float]:
        """Marginal performance cost of each avoidance mechanism.

        Runs the IRAW point with all mechanisms, then with each mechanism's
        *stalls* disabled in turn (a timing-only what-if; correctness
        violations are counted but ignored), mirroring how the paper
        attributes its 8.86% drop at 575 mV.
        """
        full = self.run_point(vcc_mv, ClockScheme.IRAW)
        no_stalls = self.run_point(vcc_mv, ClockScheme.IRAW,
                                   rf_enabled=False, iq_enabled=False,
                                   cache_guards_enabled=False,
                                   stable_enabled=False)
        no_rf = self.run_point(vcc_mv, ClockScheme.IRAW, rf_enabled=False)
        no_dl0 = self.run_point(vcc_mv, ClockScheme.IRAW,
                                stable_enabled=False)
        no_rest = self.run_point(vcc_mv, ClockScheme.IRAW,
                                 iq_enabled=False,
                                 cache_guards_enabled=False)

        def drop(reference: PointResult, withheld: PointResult) -> float:
            return 1.0 - withheld.ipc / reference.ipc

        return {
            "vcc_mv": vcc_mv,
            "total_drop": drop(no_stalls, full),
            "rf_drop": 1.0 - full.ipc / no_rf.ipc,
            "dl0_drop": 1.0 - full.ipc / no_dl0.ipc,
            "other_drop": 1.0 - full.ipc / no_rest.ipc,
            "iraw_delay_fraction": full.mean_iraw_delay_fraction,
        }
