"""Vcc-sweep evaluation harness (drives Figures 11b/12 and in-text stats).

A :class:`VccSweep` owns a trace population and runs it at any (Vcc,
scheme) evaluation point: the circuit model supplies frequency and N, the
pipeline supplies IPC, and both combine into speedups, execution times and
energy.

Since the engine refactor every evaluation point is a declarative
:class:`~repro.engine.jobs.Job` resolved through a
:class:`~repro.engine.runner.ParallelRunner`.  The runner splits each
population point into **per-trace shards** — the unit of execution and
of on-disk caching is one (trace, Vcc, scheme, config) combination — so
a batch of few points over many traces still saturates every worker,
growing the population re-simulates only the new traces, and points
already produced by this sweep (or whose shards sit in the runner's
on-disk cache) are never re-simulated.  The default serial runner is
bit-identical to the legacy inline loop.

Cache warmup: the paper's 10 M-instruction traces amortize cold misses;
our traces are shorter, so the harness replays each trace's code and data
addresses through the memory hierarchy before the timed run (cache/TLB
contents survive, statistics and transient buffers reset).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits import constants
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.engine.executors import population_for, warm_caches
from repro.engine.jobs import Job, TracePopulationSpec
from repro.engine.runner import ParallelRunner
from repro.analysis.metrics import PointResult, speedup
from repro.memory.hierarchy import MemoryConfig
from repro.pipeline.resources import PipelineParams
from repro.workloads.profiles import STANDARD_PROFILES
from repro.workloads.trace import Trace

__all__ = ["SweepSettings", "VccSweep", "warm_caches"]


@dataclass(frozen=True)
class SweepSettings:
    """Workload population and fidelity knobs of the harness."""

    profiles: tuple = STANDARD_PROFILES
    seeds_per_profile: int = 1
    trace_length: int = 12_000
    warm: bool = True
    dram_latency_ns: float = constants.DRAM_LATENCY_NS
    params: PipelineParams = field(default_factory=PipelineParams)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    riscv: tuple = ()

    def population(self) -> TracePopulationSpec:
        """The deterministic trace-population key of these settings."""
        return TracePopulationSpec(
            profiles=tuple(self.profiles),
            seeds_per_profile=self.seeds_per_profile,
            trace_length=self.trace_length,
            riscv=tuple(self.riscv),
        )


class VccSweep:
    """Runs the trace population across Vcc levels and clock schemes.

    Parameters
    ----------
    settings:
        Population and fidelity knobs.
    solver:
        Frequency solver; its delay model becomes part of every job key.
    runner:
        The execution engine.  Defaults to a serial in-memory runner
        (``workers=1``, no disk cache) — hermetic and bit-identical to
        the pre-engine harness.  Pass
        ``ParallelRunner(workers=N, cache=ResultCache.default())`` for
        parallel, persistent sweeps.
    """

    def __init__(self, settings: SweepSettings | None = None,
                 solver: FrequencySolver | None = None,
                 runner: ParallelRunner | None = None):
        self.settings = settings or SweepSettings()
        self.solver = solver or FrequencySolver()
        self.runner = runner or ParallelRunner()
        self._population = self.settings.population()

    @property
    def population(self) -> TracePopulationSpec:
        return self._population

    @property
    def traces(self) -> list[Trace]:
        """The generated population (shared, per-process memoized)."""
        return population_for(self._population)

    @property
    def stats(self):
        """Engine counters (simulations, memo/disk hits) for this sweep."""
        return self.runner.stats

    # ------------------------------------------------------------------
    # Job construction
    # ------------------------------------------------------------------

    def point_options(self) -> tuple:
        """Kind-independent job options shared by this sweep's points."""
        return (
            ("warm", self.settings.warm),
            ("dram_latency_ns", self.settings.dram_latency_ns),
            ("params", self.settings.params),
            ("memory", self.settings.memory),
            ("delay_model", self.solver.delay_model),
            ("nominal_frequency_mhz", self.solver.nominal_frequency_mhz),
        )

    def job_for(self, vcc_mv: float, scheme: ClockScheme,
                **iraw_overrides) -> Job:
        """The declarative job of one (Vcc, scheme) evaluation point."""
        return Job(
            kind="sweep-point",
            vcc_mv=vcc_mv,
            scheme=scheme.value,
            population=self._population,
            iraw_overrides=tuple(sorted(iraw_overrides.items())),
            options=self.point_options(),
        )

    # ------------------------------------------------------------------
    # Point evaluation
    # ------------------------------------------------------------------

    def run_point(self, vcc_mv: float, scheme: ClockScheme,
                  **iraw_overrides) -> PointResult:
        """Simulate the population at one (Vcc, scheme) point (memoized)."""
        return self.runner.run_one(self.job_for(vcc_mv, scheme,
                                                **iraw_overrides))

    def run_points(self, points, label: str = "sweep") -> list[PointResult]:
        """Resolve a batch of ``(vcc_mv, scheme)`` pairs through the engine.

        This is the parallel entry point: every not-yet-known point is
        sharded per trace and the shards run concurrently across the
        runner's workers (``points x traces`` parallel units, not just
        ``points``).  Every result is memoized so later
        :meth:`run_point`/:meth:`compare` calls on the same coordinates
        are free.
        """
        jobs = [self.job_for(vcc_mv, scheme) for vcc_mv, scheme in points]
        return self.runner.run(jobs, label=label)

    def prefetch_grid(self, vcc_levels,
                      schemes=(ClockScheme.BASELINE, ClockScheme.IRAW),
                      label: str = "grid") -> None:
        """Warm the runner's memo for a whole (Vcc x scheme) grid."""
        self.run_points([(vcc, scheme) for vcc in vcc_levels
                         for scheme in schemes], label=label)

    # ------------------------------------------------------------------
    # Headline comparisons
    # ------------------------------------------------------------------

    def compare(self, vcc_mv: float) -> dict[str, float]:
        """Frequency gain and performance gain at one Vcc (Figure 11b)."""
        base, iraw = self.run_points(
            [(vcc_mv, ClockScheme.BASELINE), (vcc_mv, ClockScheme.IRAW)],
            label=f"compare@{vcc_mv:g}mV")
        frequency_gain = (iraw.point.frequency_mhz
                          / base.point.frequency_mhz - 1.0)
        performance_gain = speedup(base, iraw) - 1.0
        return {
            "vcc_mv": vcc_mv,
            "frequency_gain": frequency_gain,
            "performance_gain": performance_gain,
            "ipc_ratio": iraw.ipc / base.ipc if base.ipc else 0.0,
            "stabilization_cycles": iraw.point.stabilization_cycles,
            "iraw_delay_fraction": iraw.mean_iraw_delay_fraction,
        }

    def execution_times(self, vcc_mv: float) -> tuple[float, float]:
        """(baseline, IRAW) execution times in seconds (Figure 12 input)."""
        base, iraw = self.run_points(
            [(vcc_mv, ClockScheme.BASELINE), (vcc_mv, ClockScheme.IRAW)],
            label=f"times@{vcc_mv:g}mV")
        return base.execution_time_s, iraw.execution_time_s

    # ------------------------------------------------------------------
    # In-text stall decomposition (Section 5.2: 8.86% = 8.52 + 0.30 + 0.04)
    # ------------------------------------------------------------------

    def stall_jobs(self, vcc_mv: float = 575.0) -> list[Job]:
        """The five ablation jobs behind :meth:`stall_decomposition`.

        Exposed separately so the ``stalls`` artifact planner can batch
        them with the rest of a campaign; order is part of the contract
        (full, no-stalls, no-RF, no-STable, no-IQ/guards).
        """
        return [
            self.job_for(vcc_mv, ClockScheme.IRAW),
            self.job_for(vcc_mv, ClockScheme.IRAW,
                         rf_enabled=False, iq_enabled=False,
                         cache_guards_enabled=False, stable_enabled=False),
            self.job_for(vcc_mv, ClockScheme.IRAW, rf_enabled=False),
            self.job_for(vcc_mv, ClockScheme.IRAW, stable_enabled=False),
            self.job_for(vcc_mv, ClockScheme.IRAW,
                         iq_enabled=False, cache_guards_enabled=False),
        ]

    def stall_decomposition(self, vcc_mv: float = 575.0) -> dict[str, float]:
        """Marginal performance cost of each avoidance mechanism.

        Runs the IRAW point with all mechanisms, then with each mechanism's
        *stalls* disabled in turn (a timing-only what-if; correctness
        violations are counted but ignored), mirroring how the paper
        attributes its 8.86% drop at 575 mV.  The five ablation points are
        submitted as one engine batch, so they parallelize.
        """
        full, no_stalls, no_rf, no_dl0, no_rest = self.runner.run(
            self.stall_jobs(vcc_mv),
            label=f"stall-decomposition@{vcc_mv:g}mV")

        def drop(reference: PointResult, withheld: PointResult) -> float:
            return 1.0 - withheld.ipc / reference.ipc

        return {
            "vcc_mv": vcc_mv,
            "total_drop": drop(no_stalls, full),
            "rf_drop": 1.0 - full.ipc / no_rf.ipc,
            "dl0_drop": 1.0 - full.ipc / no_dl0.ipc,
            "other_drop": 1.0 - full.ipc / no_rest.ipc,
            "iraw_delay_fraction": full.mean_iraw_delay_fraction,
        }
