"""Evaluation harness: sweeps, metrics, figure/table regeneration."""

from repro.analysis.dvfs import (
    DvfsOutcome,
    DvfsPhase,
    DvfsScenario,
    ScheduleSpec,
    compare_schemes,
    evaluate_schedules,
)
from repro.analysis.figures import (
    calibrated_energy_model,
    energy_example_450,
    figure1_series,
    figure11a_series,
    figure11b_series,
    figure12_series,
    overhead_report,
    prediction_hazard_report,
)
from repro.analysis.metrics import PointResult, geometric_mean, speedup
from repro.analysis.reporting import format_table, percent
from repro.analysis.sweep import SweepSettings, VccSweep, warm_caches
from repro.analysis.table1 import build_table1

__all__ = [
    "DvfsOutcome",
    "DvfsPhase",
    "DvfsScenario",
    "PointResult",
    "ScheduleSpec",
    "compare_schemes",
    "evaluate_schedules",
    "calibrated_energy_model",
    "SweepSettings",
    "VccSweep",
    "build_table1",
    "energy_example_450",
    "figure1_series",
    "figure11a_series",
    "figure11b_series",
    "figure12_series",
    "format_table",
    "geometric_mean",
    "overhead_report",
    "percent",
    "prediction_hazard_report",
    "speedup",
    "warm_caches",
]
