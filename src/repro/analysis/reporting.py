"""ASCII reporting helpers shared by examples and benchmarks.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output readable and consistent.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping


def format_value(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        # Non-finite metrics (a zero-baseline ratio, a failed fit) must
        # stay visible in tables instead of crashing the format specs.
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(rows: Iterable[Mapping[str, object]],
                 columns: list[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict-rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows and columns is None:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    if not rows:
        # Known columns, no data: emit the header so downstream diffing
        # sees the schema instead of a shapeless placeholder.
        header = " | ".join(columns)
        rule = "-+-".join("-" * len(col) for col in columns)
        return "\n".join(filter(None, [title, header, rule, "(no rows)"]))
    rendered = [[format_value(row.get(col, "")) for col in columns]
                for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(widths[i])
                                for i, cell in enumerate(r)))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"
