"""Aggregation metrics for trace populations.

The paper reports aggregate speedups over 531 traces; we aggregate over
our (smaller) trace population the standard way: instruction-weighted IPC
for throughput-style numbers and geometric means for ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.frequency import OperatingPoint
from repro.pipeline.stats import SimulationResult


def geometric_mean(values) -> float:
    """Geometric mean of positive values (1.0 for an empty input)."""
    values = list(values)
    if not values:
        return 1.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class PointResult:
    """All trace runs of one (Vcc, scheme) evaluation point."""

    vcc_mv: float
    scheme: str
    point: OperatingPoint
    results: tuple[SimulationResult, ...]
    #: Executor-specific side reports as sorted ``(name, value)`` pairs
    #: (e.g. Faulty Bits' disabled-line fractions per cache).
    extras: tuple = ()

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.results)

    @property
    def cycles(self) -> int:
        return sum(r.cycles for r in self.results)

    @property
    def ipc(self) -> float:
        """Instruction-weighted aggregate IPC."""
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def execution_time_s(self) -> float:
        """Wall-clock time of the whole population at this frequency."""
        return self.cycles / (self.point.frequency_mhz * 1e6)

    @property
    def iraw_violations(self) -> int:
        return sum(r.iraw_violations for r in self.results)

    @property
    def value_mismatches(self) -> int:
        return sum(r.value_mismatches for r in self.results)

    @property
    def mean_iraw_delay_fraction(self) -> float:
        """Mean fraction of instructions delayed by the RF bubble."""
        if not self.results:
            return 0.0
        return (sum(r.iraw_delay_fraction for r in self.results)
                / len(self.results))

    def stall_fraction(self, reasons) -> float:
        """Fraction of all cycles stalled for any of ``reasons``."""
        if not self.cycles:
            return 0.0
        stalled = sum(r.stalls.cycles[reason]
                      for r in self.results for reason in reasons)
        return stalled / self.cycles


def speedup(baseline: PointResult, candidate: PointResult,
            per_trace_geomean: bool = True) -> float:
    """Wall-clock speedup of ``candidate`` over ``baseline``.

    Both points must have run the same trace population.  With
    ``per_trace_geomean`` the speedup is the geometric mean of per-trace
    time ratios (the venue-standard aggregation); otherwise it is the
    ratio of total execution times.

    A point with zero cycles (an empty or failed run) has no defined
    execution time, so either side being zero raises ``ValueError``
    naming the culprit instead of dividing by zero or feeding the
    geometric mean a non-positive ratio.
    """
    if len(baseline.results) != len(candidate.results):
        raise ValueError(
            f"speedup needs matching populations: baseline ran "
            f"{len(baseline.results)} traces, candidate "
            f"{len(candidate.results)}")
    if not per_trace_geomean:
        if candidate.cycles == 0 or baseline.cycles == 0:
            raise ValueError("speedup is undefined for zero-cycle points")
        return baseline.execution_time_s / candidate.execution_time_s
    f_base = baseline.point.frequency_mhz
    f_cand = candidate.point.frequency_mhz
    ratios = []
    for rb, rc in zip(baseline.results, candidate.results):
        if rb.cycles == 0 or rc.cycles == 0:
            raise ValueError(
                f"speedup is undefined: trace {rb.trace_name!r} has a "
                f"zero-cycle result")
        time_base = rb.cycles / f_base
        time_cand = rc.cycles / f_cand
        ratios.append(time_base / time_cand)
    return geometric_mean(ratios)
