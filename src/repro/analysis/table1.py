"""Quantitative reproduction of the paper's Table 1.

The original Table 1 is qualitative (yes/no per criterion).  We reproduce
it with numbers: each technique is evaluated at one Vcc on the same trace
population, reporting its honest core-level frequency gain (respecting the
blocks it cannot cover), its hypothetical ceiling, its measured IPC impact
and its hardware overhead.

All four population runs (baseline, IRAW, Faulty Bits, Extra Bypass) are
declarative engine jobs submitted as **one batch** through the sweep's
runner, where each splits into per-trace shards: the batch exposes
``4 x traces`` parallel units, and every shard persists in the result
cache like any other evaluation point, so re-running Table 1 after
growing the trace population simulates only the new traces.
"""

from __future__ import annotations

from repro.baselines.extra_bypass import ExtraBypassBaseline
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.baselines.freq_scaling import FrequencyScalingBaseline
from repro.circuits.area import AreaModel
from repro.circuits.frequency import ClockScheme
from repro.engine.jobs import Job
from repro.analysis.metrics import PointResult
from repro.analysis.sweep import VccSweep


def table1_jobs(sweep: VccSweep, vcc_mv: float) -> list[Job]:
    """The four population evaluations behind Table 1, as engine jobs."""
    options = sweep.point_options()
    return [
        sweep.job_for(vcc_mv, ClockScheme.BASELINE),
        sweep.job_for(vcc_mv, ClockScheme.IRAW),
        Job(kind="faulty-bits", vcc_mv=vcc_mv, scheme="faulty-bits",
            population=sweep.population, options=options),
        Job(kind="extra-bypass", vcc_mv=vcc_mv, scheme="extra-bypass",
            population=sweep.population,
            options=options + (("hypothetical_rf_only", True),)),
    ]


def build_table1(sweep: VccSweep, vcc_mv: float = 500.0) -> list[dict]:
    """Evaluate IRAW and both state-of-the-art alternatives at ``vcc_mv``."""
    solver = sweep.solver
    baseline, iraw, faulty_result, bypass_result = sweep.runner.run(
        table1_jobs(sweep, vcc_mv), label=f"table1@{vcc_mv:g}mV")

    freq_scaling = FrequencyScalingBaseline(solver)
    faulty = FaultyBitsBaseline(solver)
    bypass = ExtraBypassBaseline(solver)

    # Faulty Bits: honest clock (register-file bound) + degraded caches;
    # the executor reports the disabled-line fractions via ``extras``.
    disabled_report = dict(faulty_result.extras)
    faulty_hypothetical = faulty.operating_point(
        vcc_mv, hypothetical_all_blocks=True)

    # Extra Bypass: hypothetical RF-only variant at the logic clock with
    # multi-cycle write-port contention.
    bypass_point = bypass_result.point

    def gain(point) -> float:
        return point.frequency_mhz / baseline.point.frequency_mhz - 1.0

    def ipc_impact(result: PointResult) -> float:
        return 1.0 - result.ipc / baseline.ipc if baseline.ipc else 0.0

    iraw_area = AreaModel().report().area_overhead
    rows = [
        {
            "technique": "IRAW avoidance (this paper)",
            "works_all_blocks": True,
            "adapts_multiple_vcc": True,
            "honest_freq_gain": gain(iraw.point),
            "hypothetical_freq_gain": gain(iraw.point),
            "ipc_impact": ipc_impact(iraw),
            "area_overhead": iraw_area,
            "hard_to_test": False,
        },
        {
            "technique": "Faulty Bits [1,22,26]",
            "works_all_blocks": False,
            "adapts_multiple_vcc": "costly",
            "honest_freq_gain": gain(faulty_result.point),
            "hypothetical_freq_gain": gain(faulty_hypothetical),
            "ipc_impact": ipc_impact(faulty_result),
            "area_overhead": faulty.area_overhead(),
            "hard_to_test": True,
        },
        {
            "technique": "Extra Bypass [3,4,20]",
            "works_all_blocks": False,
            "adapts_multiple_vcc": False,
            "honest_freq_gain": gain(bypass.operating_point(vcc_mv)),
            "hypothetical_freq_gain": gain(bypass_point),
            "ipc_impact": ipc_impact(bypass_result),
            # Latches sized for the design minimum Vcc, paid everywhere.
            "area_overhead": bypass.area_overhead(),
            "hard_to_test": False,
        },
        {
            "technique": "frequency scaling (baseline)",
            "works_all_blocks": True,
            "adapts_multiple_vcc": True,
            "honest_freq_gain": 0.0,
            "hypothetical_freq_gain": 0.0,
            "ipc_impact": 0.0,
            "area_overhead": freq_scaling.area_overhead(),
            "hard_to_test": False,
        },
    ]
    for row in rows:
        row["disabled_lines"] = disabled_report.get("DL0", 0.0) \
            if row["technique"].startswith("Faulty") else 0.0
    return rows
