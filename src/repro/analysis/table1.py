"""Quantitative reproduction of the paper's Table 1.

The original Table 1 is qualitative (yes/no per criterion).  We reproduce
it with numbers: each technique is evaluated at one Vcc on the same trace
population, reporting its honest core-level frequency gain (respecting the
blocks it cannot cover), its hypothetical ceiling, its measured IPC impact
and its hardware overhead.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.extra_bypass import ExtraBypassBaseline
from repro.baselines.faulty_bits import FaultyBitsBaseline
from repro.baselines.freq_scaling import FrequencyScalingBaseline
from repro.circuits.area import AreaModel
from repro.circuits.frequency import ClockScheme
from repro.analysis.metrics import PointResult
from repro.analysis.sweep import VccSweep, warm_caches
from repro.pipeline.core import CoreSetup, InOrderCore


def _run_population(sweep: VccSweep, setup: CoreSetup, point,
                    scheme_name: str, memory_mutator=None) -> PointResult:
    """Run the sweep's population under a custom core setup."""
    dram_cycles = point.memory_latency_cycles(
        sweep.settings.dram_latency_ns)
    memory = replace(sweep.settings.memory,
                     dram_latency_cycles=dram_cycles)
    results = []
    for trace in sweep.traces:
        core = InOrderCore(replace(setup, memory=memory,
                                   params=setup.params))
        if memory_mutator is not None:
            memory_mutator(core.memory)
        if sweep.settings.warm:
            warm_caches(core.memory, trace)
        results.append(core.run(trace))
    return PointResult(vcc_mv=point.vcc_mv, scheme=scheme_name,
                       point=point, results=tuple(results))


def build_table1(sweep: VccSweep, vcc_mv: float = 500.0) -> list[dict]:
    """Evaluate IRAW and both state-of-the-art alternatives at ``vcc_mv``."""
    solver = sweep.solver
    baseline = sweep.run_point(vcc_mv, ClockScheme.BASELINE)
    iraw = sweep.run_point(vcc_mv, ClockScheme.IRAW)

    freq_scaling = FrequencyScalingBaseline(solver)
    faulty = FaultyBitsBaseline(solver)
    bypass = ExtraBypassBaseline(solver)

    # Faulty Bits: honest clock (register-file bound) + degraded caches.
    faulty_point = faulty.operating_point(vcc_mv)
    disabled_report: dict[str, float] = {}

    def degrade(memory) -> None:
        disabled_report.update(faulty.apply_to_memory(memory))

    faulty_result = _run_population(sweep, faulty.core_setup(vcc_mv),
                                    faulty_point, "faulty-bits",
                                    memory_mutator=degrade)
    faulty_hypothetical = faulty.operating_point(
        vcc_mv, hypothetical_all_blocks=True)

    # Extra Bypass: hypothetical RF-only variant at the logic clock with
    # multi-cycle write-port contention.
    bypass_point = bypass.operating_point(vcc_mv, hypothetical_rf_only=True)
    bypass_result = _run_population(
        sweep, bypass.core_setup(vcc_mv, hypothetical_rf_only=True),
        bypass_point, "extra-bypass")

    def gain(point) -> float:
        return point.frequency_mhz / baseline.point.frequency_mhz - 1.0

    def ipc_impact(result: PointResult) -> float:
        return 1.0 - result.ipc / baseline.ipc if baseline.ipc else 0.0

    iraw_area = AreaModel().report().area_overhead
    rows = [
        {
            "technique": "IRAW avoidance (this paper)",
            "works_all_blocks": True,
            "adapts_multiple_vcc": True,
            "honest_freq_gain": gain(iraw.point),
            "hypothetical_freq_gain": gain(iraw.point),
            "ipc_impact": ipc_impact(iraw),
            "area_overhead": iraw_area,
            "hard_to_test": False,
        },
        {
            "technique": "Faulty Bits [1,22,26]",
            "works_all_blocks": False,
            "adapts_multiple_vcc": "costly",
            "honest_freq_gain": gain(faulty_point),
            "hypothetical_freq_gain": gain(faulty_hypothetical),
            "ipc_impact": ipc_impact(faulty_result),
            "area_overhead": faulty.area_overhead(),
            "hard_to_test": True,
        },
        {
            "technique": "Extra Bypass [3,4,20]",
            "works_all_blocks": False,
            "adapts_multiple_vcc": False,
            "honest_freq_gain": gain(bypass.operating_point(vcc_mv)),
            "hypothetical_freq_gain": gain(bypass_point),
            "ipc_impact": ipc_impact(bypass_result),
            # Latches sized for the design minimum Vcc, paid everywhere.
            "area_overhead": bypass.area_overhead(),
            "hard_to_test": False,
        },
        {
            "technique": "frequency scaling (baseline)",
            "works_all_blocks": True,
            "adapts_multiple_vcc": True,
            "honest_freq_gain": 0.0,
            "hypothetical_freq_gain": 0.0,
            "ipc_impact": 0.0,
            "area_overhead": freq_scaling.area_overhead(),
            "hard_to_test": False,
        },
    ]
    for row in rows:
        row["disabled_lines"] = disabled_report.get("DL0", 0.0) \
            if row["technique"].startswith("Faulty") else 0.0
    return rows
