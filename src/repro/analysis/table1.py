"""Quantitative reproduction of the paper's Table 1 (legacy wrappers).

The original Table 1 is qualitative (yes/no per criterion).  We reproduce
it with numbers: each technique is evaluated at one Vcc on the same trace
population, reporting its honest core-level frequency gain (respecting the
blocks it cannot cover), its hypothetical ceiling, its measured IPC impact
and its hardware overhead.

The implementation lives in :mod:`repro.experiments.artifacts`
(``table1_jobs`` / ``table1_rows``) — the same rows render through the
declarative driver (``repro run spec.toml`` with ``table1`` in the
spec's artifact list) and through these **deprecated** wrappers,
bit-identically.  All four population runs (baseline, IRAW, Faulty
Bits, Extra Bypass) are declarative engine jobs submitted as **one
batch** through the sweep's runner, where each splits into per-trace
shards.  The registry builders additionally take a technique subset
(``ExperimentSpec.table1_techniques``); these wrappers always render
the full historical table.
"""

from __future__ import annotations

import warnings

from repro.engine.jobs import Job
from repro.analysis.sweep import VccSweep


def _warn_legacy(name: str) -> None:
    warnings.warn(
        f"repro.analysis.table1.{name} is deprecated; use "
        f"repro.experiments.artifacts.{name.replace('build_table1', 'table1_rows')} "
        f"or the 'table1' artifact of an ExperimentSpec instead",
        DeprecationWarning, stacklevel=3)


def table1_jobs(sweep: VccSweep, vcc_mv: float) -> list[Job]:
    """The four population evaluations behind Table 1, as engine jobs.

    .. deprecated:: 1.2
       Use :func:`repro.experiments.artifacts.table1_jobs` instead.
    """
    from repro.experiments.artifacts import table1_jobs

    _warn_legacy("table1_jobs")
    return table1_jobs(sweep, vcc_mv)


def build_table1(sweep: VccSweep, vcc_mv: float = 500.0) -> list[dict]:
    """Evaluate IRAW and both state-of-the-art alternatives at ``vcc_mv``.

    .. deprecated:: 1.2
       Use :func:`repro.experiments.artifacts.table1_rows` instead.
    """
    from repro.experiments.artifacts import table1_rows

    _warn_legacy("build_table1")
    return table1_rows(sweep, vcc_mv)
