"""DVFS scenario: dynamic Vcc switching with IRAW reconfiguration.

The paper motivates IRAW with mobile DVFS (Section 1) and stresses that
every mechanism is reconfigurable per Vcc level by rewriting a handful of
bits (Sections 4.1.3-4.4).  This module exercises that claim end to end: a
workload runs through a *schedule* of Vcc phases; at each transition the
pipeline drains (injecting the ``AI*N`` NOOPs of Section 4.2), the
:class:`~repro.core.controller.VccController` reprograms the mechanisms,
and execution resumes at the new frequency.

Each phase is simulated at its own operating point (memory latency in
cycles changes with frequency); phase wall-clock times, energies and the
transition overheads are accumulated.

One scenario is inherently serial — the reprogrammed policy state carries
across phases — but *grids* of scenarios (schemes x schedules x traces)
are independent, so :func:`evaluate_schedules` and
:func:`compare_schemes` express them as declarative ``dvfs-schedule``
jobs and submit the whole batch through the experiment engine, where
they parallelize and persist in the result cache.  A ``dvfs-schedule``
job already targets a single trace, so it is the engine's atomic unit:
the runner's per-trace sharding applies to population kinds and leaves
these jobs whole.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.circuits.energy import EnergyModel
from repro.circuits.frequency import ClockScheme, FrequencySolver
from repro.core.controller import VccController
from repro.core.policy import IrawPolicy
from repro.engine.jobs import Job, TraceSpec
from repro.engine.runner import ParallelRunner
from repro.errors import ConfigError
from repro.memory.hierarchy import MemoryConfig
from repro.analysis.sweep import warm_caches
from repro.pipeline.core import CoreSetup, InOrderCore
from repro.pipeline.resources import PipelineParams
from repro.workloads.trace import Trace

#: Wall-clock cost of one Vcc/frequency transition (regulator settling).
DEFAULT_TRANSITION_NS = 10_000.0


@dataclass(frozen=True)
class DvfsPhase:
    """One schedule entry: run ``instructions`` ops at ``vcc_mv``."""

    vcc_mv: float
    instructions: int

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ConfigError("phase must cover at least one instruction")


@dataclass
class PhaseOutcome:
    phase: DvfsPhase
    frequency_mhz: float
    stabilization_cycles: int
    cycles: int
    time_s: float
    drain_noops: int


@dataclass
class DvfsOutcome:
    """Aggregate result of a scheduled run."""

    phases: list[PhaseOutcome]
    transitions: int
    transition_time_s: float

    @property
    def total_time_s(self) -> float:
        return (sum(p.time_s for p in self.phases)
                + self.transition_time_s)

    @property
    def instructions(self) -> int:
        return sum(p.phase.instructions for p in self.phases)


class DvfsScenario:
    """Run a trace through a Vcc schedule under a clocking scheme."""

    def __init__(self, scheme: ClockScheme = ClockScheme.IRAW,
                 solver: FrequencySolver | None = None,
                 params: PipelineParams | None = None,
                 memory: MemoryConfig | None = None,
                 dram_latency_ns: float = 80.0,
                 transition_ns: float = DEFAULT_TRANSITION_NS,
                 warm: bool = True):
        self.scheme = scheme
        self.solver = solver or FrequencySolver()
        self.controller = VccController(self.solver, scheme)
        self.params = params or PipelineParams()
        self.memory = memory or MemoryConfig()
        self.dram_latency_ns = dram_latency_ns
        self.transition_ns = transition_ns
        self.warm = warm

    def run(self, trace: Trace, schedule: list[DvfsPhase]) -> DvfsOutcome:
        """Execute ``trace`` phase by phase per ``schedule``.

        The schedule must cover exactly the trace length.
        """
        covered = sum(phase.instructions for phase in schedule)
        if covered != len(trace.ops):
            raise ConfigError(
                f"schedule covers {covered} instructions, trace has "
                f"{len(trace.ops)}"
            )
        # A live policy instance survives across phases: the controller
        # reprograms it at every transition, as the hardware would.
        policy = IrawPolicy()
        outcomes: list[PhaseOutcome] = []
        cursor = 0
        for phase in schedule:
            config = self.controller.switch(policy, phase.vcc_mv)
            point = config.point
            dram_cycles = point.memory_latency_cycles(self.dram_latency_ns)
            segment_ops = trace.ops[cursor:cursor + phase.instructions]
            cursor += phase.instructions
            segment = Trace(
                name=f"{trace.name}@{phase.vcc_mv:g}mV",
                ops=[_reindex(op, i) for i, op in enumerate(segment_ops)],
                source=trace.source,
                metadata=dict(trace.metadata),
            )
            setup = CoreSetup(
                iraw=config.iraw,
                params=self.params,
                memory=replace(self.memory,
                               dram_latency_cycles=dram_cycles),
                name=f"dvfs-{self.scheme.value}",
                check_values=False,
            )
            core = InOrderCore(setup)
            core.policy = policy  # reuse the reprogrammed mechanisms
            if self.warm:
                warm_caches(core.memory, segment)
            result = core.run(segment)
            outcomes.append(PhaseOutcome(
                phase=phase,
                frequency_mhz=point.frequency_mhz,
                stabilization_cycles=point.stabilization_cycles,
                cycles=result.cycles,
                time_s=result.cycles / (point.frequency_mhz * 1e6),
                drain_noops=policy.iq_gate.drain_noops,
            ))
        transitions = len(schedule)
        return DvfsOutcome(
            phases=outcomes,
            transitions=transitions,
            transition_time_s=transitions * self.transition_ns * 1e-9,
        )

    def energy_j(self, outcome: DvfsOutcome,
                 energy: EnergyModel | None = None) -> float:
        """Total energy of a scheduled run (per-phase accounting)."""
        model = energy or EnergyModel()
        total = 0.0
        share = 1.0 / max(1, outcome.instructions)
        for phase_outcome in outcome.phases:
            work = phase_outcome.phase.instructions * share
            breakdown = model.task_energy(
                phase_outcome.phase.vcc_mv,
                execution_time_s=max(1e-12, phase_outcome.time_s),
                work_fraction=work,
                dynamic_overhead=0.01 if self.scheme is ClockScheme.IRAW
                else 0.0,
            )
            total += breakdown.total_j
        return total


def _reindex(op, new_index: int):
    """Copy a micro-op with a new dynamic index (trace slicing)."""
    from repro.isa.instructions import MicroOp

    clone = MicroOp.__new__(MicroOp)
    for slot in MicroOp.__slots__:
        setattr(clone, slot, getattr(op, slot))
    clone.index = new_index
    return clone


# ----------------------------------------------------------------------
# Engine-backed schedule batches
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScheduleSpec:
    """One engine-submittable DVFS evaluation: a trace through phases."""

    trace: TraceSpec
    phases: tuple[DvfsPhase, ...]
    scheme: ClockScheme = ClockScheme.IRAW

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigError("schedule needs at least one phase")


def schedule_job(spec: ScheduleSpec,
                 solver: FrequencySolver | None = None,
                 params: PipelineParams | None = None,
                 memory: MemoryConfig | None = None,
                 dram_latency_ns: float = 80.0,
                 transition_ns: float = DEFAULT_TRANSITION_NS,
                 warm: bool = True) -> Job:
    """Fold one :class:`ScheduleSpec` into a declarative engine job."""
    solver = solver or FrequencySolver()
    options = [
        ("phases", tuple(spec.phases)),
        ("params", params or PipelineParams()),
        ("memory", memory or MemoryConfig()),
        ("dram_latency_ns", dram_latency_ns),
        ("transition_ns", transition_ns),
        ("warm", warm),
        ("delay_model", solver.delay_model),
        ("nominal_frequency_mhz", solver.nominal_frequency_mhz),
    ]
    return Job(kind="dvfs-schedule", scheme=spec.scheme.value,
               trace=spec.trace, options=tuple(options))


def evaluate_schedules(specs, runner: ParallelRunner | None = None,
                       **scenario_knobs) -> list[DvfsOutcome]:
    """Run a batch of DVFS scenarios through the engine.

    ``scenario_knobs`` are forwarded to :func:`schedule_job` (solver,
    params, memory, latencies, warmup).  Results come back in spec
    order; with a parallel runner the scenarios run concurrently.
    """
    runner = runner or ParallelRunner()
    jobs = [schedule_job(spec, **scenario_knobs) for spec in specs]
    return runner.run(jobs, label="dvfs-schedules")


def compare_schemes(trace: TraceSpec, phases,
                    runner: ParallelRunner | None = None,
                    schemes=(ClockScheme.BASELINE, ClockScheme.IRAW),
                    **scenario_knobs) -> dict[str, DvfsOutcome]:
    """The same schedule under several clock schemes, as one batch."""
    phases = tuple(phases)
    specs = [ScheduleSpec(trace=trace, phases=phases, scheme=scheme)
             for scheme in schemes]
    outcomes = evaluate_schedules(specs, runner=runner, **scenario_knobs)
    return {scheme.value: outcome
            for scheme, outcome in zip(schemes, outcomes)}
