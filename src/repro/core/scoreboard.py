"""Scoreboard with IRAW-extended shift registers (paper Figures 6-8).

Each logical register owns a shift register whose most significant bit
answers "may a consumer issue *this cycle* and legally obtain the value?".
Every cycle all shift registers shift left by one, keeping the least
significant bit sticky.

When a producer with execute latency L issues, its destination's shift
register is initialized, from MSB to LSB (paper Section 4.1.2):

   (I)  L zeros            — value not yet produced,
   (II) ``bypass_levels`` ones — value available on the bypass network,
   (III) N zeros           — the IRAW stabilization bubble: a consumer
                             issuing here would read the register file
                             exactly while the cell stabilizes,
   (IV) ones               — value readable from the RF forever after.

With L=3, one bypass level and N=1 this gives the paper's ``0001011``
example.  The baseline (N=0) drops phase (III) and reduces to the classic
delayed-wakeup scoreboard (``00011`` in a 5-bit register).

Long-latency producers (divides, load misses) cannot encode their latency
at issue; their register is zeroed and a completion event later installs
the (II)/(III)/(IV) tail (Section 4.1.1).

Shift registers are stored as Python ints (bit ``width-1`` = MSB) and only
registers with in-flight state are ticked, keeping the per-cycle cost low.
"""

from __future__ import annotations

from repro.errors import ConfigError, PipelineError


class Scoreboard:
    """Readiness control for the in-order issue stage."""

    def __init__(self, num_registers: int = 32, baseline_bits: int = 6,
                 bypass_levels: int = 1, max_stabilization_cycles: int = 2):
        if num_registers <= 0:
            raise ConfigError("need at least one register")
        if baseline_bits < 2:
            raise ConfigError("baseline shift registers need >= 2 bits")
        if bypass_levels < 0 or max_stabilization_cycles < 0:
            raise ConfigError("bypass/stabilization sizing cannot be negative")
        self.num_registers = num_registers
        self.baseline_bits = baseline_bits
        self.bypass_levels = bypass_levels
        self.max_stabilization_cycles = max_stabilization_cycles
        #: Physical width: sized at design time for the deepest N.
        self.width = baseline_bits + bypass_levels + max_stabilization_cycles
        self._msb_mask = 1 << (self.width - 1)
        self._full_mask = (1 << self.width) - 1
        #: Current stabilization depth (reconfigured per Vcc level).
        self._stabilization_cycles = 0
        #: Shift registers; all-ones means "idle, value stable".
        self._regs = [self._full_mask] * num_registers
        #: Registers currently not all-ones (the only ones ticked).
        self._busy: set[int] = set()

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def stabilization_cycles(self) -> int:
        return self._stabilization_cycles

    def configure(self, stabilization_cycles: int) -> None:
        """Set N for subsequent producers (multi-Vcc, Section 4.1.3).

        The pipeline drains before a Vcc switch, so in-flight patterns
        built with the old N are not a concern.
        """
        if not 0 <= stabilization_cycles <= self.max_stabilization_cycles:
            raise ConfigError(
                f"N={stabilization_cycles} outside [0, "
                f"{self.max_stabilization_cycles}]"
            )
        self._stabilization_cycles = stabilization_cycles

    @property
    def max_encodable_latency(self) -> int:
        """Largest execute latency the pattern can encode (B-1 rule)."""
        return self.baseline_bits - 1

    # ------------------------------------------------------------------
    # Pattern construction
    # ------------------------------------------------------------------

    def _build_pattern(self, latency: int) -> int:
        """Bit pattern for a producer of ``latency`` cycles, MSB first."""
        n = self._stabilization_cycles
        ones_tail = self.width - latency - self.bypass_levels - n
        if ones_tail < 1:
            raise PipelineError(
                f"latency {latency} does not fit a {self.width}-bit pattern "
                f"(bypass={self.bypass_levels}, N={n})"
            )
        bits = 0
        position = self.width
        position -= latency  # (I) zeros
        for _ in range(self.bypass_levels):  # (II) ones
            position -= 1
            bits |= 1 << position
        position -= n  # (III) zeros
        bits |= (1 << position) - 1  # (IV) ones
        return bits

    def pattern_string(self, reg: int) -> str:
        """The register's bits as a string, MSB first (for tests/docs)."""
        return format(self._regs[reg], f"0{self.width}b")

    # ------------------------------------------------------------------
    # Pipeline interface
    # ------------------------------------------------------------------

    def is_ready(self, reg: int) -> bool:
        """May a consumer of ``reg`` issue this cycle? (MSB test)."""
        return bool(self._regs[reg] & self._msb_mask)

    def is_idle(self, reg: int) -> bool:
        """No in-flight write to ``reg`` (all-ones)."""
        return self._regs[reg] == self._full_mask

    def producer_issued(self, reg: int, latency: int) -> None:
        """A producer writing ``reg`` issued this cycle.

        ``latency`` beyond ``max_encodable_latency`` selects the
        long-latency path: the register is zeroed until
        :meth:`long_latency_completed` fires.
        """
        if latency <= 0:
            raise PipelineError(f"producer latency must be positive: {latency}")
        if latency > self.max_encodable_latency:
            self._regs[reg] = 0
        else:
            self._regs[reg] = self._build_pattern(latency)
        self._busy.add(reg)

    def long_latency_completed(self, reg: int) -> None:
        """The value of a long-latency producer is being written now.

        Installs the tail of the pattern as if the producer were a
        single-cycle instruction completing this cycle: bypass ones,
        N stabilization zeros, then ones (paper Section 4.1.1, adapted
        to IRAW in 4.1.2).
        """
        n = self._stabilization_cycles
        bits = 0
        position = self.width
        levels = max(1, self.bypass_levels)
        for _ in range(levels):  # value on the result bus / bypass now
            position -= 1
            bits |= 1 << position
        position -= n
        bits |= (1 << position) - 1
        self._regs[reg] = bits
        if bits != self._full_mask:
            self._busy.add(reg)

    def tick(self) -> None:
        """Shift every busy register left one position (sticky LSB)."""
        if not self._busy:
            return
        full = self._full_mask
        done = []
        regs = self._regs
        for reg in self._busy:
            value = ((regs[reg] << 1) | (regs[reg] & 1)) & full
            regs[reg] = value
            if value == full:
                done.append(reg)
        self._busy.difference_update(done)

    def flush(self) -> None:
        """Drop all in-flight state (pipeline flush/drain)."""
        for reg in self._busy:
            self._regs[reg] = self._full_mask
        self._busy.clear()
