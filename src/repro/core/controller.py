"""The multi-Vcc controller (paper Sections 4.1.3, 4.2, 4.3, 4.4).

Mobile parts change Vcc/frequency aggressively (DVFS).  Every mechanism in
this library is reconfigurable by writing a handful of bits: the shift
register init patterns, the IQ threshold, the guard counters and the
number of active STable entries.  :class:`VccController` is the piece that
decides, per Vcc level, the operating frequency (via the circuit model)
and the IRAW configuration, and sequences the switch (drain, reprogram,
resume — with the ``AI*N`` NOOP injection of Section 4.2 handled by the
pipeline's drain hook).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.frequency import ClockScheme, FrequencySolver, OperatingPoint
from repro.core.config import IrawConfig
from repro.core.policy import IrawPolicy


@dataclass(frozen=True)
class CoreOperatingConfig:
    """Everything the pipeline needs for one Vcc level."""

    vcc_mv: float
    point: OperatingPoint
    iraw: IrawConfig

    @property
    def frequency_mhz(self) -> float:
        return self.point.frequency_mhz


class VccController:
    """Resolves Vcc levels into core operating configurations."""

    def __init__(self, solver: FrequencySolver | None = None,
                 scheme: ClockScheme = ClockScheme.IRAW,
                 max_stabilization_cycles: int = 2):
        self._solver = solver or FrequencySolver()
        self._scheme = scheme
        self._max_n = max_stabilization_cycles
        self._switches = 0

    @property
    def solver(self) -> FrequencySolver:
        return self._solver

    @property
    def scheme(self) -> ClockScheme:
        return self._scheme

    @property
    def switches(self) -> int:
        """How many Vcc transitions have been sequenced."""
        return self._switches

    def resolve(self, vcc_mv: float, **iraw_overrides) -> CoreOperatingConfig:
        """Operating configuration for ``vcc_mv`` under this scheme."""
        point = self._solver.operating_point(vcc_mv, self._scheme)
        iraw = IrawConfig.for_operating_point(
            point, max_stabilization_cycles=self._max_n, **iraw_overrides)
        return CoreOperatingConfig(vcc_mv=vcc_mv, point=point, iraw=iraw)

    def switch(self, policy: IrawPolicy, vcc_mv: float,
               **iraw_overrides) -> CoreOperatingConfig:
        """Sequence a Vcc change on a live policy.

        The caller (pipeline) must have drained in-flight instructions
        first — including the NOOP injection that pushes the last real
        instructions out of the gated IQ.  This method then reprograms
        every mechanism for the new level.
        """
        config = self.resolve(vcc_mv, **iraw_overrides)
        policy.flush()
        policy.apply(config.iraw)
        self._switches += 1
        return config
