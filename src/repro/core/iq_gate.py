"""Instruction-queue IRAW gate (paper Section 4.2, Figure 9).

In-order cores issue only the oldest ICI instructions of the IQ, and those
IQ entries are read every cycle regardless of validity.  A just-allocated
entry is therefore at risk of being read while it stabilizes.  The paper's
gate allows issue only when

    occupancy >= ICI + AI * N                                   (Eq. 1)

so that even if the youngest ``AI * N`` entries are still stabilizing, the
ICI oldest ones are safe.  The hardware of Figure 9 computes occupancy with
a borrow trick — append a '1' to the left of the tail (add IQsize), subtract
the head, drop the top bit (mod IQsize) — and the threshold by appending a
'0' to the right of N (times AI=2).  We mirror those bit manipulations
exactly so the logic itself is testable against plain arithmetic.
"""

from __future__ import annotations

from repro.errors import ConfigError


class IqOccupancyGate:
    """Issue gate for the instruction queue."""

    def __init__(self, iq_size: int = 32, issue_window: int = 2,
                 alloc_width: int = 2):
        if iq_size <= 0 or iq_size & (iq_size - 1):
            raise ConfigError(f"IQ size must be a power of two, got {iq_size}")
        if issue_window <= 0 or alloc_width <= 0:
            raise ConfigError("issue window and alloc width must be positive")
        if alloc_width != 2:
            # Figure 9's threshold multiplier is a left shift (AI = 2).
            # Other widths are supported via plain multiply.
            pass
        self.iq_size = iq_size
        self.issue_window = issue_window  # ICI
        self.alloc_width = alloc_width    # AI
        self._pointer_bits = iq_size.bit_length() - 1
        self._stabilization_cycles = 0
        self._stall_issue = False

    # ------------------------------------------------------------------
    # Configuration (recomputed only on Vcc changes — Figure 9)
    # ------------------------------------------------------------------

    def configure(self, stabilization_cycles: int, enabled: bool) -> None:
        if stabilization_cycles < 0:
            raise ConfigError("stabilization_cycles cannot be negative")
        self._stabilization_cycles = stabilization_cycles
        self._stall_issue = enabled and stabilization_cycles > 0

    @property
    def enabled(self) -> bool:
        return self._stall_issue

    @property
    def threshold(self) -> int:
        """ICI + AI*N, as built by the Figure 9 adder."""
        if self.alloc_width == 2:
            # "Appending a '0' to the right of N corresponds to
            #  multiplying N by AI because AI is 2."
            scaled = self._stabilization_cycles << 1
        else:
            scaled = self._stabilization_cycles * self.alloc_width
        return self.issue_window + scaled

    #: Number of NOOPs to inject when the pipeline must drain (Section 4.2).
    @property
    def drain_noops(self) -> int:
        if not self._stall_issue:
            return 0
        return self.alloc_width * self._stabilization_cycles

    # ------------------------------------------------------------------
    # Occupancy, the Figure 9 way
    # ------------------------------------------------------------------

    def occupancy_from_pointers(self, head: int, tail: int) -> int:
        """((tail + IQsize) - head) mod IQsize via the append-'1' trick."""
        bits = self._pointer_bits
        mask = (1 << bits) - 1
        extended_tail = (1 << bits) | (tail & mask)  # append '1' to the left
        difference = extended_tail - (head & mask)
        return difference & mask  # discard the uppermost bit

    def allows_issue(self, occupancy: int) -> bool:
        """Eq. 1: may the ICI oldest entries be read this cycle?"""
        if not self._stall_issue:
            return True
        return occupancy >= self.threshold
