"""The paper's contribution: IRAW avoidance mechanisms.

* :mod:`~repro.core.scoreboard` — register-file strategy (Figures 6-8);
* :mod:`~repro.core.iq_gate` — instruction-queue strategy (Figure 9, Eq. 1);
* :mod:`~repro.core.stall_guard` — infrequently written cache-like blocks;
* :mod:`~repro.core.stable` — the Store Table for DL0 (Figure 10);
* :mod:`~repro.core.policy` — the per-structure bundle;
* :mod:`~repro.core.controller` — multi-Vcc reconfiguration;
* :mod:`~repro.core.config` — mechanism configuration.
"""

from repro.core.config import IrawConfig
from repro.core.controller import CoreOperatingConfig, VccController
from repro.core.iq_gate import IqOccupancyGate
from repro.core.policy import GUARDED_BLOCKS, IrawPolicy
from repro.core.scoreboard import Scoreboard
from repro.core.stable import MatchKind, StableLookup, StoreTable
from repro.core.stall_guard import FillStallGuard

__all__ = [
    "CoreOperatingConfig",
    "FillStallGuard",
    "GUARDED_BLOCKS",
    "IqOccupancyGate",
    "IrawConfig",
    "IrawPolicy",
    "MatchKind",
    "Scoreboard",
    "StableLookup",
    "StoreTable",
    "VccController",
]
