"""Post-fill stall guards for infrequently written cache-like blocks.

Paper Section 4.3: IL0, UL1, ITLB, DTLB, WCB/EB and FB are written rarely
(on fills/refills), so the cheapest IRAW avoidance is to stall *any* access
to the block while a freshly written entry stabilizes — "as easy as keeping
the ports busy to prevent the port arbiter from issuing new accesses".

Each guard is a small counter reloaded on every fill; its reload value (N)
is reprogrammed by the Vcc controller.  Fills may be registered with a
*future* completion cycle (miss data arrives later); the guard blocks the
window ``[fill_cycle, fill_cycle + N]``.
"""

from __future__ import annotations

from repro.errors import ConfigError


class FillStallGuard:
    """Port-busy window tracking for one SRAM block."""

    def __init__(self, name: str):
        self.name = name
        self._stabilization_cycles = 0
        #: Pending/active blocked windows as (start, end) cycles, unsorted
        #: but few (fills are rare on guarded blocks).
        self._windows: list[tuple[int, int]] = []
        self.fills = 0
        self.blocked_accesses = 0

    def configure(self, stabilization_cycles: int) -> None:
        if stabilization_cycles < 0:
            raise ConfigError("stabilization_cycles cannot be negative")
        self._stabilization_cycles = stabilization_cycles
        if stabilization_cycles == 0:
            self._windows.clear()

    @property
    def enabled(self) -> bool:
        return self._stabilization_cycles > 0

    def arm(self, fill_cycle: int) -> None:
        """A fill writes the block at ``fill_cycle`` (possibly future)."""
        if not self.enabled:
            return
        self.fills += 1
        self._windows.append((fill_cycle,
                              fill_cycle + self._stabilization_cycles))

    def blocked_until(self, cycle: int) -> int | None:
        """If ``cycle`` falls in a blocked window, the first free cycle."""
        if not self._windows:
            return None
        release: int | None = None
        live: list[tuple[int, int]] = []
        for start, end in self._windows:
            if end < cycle:
                continue  # expired window: prune
            live.append((start, end))
            if start <= cycle and (release is None or end + 1 > release):
                release = end + 1
        self._windows = live
        if release is not None:
            self.blocked_accesses += 1
        return release

    def is_blocked(self, cycle: int) -> bool:
        return self.blocked_until(cycle) is not None

    def clear(self) -> None:
        """Drop all windows (pipeline drain / Vcc switch)."""
        self._windows.clear()
