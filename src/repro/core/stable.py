"""The Store Table (STable) for frequently written cache-like blocks.

Paper Section 4.4: DL0 is written by cache-line fills (rare — handled by
the fill stall guard) **and by store instructions** (frequent — stalling
after each store would be ruinous).  The STable instead *tracks* the last
few stores so their stabilization windows can be policed a posteriori:

* It has ``commit_width x N`` entries (e.g. one store per cycle, 2-cycle
  stabilization -> 2 entries), each holding valid bit, address and data.
  It is built from latch cells, so it is readable in a single cycle even
  at low Vcc.
* Entries are replaced round-robin, which naturally retires the entry
  whose store has just stabilized; when no store commits in a cycle the
  oldest entry is invalidated instead (modeled lazily via timestamps).
* Loads probe the STable in parallel with DL0:

  - **no match** — the common case, nothing to do;
  - **full match** — the load wants data a stabilizing store just wrote:
    the STable forwards the data;
  - **set-only match** — the load reads the same DL0 *set* as a
    stabilizing store; because all ways of the set are read in parallel,
    the stabilizing line may be destroyed even though its address differs.

  In both match cases further cache accesses stall and the matching
  stores are *replayed* from the oldest onwards to restore the state
  (Figure 10), which also refreshes the STable itself.

Stores never trigger matches on their own behalf: they read only tags
(never modified by stores) and overwrite data, and overwriting a
stabilizing cell is harmless (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ConfigError


class MatchKind(str, Enum):
    NONE = "none"
    FULL = "full"
    SET_ONLY = "set_only"


@dataclass(frozen=True)
class StableLookup:
    """Outcome of a load's parallel STable probe."""

    kind: MatchKind
    #: Forwarded data on a full match (golden-value pipelines only).
    data: int | None = None
    #: Number of stores replayed (cycles of repair stalls, Figure 10).
    replayed_stores: int = 0

    @property
    def needs_repair(self) -> bool:
        return self.kind is not MatchKind.NONE


@dataclass
class _StableEntry:
    valid: bool = False
    address: int = 0
    set_index: int = 0
    data: int = 0
    written_cycle: int = -1


class StoreTable:
    """Tracks not-yet-stabilized stores to DL0."""

    def __init__(self, max_entries: int = 2, commit_width: int = 1,
                 set_index_bits: int = 6, line_size: int = 64):
        if max_entries <= 0 or commit_width <= 0:
            raise ConfigError("STable sizing must be positive")
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError("line size must be a power of two")
        self.max_entries = max_entries
        self.commit_width = commit_width
        self.line_size = line_size
        self.num_sets = 1 << set_index_bits
        self._entries = [_StableEntry() for _ in range(max_entries)]
        self._cursor = 0
        self._active_entries = max_entries
        self._stabilization_cycles = 0
        # Statistics.
        self.stores_tracked = 0
        self.lookups = 0
        self.full_matches = 0
        self.set_matches = 0
        self.replays = 0

    # ------------------------------------------------------------------
    # Configuration (paper: "The Vcc controller sets the number of
    # entries that must be checked ... The remaining entries are disabled.")
    # ------------------------------------------------------------------

    def configure(self, stabilization_cycles: int) -> None:
        if stabilization_cycles < 0:
            raise ConfigError("stabilization_cycles cannot be negative")
        needed = stabilization_cycles * self.commit_width
        if needed > self.max_entries:
            raise ConfigError(
                f"N={stabilization_cycles} needs {needed} STable entries; "
                f"only {self.max_entries} built"
            )
        self._stabilization_cycles = stabilization_cycles
        self._active_entries = max(1, needed)
        if stabilization_cycles == 0:
            for entry in self._entries:
                entry.valid = False

    @property
    def enabled(self) -> bool:
        return self._stabilization_cycles > 0

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def set_index_of(self, address: int) -> int:
        return (address // self.line_size) % self.num_sets

    def _word_address(self, address: int) -> int:
        return address & ~7

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def store_committed(self, address: int, data: int, cycle: int) -> None:
        """A store wrote DL0 this cycle: claim the round-robin entry."""
        if not self.enabled:
            return
        self.stores_tracked += 1
        entry = self._entries[self._cursor % self._active_entries]
        self._cursor += 1
        entry.valid = True
        entry.address = self._word_address(address)
        entry.set_index = self.set_index_of(address)
        entry.data = data
        entry.written_cycle = cycle

    def _entry_live(self, entry: _StableEntry, cycle: int) -> bool:
        """Valid and still inside its stabilization window."""
        return (entry.valid
                and cycle - entry.written_cycle <= self._stabilization_cycles)

    def lookup(self, address: int, cycle: int) -> StableLookup:
        """Probe on behalf of a load issued at ``cycle`` (Figure 10)."""
        if not self.enabled:
            return StableLookup(MatchKind.NONE)
        self.lookups += 1
        word = self._word_address(address)
        set_index = self.set_index_of(address)
        full_match: _StableEntry | None = None
        oldest_match_cycle: int | None = None
        matches = 0
        for entry in self._entries[:self._active_entries]:
            if not self._entry_live(entry, cycle):
                continue
            if entry.address == word:
                matches += 1
                if (full_match is None
                        or entry.written_cycle > full_match.written_cycle):
                    full_match = entry  # youngest full match has the data
                if (oldest_match_cycle is None
                        or entry.written_cycle < oldest_match_cycle):
                    oldest_match_cycle = entry.written_cycle
            elif entry.set_index == set_index:
                matches += 1
                if (oldest_match_cycle is None
                        or entry.written_cycle < oldest_match_cycle):
                    oldest_match_cycle = entry.written_cycle
        if not matches:
            return StableLookup(MatchKind.NONE)
        # Repair: replay every tracked store from the oldest matching one
        # onwards (they rewrite DL0 and refresh the STable, Figure 10).
        replayed = sum(
            1 for entry in self._entries[:self._active_entries]
            if self._entry_live(entry, cycle)
            and entry.written_cycle >= oldest_match_cycle
        )
        self.replays += replayed
        for entry in self._entries[:self._active_entries]:
            if (self._entry_live(entry, cycle)
                    and entry.written_cycle >= oldest_match_cycle):
                entry.written_cycle = cycle  # replayed = rewritten now
        if full_match is not None:
            self.full_matches += 1
            return StableLookup(MatchKind.FULL, data=full_match.data,
                                replayed_stores=replayed)
        self.set_matches += 1
        return StableLookup(MatchKind.SET_ONLY, replayed_stores=replayed)

    def flush(self) -> None:
        """Invalidate everything (pipeline drain / Vcc switch)."""
        for entry in self._entries:
            entry.valid = False
