"""Configuration of the IRAW avoidance mechanisms.

One :class:`IrawConfig` describes which mechanisms are active and with what
stabilization depth N.  The usual way to obtain one is
:meth:`IrawConfig.for_operating_point`, which takes the
:class:`~repro.circuits.frequency.OperatingPoint` resolved by the frequency
solver: N comes straight from the circuit model, and everything is disabled
when N is zero (writes complete in-cycle, paper Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.branch.iraw_effects import DeterminismMode
from repro.circuits.frequency import OperatingPoint
from repro.errors import ConfigError


@dataclass(frozen=True)
class IrawConfig:
    """Active IRAW avoidance mechanisms and their shared parameters.

    Attributes
    ----------
    stabilization_cycles:
        N — cycles a freshly written SRAM entry needs before it is
        readable.  Zero disables everything.
    bypass_levels:
        Depth of the bypass network (the paper's running example uses 1).
    rf_enabled / iq_enabled / cache_guards_enabled / stable_enabled:
        Per-structure-class switches, normally all-on when N > 0.  They
        exist separately so ablation studies can turn mechanisms off and
        observe the resulting correctness violations.
    determinism_mode:
        Strategy for the prediction-only blocks (paper Section 4.5).
    max_stabilization_cycles:
        Physical sizing of the shift registers/STable; N may be
        reconfigured at runtime up to this bound (multi-Vcc operation,
        paper Section 4.1.3).
    """

    stabilization_cycles: int = 0
    bypass_levels: int = 1
    rf_enabled: bool = True
    iq_enabled: bool = True
    cache_guards_enabled: bool = True
    stable_enabled: bool = True
    determinism_mode: DeterminismMode = DeterminismMode.IGNORE
    max_stabilization_cycles: int = 2

    def __post_init__(self) -> None:
        if self.stabilization_cycles < 0:
            raise ConfigError("stabilization_cycles cannot be negative")
        if self.stabilization_cycles > self.max_stabilization_cycles:
            raise ConfigError(
                f"N={self.stabilization_cycles} exceeds the hardware sizing "
                f"max_stabilization_cycles={self.max_stabilization_cycles}"
            )
        if self.bypass_levels < 0:
            raise ConfigError("bypass_levels cannot be negative")

    @property
    def active(self) -> bool:
        """True when any IRAW avoidance is needed."""
        return self.stabilization_cycles > 0

    @classmethod
    def disabled(cls) -> "IrawConfig":
        """Baseline configuration: writes complete within their cycle."""
        return cls(stabilization_cycles=0)

    @classmethod
    def for_operating_point(cls, point: OperatingPoint,
                            **overrides) -> "IrawConfig":
        """Derive the configuration the Vcc controller would program."""
        base = cls(stabilization_cycles=point.stabilization_cycles)
        return replace(base, **overrides) if overrides else base

    def with_stabilization(self, cycles: int) -> "IrawConfig":
        """Reconfigured copy for a new Vcc level (N changes, sizing fixed)."""
        return replace(self, stabilization_cycles=cycles)
