"""Per-structure IRAW policy bundle.

One :class:`IrawPolicy` owns every avoidance mechanism instance of the core
(scoreboard, IQ gate, STable, six fill guards, prediction hazard tracking)
and reconfigures them together when the Vcc level — and therefore N —
changes.  The pipeline talks to the mechanisms through this object; the
baselines substitute their own policy variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.branch.iraw_effects import DeterminismMode
from repro.core.config import IrawConfig
from repro.core.iq_gate import IqOccupancyGate
from repro.core.scoreboard import Scoreboard
from repro.core.stable import StoreTable
from repro.core.stall_guard import FillStallGuard
from repro.isa.registers import NUM_REGISTERS

#: Blocks protected by post-fill stall guards.  Section 4.3 covers IL0,
#: UL1, ITLB, DTLB, WCB/EB and the fill buffers; Section 4.4 applies the
#: same treatment to DL0 *fills* (stores go through the STable instead).
GUARDED_BLOCKS = ("IL0", "UL1", "ITLB", "DTLB", "WCB_EB", "FB", "IFB", "DL0")


@dataclass
class IrawPolicy:
    """All IRAW avoidance mechanisms of one core instance."""

    config: IrawConfig = field(default_factory=IrawConfig.disabled)
    scoreboard: Scoreboard = None  # type: ignore[assignment]
    iq_gate: IqOccupancyGate = None  # type: ignore[assignment]
    stable: StoreTable = None  # type: ignore[assignment]
    guards: dict[str, FillStallGuard] = field(default_factory=dict)

    def __post_init__(self) -> None:
        cfg = self.config
        if self.scoreboard is None:
            self.scoreboard = Scoreboard(
                num_registers=NUM_REGISTERS,
                bypass_levels=cfg.bypass_levels,
                max_stabilization_cycles=cfg.max_stabilization_cycles,
            )
        if self.iq_gate is None:
            self.iq_gate = IqOccupancyGate()
        if self.stable is None:
            self.stable = StoreTable(
                max_entries=max(1, cfg.max_stabilization_cycles),
                commit_width=1,
            )
        if not self.guards:
            self.guards = {name: FillStallGuard(name)
                           for name in GUARDED_BLOCKS}
        self.apply(cfg)

    # ------------------------------------------------------------------
    # Reconfiguration (the Vcc controller's write path)
    # ------------------------------------------------------------------

    def apply(self, config: IrawConfig) -> None:
        """Program every mechanism for ``config`` (Vcc level change)."""
        self.config = config
        n = config.stabilization_cycles
        self.scoreboard.configure(n if config.rf_enabled else 0)
        self.iq_gate.configure(n, config.iq_enabled)
        self.stable.configure(n if config.stable_enabled else 0)
        guard_n = n if config.cache_guards_enabled else 0
        for guard in self.guards.values():
            guard.configure(guard_n)

    @property
    def active(self) -> bool:
        return self.config.active

    @property
    def stabilization_cycles(self) -> int:
        return self.config.stabilization_cycles

    @property
    def determinism_mode(self) -> DeterminismMode:
        return self.config.determinism_mode

    # ------------------------------------------------------------------
    # Convenience hooks used by the pipeline
    # ------------------------------------------------------------------

    def arm_fill_guards(self, fills) -> None:
        """Register (block, fill-cycle) events from the memory system."""
        for block, fill_cycle in fills:
            guard = self.guards.get(block)
            if guard is not None:
                guard.arm(fill_cycle)

    def flush(self) -> None:
        """Pipeline drain: clear mechanism state that tracks in-flight ops."""
        self.scoreboard.flush()
        self.stable.flush()
        for guard in self.guards.values():
            guard.clear()
