"""Typed, mergeable metrics instruments and their registry.

The engine's observability counters used to be ad-hoc dataclass fields
and hand-built dicts.  This module replaces them with three typed
instruments — :class:`Counter`, :class:`Gauge` and :class:`Histogram`
(fixed-bucket, mergeable) — registered in a thread-safe
:class:`MetricsRegistry` that every execution layer shares: the runner's
:class:`~repro.engine.runner.EngineStats` is a view over registry
counters, the queue backend and broker register fault/lease instruments,
the supervisor registers fleet gauges, and the serve collector registers
backlog and per-tenant gauges.

One registry, two surfaces: :meth:`MetricsRegistry.snapshot` feeds JSON
consumers and :meth:`MetricsRegistry.to_prometheus` renders the
Prometheus text exposition format (``GET /v1/metrics`` with
``Accept: text/plain``).  Everything here is stdlib-only and has no
engine imports, so the engine can depend on it without layering cycles.

Dynamic label sets (per-tenant gauges, per-state campaign counts) come
from *collector callbacks*: a callable registered with
:meth:`MetricsRegistry.collector` returns :class:`Sample` tuples at
snapshot time, so instruments never need to be created and destroyed as
tenants come and go.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass

#: Default histogram bounds (seconds): spans microsecond cache reads up
#: to minute-long shards.  Prometheus-style upper bounds; the implicit
#: +Inf bucket is always present.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)


@dataclass(frozen=True)
class Sample:
    """One dynamically-labelled measurement from a collector callback."""

    name: str
    value: float
    #: Sorted ``(label, value)`` pairs; a tuple so samples are hashable.
    labels: tuple = ()
    kind: str = "gauge"
    help: str = ""


class Counter:
    """A monotonically non-decreasing count (thread-safe)."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (the EngineStats attribute-view surface)."""
        with self._lock:
            self._value = int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """A value that can go up and down, or a live callback.

    With ``fn`` set the gauge is *callback-backed*: its value is
    computed at read time (fleet size, backlog depth), so it can never
    go stale and needs no update plumbing.  A callback that raises
    reports 0 rather than poisoning a metrics scrape.
    """

    kind = "gauge"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None, fn=None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.fn = fn
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:
                return 0.0
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value})"


class Histogram:
    """Fixed-bucket distribution: mergeable across processes/batches.

    Buckets are Prometheus-style upper bounds (``le``); an implicit
    ``+Inf`` bucket catches everything beyond the last bound.  Counts
    are stored per-bucket (non-cumulative) and cumulated at render
    time, so :meth:`merge` is plain element-wise addition — two
    histograms observed independently merge into exactly the histogram
    of the union of their observations, provided their bounds match.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 labels: dict | None = None,
                 buckets=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds) \
                or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram buckets must be finite and strictly "
                f"increasing (got {buckets!r})")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts, ``+Inf`` last."""
        with self._lock:
            return list(self._counts)

    def cumulative(self) -> list[int]:
        """Prometheus-style cumulative ``le`` counts, ``+Inf`` last."""
        total = 0
        out = []
        for count in self.bucket_counts():
            total += count
            out.append(total)
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram."""
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets "
                f"({self.name}: {self.buckets} vs {other.name}: "
                f"{other.buckets})")
        counts = other.bucket_counts()
        with other._lock:
            other_sum, other_count = other._sum, other._count
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += count
            self._sum += other_sum
            self._count += other_count
        return self

    def as_dict(self) -> dict:
        with self._lock:
            return {"buckets": list(self.buckets),
                    "counts": list(self._counts),
                    "sum": self._sum, "count": self._count}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._count})"


class MetricsRegistry:
    """Thread-safe instrument registry with Prometheus rendering.

    Registration is idempotent: asking for an already-registered
    ``(name, labels)`` returns the existing instrument (so two layers
    naming the same counter share it), and asking with a conflicting
    instrument type raises.
    """

    def __init__(self):
        self._lock = threading.RLock()
        #: (name, sorted label tuple) -> instrument, insertion-ordered.
        self._instruments: dict = {}
        self._collectors: list = []

    @staticmethod
    def _key(name: str, labels: dict | None) -> tuple:
        return name, tuple(sorted((labels or {}).items()))

    def _register(self, cls, name: str, help: str,
                  labels: dict | None, **kwargs):
        key = self._key(name, labels)
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}")
                return existing
            instrument = cls(name, help=help, labels=labels, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None, fn=None) -> Gauge:
        return self._register(Gauge, name, help, labels, fn=fn)

    def histogram(self, name: str, help: str = "",
                  labels: dict | None = None,
                  buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labels,
                              buckets=buckets)

    def collector(self, fn) -> None:
        """Register a callback returning :class:`Sample` iterables."""
        with self._lock:
            self._collectors.append(fn)

    def instruments(self) -> list:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> dict:
        """Flat ``name{labels} -> value`` mapping (JSON/test surface)."""
        out = {}
        for instrument in self.instruments():
            label = _label_suffix(instrument.labels)
            if isinstance(instrument, Histogram):
                out[f"{instrument.name}{label}"] = instrument.as_dict()
            else:
                out[f"{instrument.name}{label}"] = instrument.value
        for sample in self._collect_samples():
            out[f"{sample.name}{_label_suffix(dict(sample.labels))}"] = \
                sample.value
        return out

    def _collect_samples(self) -> list:
        with self._lock:
            collectors = list(self._collectors)
        samples = []
        for fn in collectors:
            try:
                samples.extend(fn())
            except Exception:
                continue  # a sick collector must not poison the scrape
        return samples

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """The registry in Prometheus text exposition format 0.0.4."""
        groups: dict[str, dict] = {}
        for instrument in self.instruments():
            group = groups.setdefault(
                instrument.name,
                {"kind": instrument.kind, "help": instrument.help,
                 "lines": []})
            group["lines"].extend(
                _instrument_lines(prefix, instrument))
        for sample in self._collect_samples():
            group = groups.setdefault(
                sample.name,
                {"kind": sample.kind, "help": sample.help, "lines": []})
            full = _metric_name(prefix, sample.name)
            if sample.kind == "counter":
                full += "_total"
            group["lines"].append(
                f"{full}{_label_text(dict(sample.labels))} "
                f"{_format_value(sample.value)}")
        chunks = []
        for name, group in groups.items():
            full = _metric_name(prefix, name)
            if group["kind"] == "counter":
                # The classic text format requires HELP/TYPE to name
                # the metric exactly as its samples spell it.
                full += "_total"
            if group["help"]:
                chunks.append(f"# HELP {full} {_escape_help(group['help'])}")
            chunks.append(f"# TYPE {full} {group['kind']}")
            chunks.extend(group["lines"])
        return "\n".join(chunks) + ("\n" if chunks else "")


def _instrument_lines(prefix: str, instrument) -> list[str]:
    full = _metric_name(prefix, instrument.name)
    labels = instrument.labels
    if isinstance(instrument, Counter):
        return [f"{full}_total{_label_text(labels)} "
                f"{_format_value(instrument.value)}"]
    if isinstance(instrument, Histogram):
        lines = []
        cumulative = instrument.cumulative()
        bounds = [*(str(_format_value(b)) for b in instrument.buckets),
                  "+Inf"]
        for bound, count in zip(bounds, cumulative):
            lines.append(
                f"{full}_bucket"
                f"{_label_text(dict(labels, le=bound))} {count}")
        lines.append(f"{full}_sum{_label_text(labels)} "
                     f"{_format_value(instrument.sum)}")
        lines.append(f"{full}_count{_label_text(labels)} "
                     f"{instrument.count}")
        return lines
    return [f"{full}{_label_text(labels)} "
            f"{_format_value(instrument.value)}"]


def _metric_name(prefix: str, name: str) -> str:
    text = prefix + name
    return "".join(ch if ch.isalnum() or ch in "_:" else "_"
                   for ch in text)


def _label_text(labels: dict) -> str:
    if not labels:
        return ""
    parts = ", ".join(f'{key}="{_escape_label(str(value))}"'
                      for key, value in sorted(labels.items()))
    return "{" + parts + "}"


def _label_suffix(labels: dict) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{key}={value}"
                          for key, value in sorted(labels.items())) + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def _escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def _format_value(value) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == math.floor(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
