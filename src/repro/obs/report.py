"""Post-mortem analysis of a JSONL trace: per-stage breakdown tables.

``repro trace report RUN.jsonl`` feeds spans through
:func:`summarize` (plain dict, the ``--json`` surface) and
:func:`render_report` (aligned ASCII tables for the terminal).  Both
work from :class:`~repro.obs.trace.Span` lists, so served runs and
local runs get the same view.
"""

from __future__ import annotations

from repro.obs.trace import STAGES


def _percentile(sorted_values, fraction: float) -> float:
    """Exact nearest-rank percentile over an ascending list."""
    if not sorted_values:
        return 0.0
    rank = max(1, int(-(-fraction * len(sorted_values) // 1)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def summarize(spans, top: int = 10) -> dict:
    """Reduce spans to per-stage stats, slowest shards, and hit rates."""
    batch_spans = [s for s in spans if s.kind == "engine-batch"]
    shard_spans = [s for s in spans if s.kind != "engine-batch"]

    stage_values: dict = {name: [] for name in STAGES}
    for span in spans:
        for name, seconds in span.stages.items():
            stage_values.setdefault(name, []).append(float(seconds))
    stages = []
    for name in list(STAGES) + sorted(set(stage_values) - set(STAGES)):
        values = sorted(v for v in stage_values.get(name, []) if v > 0)
        if not values:
            continue
        stages.append({"stage": name, "count": len(values),
                       "total_s": sum(values),
                       "p50_s": _percentile(values, 0.50),
                       "p95_s": _percentile(values, 0.95),
                       "max_s": values[-1]})

    executed = [s for s in shard_spans
                if not s.cache_hit and s.status == "ok"]
    slowest = sorted(executed, key=lambda s: s.duration_s,
                     reverse=True)[:max(0, top)]
    slowest = [{"key": s.key[:16], "label": s.label, "kind": s.kind,
                "backend": s.backend, "worker": s.worker,
                "duration_s": s.duration_s,
                "execute_s": float(s.stages.get("execute", 0.0))}
               for s in slowest]

    by_kind: dict = {}
    for span in shard_spans:
        bucket = by_kind.setdefault(span.kind or "?",
                                    {"hits": 0, "executed": 0,
                                     "errors": 0})
        if span.cache_hit:
            bucket["hits"] += 1
        elif span.status == "ok":
            bucket["executed"] += 1
        else:
            bucket["errors"] += 1
    hit_rates = []
    for kind in sorted(by_kind):
        bucket = by_kind[kind]
        looked_up = bucket["hits"] + bucket["executed"]
        hit_rates.append({
            "kind": kind, **bucket,
            "hit_rate": (bucket["hits"] / looked_up
                         if looked_up else None)})

    if batch_spans:
        wall = sum(s.duration_s for s in batch_spans)
    elif shard_spans:
        wall = (max(s.start_s + s.duration_s for s in shard_spans)
                - min(s.start_s for s in shard_spans))
    else:
        wall = 0.0

    return {"spans": len(spans), "shards": len(shard_spans),
            "batches": len(batch_spans),
            "errors": sum(1 for s in shard_spans
                          if s.status != "ok"),
            "wall_s": wall, "stages": stages, "slowest": slowest,
            "hit_rates": hit_rates}


def _table(headers, rows) -> str:
    """Render rows as an aligned two-space-gutter ASCII table."""
    cells = [[str(h) for h in headers]]
    cells += [[str(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells)
              for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.ljust(width)
                               for value, width in zip(row, widths))
                     .rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.1f}s"
    if value >= 0.1:
        return f"{value:.3f}s"
    return f"{value * 1000:.2f}ms"


def render_report(spans, top: int = 10) -> str:
    """The human-facing trace report: three tables plus a header."""
    summary = summarize(spans, top=top)
    out = [f"trace: {summary['shards']} shard span(s), "
           f"{summary['batches']} batch span(s), "
           f"{summary['errors']} error(s), "
           f"wall {_seconds(summary['wall_s'])}"]

    if summary["stages"]:
        out.append("")
        out.append("Per-stage breakdown:")
        out.append(_table(
            ("stage", "count", "total", "p50", "p95", "max"),
            [(s["stage"], s["count"], _seconds(s["total_s"]),
              _seconds(s["p50_s"]), _seconds(s["p95_s"]),
              _seconds(s["max_s"])) for s in summary["stages"]]))

    if summary["slowest"]:
        out.append("")
        out.append(f"Slowest {len(summary['slowest'])} executed "
                   f"shard(s):")
        out.append(_table(
            ("key", "label", "kind", "worker", "duration", "execute"),
            [(s["key"], s["label"] or "-", s["kind"] or "-",
              s["worker"] or "-", _seconds(s["duration_s"]),
              _seconds(s["execute_s"])) for s in summary["slowest"]]))

    if summary["hit_rates"]:
        out.append("")
        out.append("Cache hit-rate by job kind:")
        out.append(_table(
            ("kind", "hits", "executed", "errors", "hit-rate"),
            [(h["kind"], h["hits"], h["executed"], h["errors"],
              "-" if h["hit_rate"] is None
              else f"{h['hit_rate'] * 100:.1f}%")
             for h in summary["hit_rates"]]))

    return "\n".join(out)
