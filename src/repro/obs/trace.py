"""Per-shard span tracing: records, sinks, and batch-scoped attribution.

Every shard the engine resolves — whether served from the in-memory
memo, read back from the disk cache, or executed on a backend — can emit
one :class:`Span`: the job key, trace label, backend and worker
identity, and a monotonic per-stage timing breakdown (plan, cache read,
queue wait, execute, cache write, aggregate).  Spans are appended as
JSON lines to a :class:`JsonlTraceSink` selected with ``--trace-out
PATH`` or the ``$REPRO_TRACE_DIR`` environment variable; with neither
set the engine keeps its no-sink fast path and tracing adds zero work.

The interesting accounting lives in :class:`BatchTrace`, one instance
per ``ParallelRunner.run`` batch.  It splits each executed shard's
wall-clock residency (submit → collect, measured runner-side on
``time.perf_counter``) into:

``execute``
    the worker-reported simulation time, shipped back through the
    result envelope (:class:`~repro.engine.broker.WireResult` for queue
    workers, the timed executor wrappers for pool workers);
``cache_write``
    the runner-side put into the result cache;
``queue_wait``
    everything else — dispatch, spool residency, pickle transit.

The three stages sum to the measured residency *by construction*, so a
trace is self-consistent without any cross-machine clock agreement:
worker clocks only ever contribute durations, never timestamps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

#: Bump when the span record shape changes incompatibly.
SPAN_VERSION = 1

#: Canonical stage names, in pipeline order.  Reports render stages in
#: this order; spans may carry any subset.
STAGES = ("plan", "cache_read", "queue_wait", "execute",
          "cache_write", "aggregate")

#: Environment variable naming a directory for per-process trace files.
TRACE_DIR_ENV = "REPRO_TRACE_DIR"


@dataclass
class Span:
    """One traced unit of engine work (a shard, a hit, or a batch)."""

    key: str
    label: str = ""
    kind: str = ""
    backend: str = ""
    worker: str = ""
    batch: str = ""
    #: Offset from the batch origin, seconds (monotonic clock).
    start_s: float = 0.0
    duration_s: float = 0.0
    #: Stage name -> seconds; stages absent from the span took no time.
    stages: dict = field(default_factory=dict)
    cache_hit: bool = False
    status: str = "ok"
    version: int = SPAN_VERSION

    def to_dict(self) -> dict:
        return {"version": self.version, "key": self.key,
                "label": self.label, "kind": self.kind,
                "backend": self.backend, "worker": self.worker,
                "batch": self.batch, "start_s": self.start_s,
                "duration_s": self.duration_s,
                "stages": dict(self.stages),
                "cache_hit": self.cache_hit, "status": self.status}

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Rebuild a span from a decoded JSON record.

        Unknown keys are ignored and missing keys fall back to field
        defaults, so traces written by newer or older versions of the
        schema still load.
        """
        known = {"key", "label", "kind", "backend", "worker", "batch",
                 "start_s", "duration_s", "stages", "cache_hit",
                 "status", "version"}
        kwargs = {name: payload[name] for name in known
                  if name in payload}
        kwargs.setdefault("key", "")
        kwargs["stages"] = dict(kwargs.get("stages") or {})
        return cls(**kwargs)


class NullTraceSink:
    """The disabled sink: every operation is a no-op.

    ``enabled`` is False so the runner can skip building
    :class:`BatchTrace` machinery entirely — the zero-overhead path.
    """

    enabled = False

    def emit(self, span: Span) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """Appends one JSON line per span to a file (thread-safe).

    The file is opened lazily on first emit (creating parent
    directories), so constructing a sink for a run that resolves
    entirely from memo leaves no empty file behind unless a batch
    actually emits.
    """

    enabled = True

    def __init__(self, path):
        self.path = str(path)
        self._handle = None
        self._lock = threading.Lock()

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True,
                          separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                parent = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(parent, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def default_trace_sink():
    """The sink implied by the environment, or None.

    ``$REPRO_TRACE_DIR`` names a directory; each process appends to its
    own ``repro-trace-<pid>.jsonl`` inside it so concurrent runners
    never interleave writes within a line.
    """
    root = os.environ.get(TRACE_DIR_ENV, "").strip()
    if not root:
        return None
    return JsonlTraceSink(
        os.path.join(root, f"repro-trace-{os.getpid()}.jsonl"))


def read_spans(path) -> list:
    """Load spans from a JSONL trace file.

    Malformed lines (say, the torn final line of a killed process) are
    skipped rather than fatal; a missing file raises ``OSError`` for the
    caller to translate.
    """
    spans = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError:
                continue
            if not isinstance(payload, dict):
                continue
            spans.append(Span.from_dict(payload))
    return spans


class BatchTrace:
    """Span assembly for one runner batch.

    The runner drives it through a small verb set — ``record_hit`` for
    cache hits, ``submitted``/``executed``/``collected`` for backend
    work, ``failed`` for shard errors, ``aggregated`` for reduction
    time, and a final ``finish`` that emits the batch-level span
    carrying plan and aggregate time.  All timestamps come from
    ``time.perf_counter`` relative to a single batch origin.
    """

    def __init__(self, sink, backend: str = "", batch_label: str = ""):
        self.sink = sink
        self.backend = backend
        self.batch = batch_label
        self._origin = time.perf_counter()
        self._plan_s = 0.0
        self._aggregate_s = 0.0
        self._hit_read_s = 0.0
        #: key -> submit offset (seconds from origin).
        self._submitted: dict = {}
        #: key -> (execute_s, worker) reported by the backend envelope.
        self._executed: dict = {}
        self._lock = threading.Lock()

    def now(self) -> float:
        return time.perf_counter() - self._origin

    # -- planning ----------------------------------------------------

    def plan_done(self) -> None:
        """Close the planning stage (everything before dispatch).

        Cache reads that happened during planning are accounted to
        their own spans, so they are subtracted back out of plan time.
        """
        self._plan_s = max(0.0, self.now() - self._hit_read_s)

    def record_hit(self, key: str, job, read_s: float) -> None:
        """Emit the span for a shard served from the disk cache."""
        with self._lock:
            self._hit_read_s += read_s
        end = self.now()
        self.sink.emit(Span(
            key=key, label=str(getattr(job, "label", "") or ""),
            kind=str(getattr(job, "kind", "") or ""),
            backend=self.backend, batch=self.batch,
            start_s=max(0.0, end - read_s), duration_s=read_s,
            stages={"cache_read": read_s}, cache_hit=True))

    # -- backend execution -------------------------------------------

    def submitted(self, pending) -> None:
        """Stamp dispatch time for every (key, job) about to execute."""
        now = self.now()
        with self._lock:
            for key, job in pending:
                self._submitted[key] = (now, job)

    def executed(self, key: str, execute_s: float,
                 worker: str = "") -> None:
        """Record the worker-reported execution envelope for ``key``."""
        with self._lock:
            self._executed[key] = (max(0.0, float(execute_s)), worker)

    def collected(self, key: str, cache_write_s: float = 0.0) -> None:
        """Emit the span for an executed shard now fully resolved."""
        end = self.now()
        with self._lock:
            submit_t, job = self._submitted.pop(key, (end, None))
            execute_s, worker = self._executed.pop(key, (None, ""))
        duration = max(0.0, end - submit_t)
        cache_write_s = min(max(0.0, cache_write_s), duration)
        budget = duration - cache_write_s
        if execute_s is None:
            execute_s = budget  # no envelope: attribute all to execute
        else:
            execute_s = min(execute_s, budget)
        queue_wait = max(0.0, budget - execute_s)
        stages = {"queue_wait": queue_wait, "execute": execute_s}
        if cache_write_s > 0.0:
            stages["cache_write"] = cache_write_s
        self.sink.emit(Span(
            key=key, label=str(getattr(job, "label", "") or ""),
            kind=str(getattr(job, "kind", "") or ""),
            backend=self.backend, worker=worker, batch=self.batch,
            start_s=submit_t, duration_s=duration, stages=stages))

    def failed(self, key: str) -> None:
        """Emit an error-status span for a shard that raised."""
        end = self.now()
        with self._lock:
            submit_t, job = self._submitted.pop(key, (end, None))
            self._executed.pop(key, None)
        self.sink.emit(Span(
            key=key, label=str(getattr(job, "label", "") or ""),
            kind=str(getattr(job, "kind", "") or ""),
            backend=self.backend, batch=self.batch,
            start_s=submit_t, duration_s=max(0.0, end - submit_t),
            stages={}, status="error"))

    # -- reduction ---------------------------------------------------

    def aggregated(self, seconds: float) -> None:
        with self._lock:
            self._aggregate_s += max(0.0, seconds)

    def finish(self, status: str = "ok") -> None:
        """Emit the batch-level span and flush the sink."""
        self.sink.emit(Span(
            key="", label=self.batch, kind="engine-batch",
            backend=self.backend, batch=self.batch,
            start_s=0.0, duration_s=self.now(),
            stages={"plan": self._plan_s,
                    "aggregate": self._aggregate_s},
            status=status))
        self.sink.flush()
