"""repro.obs — zero-dependency telemetry for the execution engine.

Three layers, all stdlib-only:

- :mod:`repro.obs.metrics` — typed counters/gauges/histograms in a
  shared :class:`MetricsRegistry`, rendered as JSON snapshots or
  Prometheus text exposition.
- :mod:`repro.obs.trace` — per-shard :class:`Span` records appended to
  a JSONL sink, assembled by :class:`BatchTrace` with stage timings
  that sum to the measured wall clock by construction.
- :mod:`repro.obs.report` — the ``repro trace report`` breakdown
  (per-stage percentiles, slowest shards, hit-rate by job kind).
"""

from repro.obs.metrics import (Counter, Gauge, Histogram,
                               MetricsRegistry, Sample,
                               DEFAULT_BUCKETS)
from repro.obs.report import render_report, summarize
from repro.obs.trace import (SPAN_VERSION, STAGES, TRACE_DIR_ENV,
                             BatchTrace, JsonlTraceSink, NullTraceSink,
                             Span, default_trace_sink, read_spans)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Sample",
    "DEFAULT_BUCKETS",
    "Span", "BatchTrace", "JsonlTraceSink", "NullTraceSink",
    "default_trace_sink", "read_spans",
    "SPAN_VERSION", "STAGES", "TRACE_DIR_ENV",
    "render_report", "summarize",
]
