"""The serve tier's scheduler: many campaigns, one engine runner.

A single background thread owns the shared
:class:`~repro.engine.runner.ParallelRunner` and advances every admitted
campaign round-robin, one chunk of its planned jobs at a time.  Because
all campaigns resolve through one runner, the engine's identity rules do
the multi-tenant heavy lifting for free: overlapping job keys across
campaigns hit the shared memo/disk cache and simulate exactly once, and
each campaign's share of the work is attributed by snapshotting
:class:`~repro.engine.runner.EngineStats` around its own chunks.

Streaming contract
------------------
A campaign's plan puts its grid-point jobs first, in
:meth:`Experiment.grid_points` order, and the canonical ResultSet emits
the grid records first in that same order — so as chunks complete, the
collector appends exactly the canonical-order *prefix* of the final
rows.  The ``?after=`` cursor therefore never sees a row move or
reorder: rows only append, and the finished buffer equals the canonical
ResultSet row-for-row (which is what makes the served CSV export
bit-identical to a local run).

Back-pressure and quotas are enforced at admission, under the same lock
the worker thread uses: a submission beyond the backlog bound raises
:class:`BacklogFull` (HTTP 429 + Retry-After), a spec planning more jobs
than the per-campaign cap raises :class:`SpecTooLarge` (HTTP 413), and a
tenant already at their in-flight bound is declined until their work
drains.
"""

from __future__ import annotations

import threading
import warnings as warnings_module

from repro.engine.broker import spool_status
from repro.engine.runner import ParallelRunner
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, Sample
from repro.experiments.experiment import Experiment
from repro.experiments.spec import ExperimentSpec
from repro.serve.registry import (
    ACTIVE_STATES,
    CampaignRecord,
    CampaignRegistry,
    jsonable,
    record_row,
)


class BacklogFull(Exception):
    """Admission declined: the service is at its backlog bound (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class SpecTooLarge(Exception):
    """Admission declined: the spec plans more jobs than allowed (413)."""


class UnknownCampaign(KeyError):
    """No campaign with that id exists (HTTP 404)."""


class _Active:
    """Collector-side execution state of one admitted campaign."""

    def __init__(self, record: CampaignRecord, experiment: Experiment,
                 jobs: list):
        self.record = record
        self.experiment = experiment
        self.jobs = jobs
        self.next_index = 0
        #: Grid points whose records can stream as a canonical prefix.
        self.grid_points = experiment.grid_points()
        self.emitted_grid = 0

    @property
    def remaining(self) -> int:
        return len(self.jobs) - self.next_index


class Collector:
    """Single-threaded multiplexer of campaigns onto one runner."""

    def __init__(self, runner: ParallelRunner,
                 registry: CampaignRegistry, *,
                 chunk_jobs: int = 32,
                 backlog_jobs: int = 10_000,
                 tenant_jobs: int = 5_000,
                 max_spec_jobs: int = 50_000,
                 retry_after_s: float = 5.0,
                 memo_limit: int = 200_000):
        if chunk_jobs < 1:
            raise ConfigError(f"chunk_jobs must be >= 1 (got {chunk_jobs})")
        if backlog_jobs < 1 or tenant_jobs < 1 or max_spec_jobs < 1:
            raise ConfigError("serve quotas must be >= 1")
        self.runner = runner
        self.registry = registry
        self.chunk_jobs = int(chunk_jobs)
        self.backlog_jobs = int(backlog_jobs)
        self.tenant_jobs = int(tenant_jobs)
        self.max_spec_jobs = int(max_spec_jobs)
        self.retry_after_s = float(retry_after_s)
        self.memo_limit = int(memo_limit)
        self.lock = threading.RLock()
        #: Admission order; the worker round-robins over this list.
        self._active: list[_Active] = []
        #: Every campaign this process knows, by id (active + terminal).
        self._records: dict[str, CampaignRecord] = {}
        self._next_turn = 0
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        #: Shared with the runner when it has one, so one Prometheus
        #: scrape sees engine counters and serve gauges side by side.
        #: (Named to avoid shadowing the :meth:`metrics` JSON body.)
        self.metrics_registry: MetricsRegistry = \
            getattr(runner, "metrics", None) or MetricsRegistry()
        self._register_instruments()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-serve-collector")
        self._thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        self._stopping.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def resume(self) -> int:
        """Re-admit persisted campaigns after a restart.

        Terminal campaigns are loaded for status/results service;
        interrupted ones (``planned``/``running``) are re-planned from
        their persisted spec and re-executed from scratch — the shared
        result cache turns the replay into disk hits, and the row
        buffer restarts from zero so the cursor contract holds within
        each server lifetime.  Returns the number resumed.
        """
        resumed = 0
        with self.lock:
            for record in self.registry.load_all():
                if record.id in self._records:
                    continue
                self._records[record.id] = record
                if record.state not in ACTIVE_STATES:
                    continue
                try:
                    spec = ExperimentSpec.from_dict(record.spec)
                    experiment = Experiment(spec, runner=self.runner)
                    jobs = experiment.plan()
                except ConfigError as exc:
                    record.state = "failed"
                    record.error = (f"could not re-plan after restart: "
                                    f"{exc}")
                    self.registry.save(record)
                    continue
                record.state = "planned"
                record.done_jobs = 0
                record.rows = []
                record.warnings = []
                record.total_jobs = len(jobs)
                self.registry.save(record)
                self._active.append(_Active(record, experiment, jobs))
                resumed += 1
        if resumed:
            self._wake.set()
        return resumed

    # -- admission -----------------------------------------------------

    def submit(self, spec: ExperimentSpec, tenant: str = "default"
               ) -> CampaignRecord:
        """Admit one campaign (or raise the appropriate decline)."""
        tenant = str(tenant or "default")
        experiment = Experiment(spec, runner=self.runner)
        jobs = experiment.plan()  # ConfigError propagates (HTTP 400)
        if len(jobs) > self.max_spec_jobs:
            raise SpecTooLarge(
                f"spec {spec.name!r} plans {len(jobs)} jobs, above the "
                f"per-campaign cap of {self.max_spec_jobs}")
        with self.lock:
            backlog = self.backlog()
            if backlog >= self.backlog_jobs:
                raise BacklogFull(
                    f"backlog is full ({backlog} jobs in flight, bound "
                    f"{self.backlog_jobs}); retry later",
                    self.retry_after_s)
            in_flight = self.tenant_in_flight(tenant)
            if in_flight and in_flight + len(jobs) > self.tenant_jobs:
                raise BacklogFull(
                    f"tenant {tenant!r} has {in_flight} jobs in flight; "
                    f"admitting {len(jobs)} more would exceed the "
                    f"per-tenant bound of {self.tenant_jobs}",
                    self.retry_after_s)
            record = self.registry.new_record(
                name=spec.name, tenant=tenant, spec=spec.to_dict(),
                total_jobs=len(jobs))
            self.registry.save(record)
            self._records[record.id] = record
            self._active.append(_Active(record, experiment, jobs))
        self._wake.set()
        return record

    # -- introspection (all under the lock) ----------------------------

    def backlog(self) -> int:
        """Jobs admitted but not yet executed, across every campaign."""
        with self.lock:
            return sum(active.remaining for active in self._active)

    def tenant_in_flight(self, tenant: str) -> int:
        with self.lock:
            return sum(active.remaining for active in self._active
                       if active.record.tenant == tenant)

    def _get(self, campaign_id: str) -> CampaignRecord:
        record = self._records.get(campaign_id)
        if record is None:
            raise UnknownCampaign(f"unknown campaign {campaign_id!r}")
        return record

    def status(self, campaign_id: str) -> dict:
        with self.lock:
            return self._get(campaign_id).status_dict()

    def rows_after(self, campaign_id: str, after: int = 0
                   ) -> tuple[list, dict]:
        """Rows past the cursor plus the snapshot the headers carry."""
        with self.lock:
            record = self._get(campaign_id)
            after = max(0, int(after))
            rows = [dict(row) for row in record.rows[after:]]
            info = {"state": record.state,
                    "next_after": after + len(rows),
                    "rows_available": len(record.rows)}
            return rows, info

    def artifact_rows(self, campaign_id: str, name: str) -> list:
        """Rendered artifact rows (raises until the campaign is done)."""
        with self.lock:
            record = self._get(campaign_id)
            if record.state != "done":
                raise ConfigError(
                    f"campaign {campaign_id} is {record.state}; artifacts "
                    f"render once it is done")
            if name not in record.artifact_rows:
                known = ", ".join(sorted(record.artifact_rows)) or "(none)"
                raise UnknownCampaign(
                    f"campaign {campaign_id} has no artifact {name!r}; "
                    f"known: {known}")
            return [dict(row) for row in record.artifact_rows[name]]

    def cancel(self, campaign_id: str) -> dict:
        """Cancel an active campaign (terminal ones are left as-is)."""
        with self.lock:
            record = self._get(campaign_id)
            if record.active:
                record.state = "cancelled"
                self._active = [active for active in self._active
                                if active.record.id != campaign_id]
                self.registry.save(record)
            return record.status_dict()

    def campaigns(self) -> list[dict]:
        with self.lock:
            return [record.status_dict()
                    for record in sorted(self._records.values(),
                                         key=lambda r: (r.created_s, r.id))]

    def metrics(self) -> dict:
        """The ``GET /v1/metrics`` body: engine, queue, cache, tenants."""
        with self.lock:
            states: dict[str, int] = {}
            tenants: dict[str, dict] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            for active in self._active:
                usage = tenants.setdefault(
                    active.record.tenant,
                    {"active_campaigns": 0, "in_flight_jobs": 0})
                usage["active_campaigns"] += 1
                usage["in_flight_jobs"] += active.remaining
            payload = {
                "engine": dict(self.runner.stats.as_dict(),
                               memo_entries=self.runner.memo_size),
                "backlog_jobs": sum(active.remaining
                                    for active in self._active),
                "backlog_bound": self.backlog_jobs,
                "campaign_states": states,
                "tenants": tenants,
            }
        payload["queue"] = self._queue_metrics()
        payload["cache"] = self._cache_metrics()
        return payload

    def _register_instruments(self) -> None:
        """Serve-tier gauges and dynamic-label samples for a scrape."""
        registry = self.metrics_registry
        registry.gauge("serve_backlog_jobs",
                       "Jobs admitted but not yet executed",
                       fn=self.backlog)
        registry.gauge("serve_backlog_bound",
                       "Admission bound on the serve backlog",
                       fn=lambda: self.backlog_jobs)
        registry.gauge("serve_memo_entries",
                       "Entries in the shared runner's in-memory memo",
                       fn=lambda: self.runner.memo_size)
        registry.collector(self._metric_samples)

    def _metric_samples(self):
        """Per-state / per-tenant gauges whose label sets are dynamic."""
        samples = []
        with self.lock:
            states: dict[str, int] = {}
            for record in self._records.values():
                states[record.state] = states.get(record.state, 0) + 1
            for state, count in sorted(states.items()):
                samples.append(Sample(
                    "serve_campaigns", count, (("state", state),),
                    help="Campaigns known to this process, by state"))
            tenants: dict[str, dict] = {}
            for active in self._active:
                usage = tenants.setdefault(
                    active.record.tenant,
                    {"active_campaigns": 0, "in_flight_jobs": 0})
                usage["active_campaigns"] += 1
                usage["in_flight_jobs"] += active.remaining
            for tenant, usage in sorted(tenants.items()):
                labels = (("tenant", tenant),)
                samples.append(Sample(
                    "serve_tenant_active_campaigns",
                    usage["active_campaigns"], labels,
                    help="Active campaigns per tenant"))
                samples.append(Sample(
                    "serve_tenant_in_flight_jobs",
                    usage["in_flight_jobs"], labels,
                    help="Unexecuted jobs per tenant"))
        status = self._queue_metrics()
        if status is not None:
            current = next((entry for entry in status["versions"]
                            if entry.get("current")), None)
            if current is not None:
                for state in ("pending", "claimed", "done", "failed"):
                    samples.append(Sample(
                        "queue_spool_shards", current.get(state, 0),
                        (("state", state),),
                        help="Current-version spool shards, by state"))
        return samples

    def prometheus(self) -> str:
        """The ``GET /v1/metrics`` body under ``Accept: text/plain``."""
        return self.metrics_registry.to_prometheus()

    def _queue_metrics(self):
        broker = getattr(self.runner.backend, "broker", None)
        if broker is None:
            return None
        try:
            return spool_status(broker.root)
        except ConfigError:
            return None

    def _cache_metrics(self):
        cache = self.runner.cache
        if cache is None:
            return None
        try:
            return {"root": str(cache.root),
                    "entries": cache.entry_count(),
                    "bytes": cache.total_bytes(),
                    "max_bytes": cache.max_bytes}
        except OSError:
            return None

    # -- the worker thread ---------------------------------------------

    def _run(self) -> None:
        while not self._stopping.is_set():
            if not self._step():
                self._wake.wait(timeout=0.05)
                self._wake.clear()

    def _pick(self) -> _Active | None:
        """Next campaign with work, round-robin from the last turn."""
        with self.lock:
            if not self._active:
                return None
            count = len(self._active)
            for offset in range(count):
                active = self._active[(self._next_turn + offset) % count]
                if active.remaining > 0 or active.record.state != "done":
                    self._next_turn = \
                        (self._next_turn + offset + 1) % count
                    return active
            return None

    def _step(self) -> bool:
        """Advance one campaign by one chunk; False when idle."""
        active = self._pick()
        if active is None:
            return False
        record = active.record
        with self.lock:
            if record.state == "planned":
                record.state = "running"
            chunk = active.jobs[active.next_index:
                                active.next_index + self.chunk_jobs]
        before = self.runner.stats.as_dict()
        try:
            caught = self._run_chunk(active, chunk)
        except Exception as exc:  # noqa: BLE001 - one campaign, not the loop
            with self.lock:
                record.state = "failed"
                record.error = str(exc) or type(exc).__name__
                self._merge_stats(record, before)
                self._active = [entry for entry in self._active
                                if entry is not active]
                self.registry.save(record)
            return True
        with self.lock:
            if record.state == "cancelled":
                # Raced with DELETE: the chunk's results stay cached
                # (harmless — content-addressed), the campaign is gone.
                return True
            active.next_index += len(chunk)
            record.done_jobs = active.next_index
            self._merge_stats(record, before)
            self._note_warnings(record, caught)
            self._stream_ready_rows(active)
            finished = active.remaining == 0
            if not finished:
                self.registry.save(record)
        if finished:
            self._finalize(active)
        return True

    def _run_chunk(self, active: _Active, chunk: list) -> list:
        """Execute one chunk, returning the warnings it raised."""
        if not chunk:
            return []
        label = f"{active.record.name or active.record.id}" \
                f":{active.next_index}"
        with warnings_module.catch_warnings(record=True) as caught:
            warnings_module.simplefilter("always")
            self.runner.run(chunk, label=label)
        return list(caught)

    def _finalize(self, active: _Active) -> None:
        """Collect the canonical rows and render every artifact."""
        record = active.record
        before = self.runner.stats.as_dict()
        try:
            with warnings_module.catch_warnings(record=True) as caught:
                warnings_module.simplefilter("always")
                results = active.experiment.run()
                artifact_rows = {
                    name: [{str(key): jsonable(value)
                            for key, value in row.items()}
                           for row in rows]
                    for name, rows
                    in active.experiment.artifacts().items()}
        except Exception as exc:  # noqa: BLE001
            with self.lock:
                record.state = "failed"
                record.error = str(exc) or type(exc).__name__
                self._merge_stats(record, before)
                self._active = [entry for entry in self._active
                                if entry is not active]
                self.registry.save(record)
            return
        with self.lock:
            if record.state == "cancelled":
                return
            self._note_warnings(record, caught)
            all_rows = [record_row(rec) for rec in results]
            # The streamed prefix was produced by the same record
            # builders in the same order; extend, never rewrite, so the
            # cursor contract holds.
            record.rows.extend(all_rows[len(record.rows):])
            record.artifact_rows = artifact_rows
            record.state = "done"
            record.done_jobs = record.total_jobs
            self._active = [entry for entry in self._active
                            if entry is not active]
            self.registry.save(record)
        if self.runner.memo_size > self.memo_limit:
            # Bound the long-lived process; re-resolving a dropped key
            # later is a disk hit, not a re-simulation.
            self.runner.reset_memo()

    def _stream_ready_rows(self, active: _Active) -> None:
        """Append the grid-record prefix whose jobs have resolved."""
        record = active.record
        ready = min(active.next_index, len(active.grid_points))
        while active.emitted_grid < ready:
            point = active.grid_points[active.emitted_grid]
            record.rows.append(record_row(
                active.experiment._point_record(*point)))
            active.emitted_grid += 1

    def _merge_stats(self, record: CampaignRecord, before: dict) -> None:
        """Attribute the runner counters moved since ``before``."""
        now = self.runner.stats.as_dict()
        for name, value in now.items():
            delta = value - before.get(name, 0)
            if delta:
                record.stats[name] = record.stats.get(name, 0) + delta

    @staticmethod
    def _note_warnings(record: CampaignRecord, caught) -> None:
        for warning in caught:
            text = (f"{type(warning.message).__name__}: "
                    f"{warning.message}")
            if text not in record.warnings:
                record.warnings.append(text)
