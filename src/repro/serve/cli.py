"""CLI front ends of the experiment service.

``repro serve`` runs the server; ``repro submit`` / ``repro status`` /
``repro results`` are thin :class:`~repro.serve.client.ServeClient`
wrappers, so the CLI is just another tenant of the durable API — the
acceptance path (submit a spec file, watch it, export the CSV) never
touches the engine directly.

State directory resolution for ``repro serve``: ``--state-dir`` wins,
then ``$REPRO_SERVE_STATE``, then ``<queue root>/serve`` when the
engine runs on the queue backend, then ``~/.cache/repro/serve``.

``--supervise-workers N`` (queue backend only) runs an in-process
:class:`~repro.engine.broker.WorkerSupervisor` loop alongside the
server: the fleet grows with queue depth up to N worker processes and
drains itself when idle, so one command is a complete single-host
deployment.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time

from repro.engine import add_engine_arguments, runner_from_args
from repro.engine.broker import QUEUE_DIR_ENV, WorkerSupervisor
from repro.errors import ConfigError
from repro.serve.client import DEFAULT_URL, ServeClient, ServeError
from repro.serve.server import DEFAULT_PORT, create_server

#: Environment variable naming the serve state directory.
STATE_DIR_ENV = "REPRO_SERVE_STATE"


def add_serve_subcommands(sub) -> None:
    """Attach serve/submit/status/results to the repro subparsers."""
    serve = sub.add_parser(
        "serve", help="run the always-on experiment service",
        description="Serve the HTTP/JSON campaign API: clients POST "
                    "ExperimentSpec files to /v1/campaigns and poll "
                    "state, stream result rows and fetch artifacts. "
                    "One collector thread multiplexes every campaign "
                    "onto one engine runner, so overlapping jobs "
                    "across campaigns simulate once.")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default {DEFAULT_PORT}; 0 = "
                            f"ephemeral)")
    serve.add_argument("--state-dir", default=None, metavar="DIR",
                       help=f"campaign registry root (default "
                            f"${STATE_DIR_ENV}, then <queue>/serve, "
                            f"then ~/.cache/repro/serve)")
    serve.add_argument("--chunk-jobs", type=int, default=32, metavar="N",
                       help="plan jobs per scheduling slice; smaller "
                            "chunks interleave campaigns more fairly "
                            "(default 32)")
    serve.add_argument("--backlog-jobs", type=int, default=10_000,
                       metavar="N",
                       help="admitted-but-unexecuted job bound; "
                            "submissions beyond it get 429 + "
                            "Retry-After (default 10000)")
    serve.add_argument("--tenant-jobs", type=int, default=5_000,
                       metavar="N",
                       help="per-tenant in-flight job bound "
                            "(default 5000)")
    serve.add_argument("--max-spec-jobs", type=int, default=50_000,
                       metavar="N",
                       help="largest plan a single spec may submit "
                            "(413 beyond it; default 50000)")
    serve.add_argument("--retry-after", type=float, default=5.0,
                       metavar="S",
                       help="Retry-After seconds on 429 (default 5)")
    serve.add_argument("--supervise-workers", type=int, default=0,
                       metavar="N",
                       help="also supervise up to N queue workers "
                            "in-process (requires --backend queue)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request to stderr")
    add_engine_arguments(serve)

    submit = sub.add_parser(
        "submit", help="submit a spec file to a running service",
        description="POST an experiment spec (TOML or JSON) to a "
                    "'repro serve' instance and print the campaign id.")
    submit.add_argument("spec", help="spec file (.toml or .json)")
    submit.add_argument("--url", default=DEFAULT_URL,
                        help=f"service URL (default {DEFAULT_URL})")
    submit.add_argument("--tenant", default="default",
                        help="tenant identity for quota accounting")
    submit.add_argument("--dry-run", action="store_true",
                        help="plan preview only; nothing is admitted")
    submit.add_argument("--watch", action="store_true",
                        help="poll until the campaign finishes")
    submit.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="with --watch: give up after S seconds")

    status = sub.add_parser(
        "status", help="report one campaign's state",
        description="GET /v1/campaigns/{id} from a running service.")
    status.add_argument("id", help="campaign id (from 'repro submit')")
    status.add_argument("--url", default=DEFAULT_URL,
                        help=f"service URL (default {DEFAULT_URL})")
    status.add_argument("--json", action="store_true",
                        help="print the raw status object")

    results = sub.add_parser(
        "results", help="fetch a campaign's result rows",
        description="Stream /v1/campaigns/{id}/results and print rows "
                    "as JSON lines, or export the rebuilt ResultSet "
                    "(waits for the campaign to finish first).")
    results.add_argument("id", help="campaign id (from 'repro submit')")
    results.add_argument("--url", default=DEFAULT_URL,
                         help=f"service URL (default {DEFAULT_URL})")
    results.add_argument("--after", type=int, default=0, metavar="N",
                         help="resume the row stream at cursor N")
    results.add_argument("--export-csv", metavar="PATH", default=None,
                         help="wait for completion and write the "
                              "ResultSet as CSV (bit-identical to a "
                              "local run's export)")
    results.add_argument("--export-json", metavar="PATH", default=None,
                         help="wait for completion and write the "
                              "ResultSet as JSON")
    results.add_argument("--timeout", type=float, default=None,
                         metavar="S",
                         help="give up waiting after S seconds")


def dispatch_serve(args) -> int | None:
    """Run a serve-family subcommand; None when ``args`` is not one."""
    handler = {"serve": _cmd_serve, "submit": _cmd_submit,
               "status": _cmd_status, "results": _cmd_results
               }.get(args.command)
    if handler is None:
        return None
    try:
        return handler(args)
    except ServeError as exc:
        # Service declines and unreachable hosts are operator-facing
        # configuration outcomes, same contract as ConfigError.
        raise ConfigError(str(exc)) from None


def resolve_state_dir(args) -> pathlib.Path:
    if args.state_dir:
        return pathlib.Path(args.state_dir).expanduser()
    env = os.environ.get(STATE_DIR_ENV)
    if env:
        return pathlib.Path(env).expanduser()
    queue_root = getattr(args, "queue", None) \
        or os.environ.get(QUEUE_DIR_ENV)
    if queue_root:
        return pathlib.Path(queue_root).expanduser() / "serve"
    return pathlib.Path("~/.cache/repro/serve").expanduser()


def _cmd_serve(args) -> int:
    runner = runner_from_args(args)
    supervisor = None
    if args.supervise_workers:
        broker = getattr(runner.backend, "broker", None)
        if broker is None:
            raise ConfigError(
                "--supervise-workers needs the queue backend: pass "
                f"--backend queue with --queue DIR or ${QUEUE_DIR_ENV}")
        supervisor = WorkerSupervisor(str(broker.root),
                                      max_workers=args.supervise_workers)
        supervisor.attach_metrics(runner.metrics)
    state_dir = resolve_state_dir(args)
    server = create_server(args.host, args.port, runner=runner,
                           state_dir=state_dir,
                           chunk_jobs=args.chunk_jobs,
                           backlog_jobs=args.backlog_jobs,
                           tenant_jobs=args.tenant_jobs,
                           max_spec_jobs=args.max_spec_jobs,
                           retry_after_s=args.retry_after,
                           quiet=not args.verbose)
    stop = threading.Event()
    pump = None
    if supervisor is not None:
        pump = threading.Thread(
            target=_supervise_until, args=(supervisor, stop),
            daemon=True, name="repro-serve-supervisor")
        pump.start()
        print(f"serve: supervising up to {args.supervise_workers} "
              f"queue worker(s)", file=sys.stderr)
    print(f"serve: listening on {server.url} "
          f"(state {state_dir})", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        stop.set()
        server.server_close()
        server.collector.stop()
        if pump is not None:
            pump.join(timeout=30.0)
    return 0


def _supervise_until(supervisor: WorkerSupervisor,
                     stop: threading.Event) -> None:
    """Keep the worker fleet sized to queue depth until shutdown.

    Unlike :meth:`WorkerSupervisor.run` this never exits on an empty
    spool — an always-on service's queue is usually empty *between*
    campaigns.
    """
    try:
        while not stop.wait(supervisor.poll_interval):
            supervisor.poll_once()
    finally:
        for child in supervisor.children:
            child.join(timeout=supervisor.idle_exit
                       + 4.0 * supervisor.worker_poll + 30.0)


def _cmd_submit(args) -> int:
    client = ServeClient(args.url, tenant=args.tenant)
    response = client.submit(args.spec, dry_run=args.dry_run)
    if args.dry_run:
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    campaign_id = response["id"]
    print(f"campaign:  {campaign_id}")
    print(f"name:      {response.get('name', '')}")
    print(f"state:     {response['state']}")
    print(f"jobs:      {response['total_jobs']}")
    if not args.watch:
        return 0
    last = -1
    while True:
        status = client.status(campaign_id)
        if status["done_jobs"] != last:
            last = status["done_jobs"]
            print(f"progress:  {last}/{status['total_jobs']} jobs "
                  f"({status['state']})")
        if status["state"] in ("done", "failed", "cancelled"):
            break
        time.sleep(0.2)
    _print_terminal(status)
    return 0 if status["state"] == "done" else 1


def _print_terminal(status: dict) -> None:
    print(f"state:     {status['state']}")
    if status.get("error"):
        print(f"error:     {status['error']}", file=sys.stderr)
    for warning in status.get("warnings", ()):
        print(f"warning:   {warning}", file=sys.stderr)
    stats = status.get("stats") or {}
    if stats:
        print(f"engine:    {stats.get('simulated', 0)} simulated, "
              f"{stats.get('disk_hits', 0)} cache hits, "
              f"{stats.get('memory_hits', 0)} memo hits")


def _cmd_status(args) -> int:
    status = ServeClient(args.url).status(args.id)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"campaign:  {status['id']}  ({status.get('name', '')})")
    print(f"tenant:    {status['tenant']}")
    print(f"state:     {status['state']}")
    print(f"jobs:      {status['done_jobs']}/{status['total_jobs']}")
    print(f"rows:      {status['rows_available']}")
    if status.get("artifacts"):
        print(f"artifacts: {', '.join(status['artifacts'])}")
    if status.get("error"):
        print(f"error:     {status['error']}")
    for warning in status.get("warnings", ()):
        print(f"warning:   {warning}")
    return 0


def _cmd_results(args) -> int:
    client = ServeClient(args.url)
    if args.export_csv or args.export_json:
        results = client.result_set(args.id, timeout_s=args.timeout)
        if args.export_csv:
            results.to_csv(args.export_csv)
            print(f"wrote {len(results)} records to {args.export_csv}")
        if args.export_json:
            results.to_json(args.export_json)
            print(f"wrote {len(results)} records to {args.export_json}")
        return 0
    rows, info = client.results(args.id, after=args.after)
    for row in rows:
        print(json.dumps(row, sort_keys=True))
    print(f"state: {info['state']}  next-after: {info['next_after']}",
          file=sys.stderr)
    return 0
