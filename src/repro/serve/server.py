"""The HTTP/JSON surface of the experiment service (stdlib only).

Endpoints (all JSON unless noted)::

    POST   /v1/campaigns                submit a spec (TOML or JSON body)
    POST   /v1/campaigns?dry_run=1      plan preview, nothing admitted
    GET    /v1/campaigns                list campaigns (status objects)
    GET    /v1/campaigns/{id}           one campaign's status
    GET    /v1/campaigns/{id}/results   NDJSON rows, ``?after=N`` cursor
    GET    /v1/campaigns/{id}/artifacts/{name}   rendered artifact rows
    DELETE /v1/campaigns/{id}           cancel
    GET    /v1/metrics                  engine/queue/cache/tenant gauges
                                        (Prometheus text with
                                        ``Accept: text/plain``)

Error contract: configuration problems (malformed spec bodies, unknown
artifact names) answer with their :class:`~repro.errors.ConfigError`
text in a ``{"error": ...}`` body — 400 for bad submissions, 404 for
unknown ids, 409 for artifacts requested before the campaign is done,
413 for specs beyond the per-campaign job cap, and 429 with a
``Retry-After`` header when the backlog or a tenant quota declines the
submission.  The results endpoint never blocks: it returns the rows
currently available past the cursor and tells the client where to
resume (``X-Repro-Next-After``) and whether more will come
(``X-Repro-State``).

The server itself is a ``ThreadingHTTPServer``: handler threads only
parse, plan (dry-run) and read collector state under its lock — every
simulation happens on the collector's single worker thread, so
concurrent clients cannot stampede the engine.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

import repro
from repro.engine.runner import ParallelRunner
from repro.errors import ConfigError
from repro.experiments.experiment import Experiment
from repro.experiments.spec import ExperimentSpec
from repro.serve.collector import (
    BacklogFull,
    Collector,
    SpecTooLarge,
    UnknownCampaign,
)
from repro.serve.registry import CampaignRegistry

#: Default TCP port of ``repro serve`` (chosen once, shared by the CLI
#: front ends' default ``--url``).
DEFAULT_PORT = 8472


class CampaignServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one collector."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, collector: Collector, *,
                 quiet: bool = True):
        self.collector = collector
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def stop(self) -> None:
        """Stop serving and the collector (callable from any thread
        except a handler thread)."""
        self.shutdown()
        self.server_close()
        self.collector.stop()


def create_server(host: str = "127.0.0.1", port: int = DEFAULT_PORT, *,
                  runner: ParallelRunner | None = None,
                  state_dir=None,
                  chunk_jobs: int = 32,
                  backlog_jobs: int = 10_000,
                  tenant_jobs: int = 5_000,
                  max_spec_jobs: int = 50_000,
                  retry_after_s: float = 5.0,
                  resume: bool = True,
                  quiet: bool = True) -> CampaignServer:
    """Build registry + collector + HTTP server and start the collector.

    ``port=0`` binds an ephemeral port (tests); read it back from
    ``server.server_address``.  The returned server is ready for
    ``serve_forever()``; call :meth:`CampaignServer.stop` to shut both
    tiers down.
    """
    registry = CampaignRegistry(state_dir)
    collector = Collector(runner or ParallelRunner(), registry,
                          chunk_jobs=chunk_jobs,
                          backlog_jobs=backlog_jobs,
                          tenant_jobs=tenant_jobs,
                          max_spec_jobs=max_spec_jobs,
                          retry_after_s=retry_after_s)
    if resume:
        collector.resume()
    server = CampaignServer((host, port), collector, quiet=quiet)
    collector.start()
    return server


class _Handler(BaseHTTPRequestHandler):
    server_version = f"repro-serve/{repro.__version__}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    @property
    def collector(self) -> Collector:
        return self.server.collector

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json",
              headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload,
              headers: dict | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self._send(status, body, headers=headers)

    def _error(self, status: int, message: str,
               headers: dict | None = None) -> None:
        self._json(status, {"error": message}, headers=headers)

    def _route(self):
        parts = urlsplit(self.path)
        query = {name: values[-1]
                 for name, values in parse_qs(parts.query).items()}
        segments = [segment for segment in parts.path.split("/")
                    if segment]
        return segments, query

    @staticmethod
    def _truthy(value) -> bool:
        return str(value).strip().lower() in ("1", "true", "yes", "on")

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _body_format(self) -> str | None:
        content_type = (self.headers.get("Content-Type") or "").lower()
        if "json" in content_type:
            return "json"
        if "toml" in content_type:
            return "toml"
        return None  # sniff

    # -- methods -------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        segments, query = self._route()
        if segments != ["v1", "campaigns"]:
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        tenant = (self.headers.get("X-Repro-Tenant")
                  or query.get("tenant") or "default")
        try:
            spec = ExperimentSpec.from_bytes(self._read_body(),
                                             self._body_format())
            if self._truthy(query.get("dry_run", "")):
                # Plan preview on a private hermetic runner: nothing is
                # admitted, nothing simulates, nothing touches the
                # shared engine.
                summary = Experiment(spec).plan_summary()
                self._json(200, dict(summary, dry_run=True))
                return
            record = self.collector.submit(spec, tenant=tenant)
        except ConfigError as exc:
            self._error(400, str(exc))
        except SpecTooLarge as exc:
            self._error(413, str(exc))
        except BacklogFull as exc:
            self._error(429, str(exc),
                        headers={"Retry-After":
                                 max(1, int(round(exc.retry_after_s)))})
        else:
            self._json(201, record.status_dict(),
                       headers={"Location": f"/v1/campaigns/{record.id}"})

    def do_GET(self) -> None:  # noqa: N802
        segments, query = self._route()
        try:
            if segments == ["v1", "metrics"]:
                self._metrics()
            elif segments == ["v1", "campaigns"]:
                self._json(200, {"campaigns": self.collector.campaigns()})
            elif len(segments) == 3 and \
                    segments[:2] == ["v1", "campaigns"]:
                self._json(200, self.collector.status(segments[2]))
            elif len(segments) == 4 and \
                    segments[:2] == ["v1", "campaigns"] and \
                    segments[3] == "results":
                self._results(segments[2], query)
            elif len(segments) == 5 and \
                    segments[:2] == ["v1", "campaigns"] and \
                    segments[3] == "artifacts":
                rows = self.collector.artifact_rows(segments[2],
                                                    segments[4])
                self._json(200, {"artifact": segments[4], "rows": rows})
            else:
                self._error(404, f"no such endpoint: GET {self.path}")
        except UnknownCampaign as exc:
            self._error(404, exc.args[0] if exc.args
                        else "unknown campaign")
        except ConfigError as exc:
            self._error(409, str(exc))

    def do_DELETE(self) -> None:  # noqa: N802
        segments, _ = self._route()
        if len(segments) == 3 and segments[:2] == ["v1", "campaigns"]:
            try:
                self._json(200, self.collector.cancel(segments[2]))
            except UnknownCampaign as exc:
                self._error(404, exc.args[0] if exc.args
                            else "unknown campaign")
            return
        self._error(404, f"no such endpoint: DELETE {self.path}")

    # -- metrics exposition --------------------------------------------

    def _metrics(self) -> None:
        """JSON by default; Prometheus text on ``Accept: text/plain``.

        JSON stays the default (and wins whenever the client mentions
        json at all) so every existing consumer of ``/v1/metrics`` is
        untouched; only an explicit text/plain preference — what a
        Prometheus scraper sends — switches the representation.
        """
        accept = (self.headers.get("Accept") or "").lower()
        if "text/plain" in accept and "json" not in accept:
            body = self.collector.prometheus().encode("utf-8")
            self._send(200, body,
                       content_type="text/plain; version=0.0.4; "
                                    "charset=utf-8")
            return
        self._json(200, self.collector.metrics())

    # -- results streaming ---------------------------------------------

    def _results(self, campaign_id: str, query: dict) -> None:
        try:
            after = int(query.get("after", 0))
        except ValueError:
            self._error(400, f"?after= must be an integer, got "
                             f"{query.get('after')!r}")
            return
        rows, info = self.collector.rows_after(campaign_id, after)
        body = "".join(json.dumps(row, sort_keys=True) + "\n"
                       for row in rows).encode("utf-8")
        self._send(200, body, content_type="application/x-ndjson",
                   headers={"X-Repro-State": info["state"],
                            "X-Repro-Next-After": info["next_after"],
                            "X-Repro-Rows-Available":
                                info["rows_available"]})
